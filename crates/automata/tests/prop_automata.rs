//! Per-crate property tests for the automata toolkit, under the in-repo
//! harness (`axml-support`). The root `tests/props.rs` suite covers the
//! cross-construction agreements end-to-end; these properties pin the
//! algebraic laws the rewriting layers lean on, at the crate boundary.

use axml_automata::{sample_word, Dfa, Nfa, Regex, SampleConfig};
use axml_support::prelude::*;
use axml_support::rng::{SeedableRng, StdRng};

/// Random regexes over `n` symbols, nesting seq/alt/star.
fn regex_strategy(n: u32) -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![(0..n).prop_map(Regex::sym), Just(Regex::Epsilon)];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Regex::seq),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
}

fn word_strategy(n: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..n, 0..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A word is accepted by a complete DFA or by its complement — never
    /// both, never neither.
    #[test]
    fn complement_partitions_words(re in regex_strategy(3), w in word_strategy(3)) {
        let n = 3usize;
        let complete = Dfa::determinize(&Nfa::thompson(&re, n)).completed(n);
        let comp = complete.complemented();
        prop_assert!(complete.accepts(&w) != comp.accepts(&w));
    }

    /// Complementing twice gives back the original language.
    #[test]
    fn complement_is_an_involution(re in regex_strategy(3), w in word_strategy(3)) {
        let n = 3usize;
        let complete = Dfa::determinize(&Nfa::thompson(&re, n)).completed(n);
        let twice = complete.complemented().complemented();
        prop_assert_eq!(complete.accepts(&w), twice.accepts(&w));
    }

    /// Minimization is language-preserving and idempotent on state count.
    #[test]
    fn minimization_preserves_language(re in regex_strategy(3), w in word_strategy(3)) {
        let n = 3usize;
        let complete = Dfa::determinize(&Nfa::thompson(&re, n)).completed(n);
        let min = complete.minimized();
        prop_assert_eq!(complete.accepts(&w), min.accepts(&w));
        prop_assert_eq!(min.minimized().num_states(), min.num_states());
    }

    /// Sampling draws only words of the language (whenever the language is
    /// non-empty), for any seed.
    #[test]
    fn sampled_words_are_in_language(re in regex_strategy(3), seed in 0u64..5000) {
        prop_assume!(!re.is_empty_language());
        let mut rng = StdRng::seed_from_u64(seed);
        let w = sample_word(&re, &mut rng, &SampleConfig::default()).unwrap();
        prop_assert!(Nfa::thompson(&re, 3).accepts(&w), "sampled {w:?} rejected");
    }
}
