//! Parser for the paper's textual regular-expression notation.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! alt    := seq ('|' seq)*
//! seq    := postfix ('.'? postfix)*          -- '.' is optional between atoms
//! postfix:= atom ('*' | '+' | '?' | '{' n (',' n?)? '}')*
//! atom   := IDENT | '(' alt ')' | 'ε' | '()'
//! IDENT  := [A-Za-z_][A-Za-z0-9_\-:]*
//! ```
//!
//! Identifiers are interned into the supplied [`Alphabet`]. The paper writes
//! `title.date.(Get_Temp | temp).(TimeOut | exhibit*)`; both the explicit-dot
//! and juxtaposition styles are accepted.

use crate::alphabet::Alphabet;
use crate::regex::Regex;
use std::fmt;

/// Error produced when parsing a textual regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a, 'b> {
    input: &'a [u8],
    pos: usize,
    alphabet: &'b mut Alphabet,
}

/// Parses `input` into a [`Regex`], interning identifiers into `alphabet`.
pub fn parse_regex(input: &str, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        alphabet,
    };
    p.skip_ws();
    if p.at_end() {
        // An empty string denotes ε, convenient for empty content models.
        return Ok(Regex::Epsilon);
    }
    let re = p.alt()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(re)
}

impl Parser<'_, '_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn alt(&mut self) -> Result<Regex, ParseError> {
        let mut branches = vec![self.seq()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'|') {
                self.bump();
                branches.push(self.seq()?);
            } else {
                break;
            }
        }
        Ok(Regex::alt(branches))
    }

    fn seq(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.postfix()?];
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'.') => {
                    self.bump();
                    parts.push(self.postfix()?);
                }
                // Juxtaposition: another atom starts immediately.
                Some(c) if is_ident_start(c) || c == b'(' => {
                    parts.push(self.postfix()?);
                }
                Some(0xce) if self.starts_with_epsilon() => {
                    parts.push(self.postfix()?);
                }
                _ => break,
            }
        }
        Ok(Regex::seq(parts))
    }

    fn starts_with_epsilon(&self) -> bool {
        self.input[self.pos..].starts_with("ε".as_bytes())
    }

    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut re = self.atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    re = Regex::star(re);
                }
                Some(b'+') => {
                    self.bump();
                    re = Regex::plus(re);
                }
                Some(b'?') => {
                    self.bump();
                    re = Regex::opt(re);
                }
                Some(b'{') => {
                    self.bump();
                    re = self.repetition(re)?;
                }
                _ => break,
            }
        }
        Ok(re)
    }

    fn repetition(&mut self, re: Regex) -> Result<Regex, ParseError> {
        self.skip_ws();
        let min = self.number()?;
        self.skip_ws();
        let max = match self.peek() {
            Some(b',') => {
                self.bump();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    None
                } else {
                    Some(self.number()?)
                }
            }
            _ => Some(min),
        };
        self.skip_ws();
        if self.bump() != Some(b'}') {
            return Err(self.err("expected '}' closing repetition"));
        }
        if let Some(m) = max {
            if m < min {
                return Err(self.err("repetition max smaller than min"));
            }
        }
        Ok(Regex::repeat(re, min, max))
    }

    fn number(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("digits are UTF-8");
        text.parse()
            .map_err(|_| self.err("repetition bound too large"))
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        if self.starts_with_epsilon() {
            self.pos += "ε".len();
            return Ok(Regex::Epsilon);
        }
        match self.peek() {
            Some(b'(') => {
                self.bump();
                self.skip_ws();
                if self.peek() == Some(b')') {
                    self.bump();
                    return Ok(Regex::Epsilon);
                }
                let inner = self.alt()?;
                self.skip_ws();
                if self.bump() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            Some(c) if is_ident_start(c) => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.input[start..self.pos])
                    .expect("identifier bytes are ASCII");
                Ok(Regex::sym(self.alphabet.intern(name)))
            }
            Some(_) => Err(self.err("expected an identifier, '(' or 'ε'")),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b':')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> (Regex, Alphabet) {
        let mut ab = Alphabet::new();
        let re = parse_regex(s, &mut ab).expect("parse should succeed");
        (re, ab)
    }

    #[test]
    fn parses_paper_newspaper_model() {
        let (re, ab) = parse("title.date.(Get_Temp | temp).(TimeOut | exhibit*)");
        assert_eq!(ab.len(), 6);
        match re {
            Regex::Seq(parts) => assert_eq!(parts.len(), 4),
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn dot_optional() {
        let (a, _) = parse("a.b.c");
        let mut ab = Alphabet::new();
        let b = parse_regex("a b c", &mut ab).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn postfix_operators() {
        let (re, ab) = parse("a*b+c?");
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        assert_eq!(
            re,
            Regex::seq([
                Regex::star(Regex::sym(a)),
                Regex::plus(Regex::sym(b)),
                Regex::opt(Regex::sym(c)),
            ])
        );
    }

    #[test]
    fn repetition_bounds() {
        let (re, _) = parse("a{2,4}");
        assert!(matches!(re, Regex::Repeat(_, 2, Some(4))));
        let (re, _) = parse("a{3}");
        assert!(matches!(re, Regex::Repeat(_, 3, Some(3))));
        let (re, _) = parse("a{2,}");
        assert!(matches!(re, Regex::Repeat(_, 2, None)));
        let (re, _) = parse("a{0,1}");
        assert!(matches!(re, Regex::Opt(_)));
    }

    #[test]
    fn epsilon_forms() {
        let (re, _) = parse("ε");
        assert_eq!(re, Regex::Epsilon);
        let (re, _) = parse("()");
        assert_eq!(re, Regex::Epsilon);
        let mut ab = Alphabet::new();
        assert_eq!(parse_regex("", &mut ab).unwrap(), Regex::Epsilon);
        let (re, _) = parse("a | ε");
        assert!(matches!(re, Regex::Alt(_)));
    }

    #[test]
    fn nested_groups() {
        let (re, ab) = parse("((a|b).c)*");
        assert!(matches!(re, Regex::Star(_)));
        assert_eq!(ab.len(), 3);
    }

    #[test]
    fn error_positions() {
        let mut ab = Alphabet::new();
        let e = parse_regex("a..b", &mut ab).unwrap_err();
        assert_eq!(e.offset, 2);
        assert!(parse_regex("(a", &mut ab).is_err());
        assert!(parse_regex("a)", &mut ab).is_err());
        assert!(parse_regex("a{4,2}", &mut ab).is_err());
        assert!(parse_regex("|a", &mut ab).is_err());
    }

    #[test]
    fn identifiers_allow_ns_and_dashes() {
        let (_, ab) = parse("int:fun.my-elem");
        assert!(ab.lookup("int:fun").is_some());
        assert!(ab.lookup("my-elem").is_some());
    }
}
