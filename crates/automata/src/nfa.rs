//! Nondeterministic finite automata with ε-moves.
//!
//! Built from a [`Regex`] by Thompson's construction. NFAs are the common
//! intermediate form: rewriting builds the expansion automaton `A_w^k` on top
//! of them, and [`crate::Dfa::determinize`] turns them into DFAs for the
//! complementation step of safe rewriting (Fig. 3 of the paper).

use crate::alphabet::Symbol;
use crate::regex::Regex;

/// A state index in an [`Nfa`].
pub type StateId = u32;

/// An ε-NFA over the dense alphabet `0..num_symbols`.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Number of alphabet symbols this automaton may see.
    pub num_symbols: usize,
    /// Labeled transitions, indexed by source state: `(symbol, target)`.
    pub trans: Vec<Vec<(Symbol, StateId)>>,
    /// ε-transitions, indexed by source state.
    pub eps: Vec<Vec<StateId>>,
    /// The initial state.
    pub start: StateId,
    /// Accepting states (may be several).
    pub finals: Vec<StateId>,
}

impl Nfa {
    /// Creates an NFA with `n` fresh unconnected states and no finals.
    pub fn with_states(n: usize, num_symbols: usize) -> Self {
        Nfa {
            num_symbols,
            trans: vec![Vec::new(); n],
            eps: vec![Vec::new(); n],
            start: 0,
            finals: Vec::new(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        (self.trans.len() - 1) as StateId
    }

    /// Adds a labeled transition.
    pub fn add_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        debug_assert!((sym as usize) < self.num_symbols, "symbol out of range");
        self.trans[from as usize].push((sym, to));
    }

    /// Adds an ε-transition.
    pub fn add_eps(&mut self, from: StateId, to: StateId) {
        self.eps[from as usize].push(to);
    }

    /// Thompson's construction: an NFA with a single start and single final
    /// state recognizing `lang(re)`.
    pub fn thompson(re: &Regex, num_symbols: usize) -> Self {
        let mut nfa = Nfa::with_states(0, num_symbols);
        let start = nfa.add_state();
        let end = nfa.add_state();
        nfa.start = start;
        nfa.finals = vec![end];
        nfa.build(re, start, end);
        nfa
    }

    /// Wires `re` between the existing states `from` and `to`.
    fn build(&mut self, re: &Regex, from: StateId, to: StateId) {
        match re {
            Regex::Empty => {}
            Regex::Epsilon => self.add_eps(from, to),
            Regex::Sym(s) => self.add_transition(from, *s, to),
            Regex::Seq(parts) => {
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.add_state()
                    };
                    self.build(p, cur, next);
                    cur = next;
                }
            }
            Regex::Alt(parts) => {
                for p in parts {
                    self.build(p, from, to);
                }
            }
            Regex::Star(inner) => {
                let hub = self.add_state();
                self.add_eps(from, hub);
                self.add_eps(hub, to);
                let back = self.add_state();
                self.build(inner, hub, back);
                self.add_eps(back, hub);
            }
            Regex::Plus(inner) => {
                // inner . inner*
                let mid = self.add_state();
                self.build(inner, from, mid);
                self.build(&Regex::star((**inner).clone()), mid, to);
            }
            Regex::Opt(inner) => {
                self.add_eps(from, to);
                self.build(inner, from, to);
            }
            Regex::Repeat(inner, min, max) => {
                // Unroll: inner^min . (inner?)^(max-min)  or  inner^min . inner*
                let mut cur = from;
                for _ in 0..*min {
                    let next = self.add_state();
                    self.build(inner, cur, next);
                    cur = next;
                }
                match max {
                    None => self.build(&Regex::star((**inner).clone()), cur, to),
                    Some(m) => {
                        for i in *min..*m {
                            let next = if i + 1 == *m { to } else { self.add_state() };
                            self.add_eps(cur, to);
                            self.build(inner, cur, next);
                            cur = next;
                        }
                        if m == min {
                            self.add_eps(cur, to);
                        }
                    }
                }
            }
        }
    }

    /// Computes the ε-closure of `states` (sorted, deduplicated).
    pub fn eps_closure(&self, states: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.num_states()];
        let mut stack: Vec<StateId> = Vec::with_capacity(states.len());
        for &s in states {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut out = stack.clone();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Set of states reachable from `set` (already ε-closed) on `sym`,
    /// ε-closed again.
    pub fn step(&self, set: &[StateId], sym: Symbol) -> Vec<StateId> {
        let mut next = Vec::new();
        for &s in set {
            for &(a, t) in &self.trans[s as usize] {
                if a == sym {
                    next.push(t);
                }
            }
        }
        self.eps_closure(&next)
    }

    /// True if the NFA accepts `word` (direct subset simulation).
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut cur = self.eps_closure(&[self.start]);
        for &sym in word {
            cur = self.step(&cur, sym);
            if cur.is_empty() {
                return false;
            }
        }
        cur.iter().any(|s| self.finals.contains(s))
    }

    /// True if `set` contains an accepting state.
    pub fn contains_final(&self, set: &[StateId]) -> bool {
        set.iter().any(|s| self.finals.contains(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn accepts(pattern: &str, word: &str) -> bool {
        let mut ab = Alphabet::new();
        let re = Regex::parse(pattern, &mut ab).unwrap();
        // Intern any extra word symbols too.
        let w: Vec<Symbol> = word
            .split('.')
            .filter(|s| !s.is_empty())
            .map(|s| ab.intern(s))
            .collect();
        let nfa = Nfa::thompson(&re, ab.len());
        nfa.accepts(&w)
    }

    #[test]
    fn basic_acceptance() {
        assert!(accepts("a.b", "a.b"));
        assert!(!accepts("a.b", "a"));
        assert!(!accepts("a.b", "a.b.b"));
        assert!(accepts("a|b", "b"));
        assert!(!accepts("a|b", "c"));
    }

    #[test]
    fn star_plus_opt() {
        assert!(accepts("a*", ""));
        assert!(accepts("a*", "a.a.a"));
        assert!(!accepts("a+", ""));
        assert!(accepts("a+", "a.a"));
        assert!(accepts("a?", ""));
        assert!(accepts("a?", "a"));
        assert!(!accepts("a?", "a.a"));
    }

    #[test]
    fn repeat_bounds() {
        assert!(!accepts("a{2,3}", "a"));
        assert!(accepts("a{2,3}", "a.a"));
        assert!(accepts("a{2,3}", "a.a.a"));
        assert!(!accepts("a{2,3}", "a.a.a.a"));
        assert!(accepts("a{2,}", "a.a.a.a.a"));
        assert!(!accepts("a{2,}", "a"));
        assert!(accepts("a{3}", "a.a.a"));
        assert!(!accepts("a{3}", "a.a"));
        assert!(accepts("a{0,2}", ""));
    }

    #[test]
    fn paper_newspaper_words() {
        let model = "title.date.(Get_Temp|temp).(TimeOut|exhibit*)";
        assert!(accepts(model, "title.date.Get_Temp.TimeOut"));
        assert!(accepts(model, "title.date.temp.exhibit.exhibit"));
        assert!(accepts(model, "title.date.temp"));
        assert!(!accepts(model, "title.date.temp.performance"));
        assert!(!accepts(model, "date.title.temp"));
    }

    #[test]
    fn empty_language_rejects_everything() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let nfa = Nfa::thompson(&Regex::Empty, ab.len());
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[a]));
    }

    #[test]
    fn epsilon_accepts_only_empty() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let nfa = Nfa::thompson(&Regex::Epsilon, ab.len());
        assert!(nfa.accepts(&[]));
        assert!(!nfa.accepts(&[a]));
    }

    #[test]
    fn eps_closure_transitive() {
        let mut nfa = Nfa::with_states(3, 1);
        nfa.add_eps(0, 1);
        nfa.add_eps(1, 2);
        assert_eq!(nfa.eps_closure(&[0]), vec![0, 1, 2]);
        assert_eq!(nfa.eps_closure(&[2]), vec![2]);
    }
}
