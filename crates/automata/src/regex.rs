//! Regular-expression abstract syntax.
//!
//! Content models in the paper's schemas (`τ(newspaper) =
//! title.date.(Get_Temp | temp).(TimeOut | exhibit*)`) are regular
//! expressions over element labels and function names. This module defines
//! the AST with smart constructors that keep expressions in a lightly
//! normalized form (no nested `Seq`/`Alt` of the same kind, no redundant
//! `Empty`/`Epsilon`).

use crate::alphabet::{Alphabet, Symbol};
use std::fmt;

/// A regular expression over an interned alphabet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The language containing only the empty word `ε`.
    Epsilon,
    /// A single symbol.
    Sym(Symbol),
    /// Concatenation `r1.r2…rn` (always ≥ 2 elements, none `Empty`/`Epsilon`).
    Seq(Vec<Regex>),
    /// Alternation `r1 | r2 | … | rn` (always ≥ 2 elements, none `Empty`).
    Alt(Vec<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
    /// One-or-more `r+`.
    Plus(Box<Regex>),
    /// Zero-or-one `r?`.
    Opt(Box<Regex>),
    /// Bounded repetition `r{min,max}`; `max = None` means unbounded.
    ///
    /// This backs XML Schema's `minOccurs`/`maxOccurs`.
    Repeat(Box<Regex>, u32, Option<u32>),
}

impl Regex {
    /// A single-symbol expression.
    pub fn sym(s: Symbol) -> Self {
        Regex::Sym(s)
    }

    /// Concatenation with normalization: drops `Epsilon` factors, collapses
    /// to `Empty` if any factor is `Empty`, flattens nested `Seq`.
    pub fn seq(parts: impl IntoIterator<Item = Regex>) -> Self {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Seq(out),
        }
    }

    /// Alternation with normalization: drops `Empty` branches, flattens
    /// nested `Alt`, deduplicates identical branches.
    pub fn alt(parts: impl IntoIterator<Item = Regex>) -> Self {
        let mut out: Vec<Regex> = Vec::new();
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => {
                    for i in inner {
                        if !out.contains(&i) {
                            out.push(i);
                        }
                    }
                }
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Alt(out),
        }
    }

    /// Kleene star with normalization (`∅* = ε* = ε`, `(r*)* = r*`).
    pub fn star(r: Regex) -> Self {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            Regex::Plus(inner) | Regex::Opt(inner) => Regex::Star(inner),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// One-or-more with normalization.
    pub fn plus(r: Regex) -> Self {
        match r {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            p @ Regex::Plus(_) => p,
            Regex::Opt(inner) => Regex::Star(inner),
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// Zero-or-one with normalization.
    pub fn opt(r: Regex) -> Self {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            Regex::Plus(inner) => Regex::Star(inner),
            o @ Regex::Opt(_) => o,
            other => Regex::Opt(Box::new(other)),
        }
    }

    /// Bounded repetition `r{min,max}` (XML Schema `minOccurs`/`maxOccurs`).
    ///
    /// # Panics
    /// Panics if `max < min`.
    pub fn repeat(r: Regex, min: u32, max: Option<u32>) -> Self {
        if let Some(m) = max {
            assert!(m >= min, "repeat: max {m} < min {min}");
        }
        match (min, max) {
            (0, Some(0)) => Regex::Epsilon,
            (1, Some(1)) => r,
            (0, None) => Regex::star(r),
            (1, None) => Regex::plus(r),
            (0, Some(1)) => Regex::opt(r),
            _ => match r {
                Regex::Empty => {
                    if min == 0 {
                        Regex::Epsilon
                    } else {
                        Regex::Empty
                    }
                }
                Regex::Epsilon => Regex::Epsilon,
                other => Regex::Repeat(Box::new(other), min, max),
            },
        }
    }

    /// Parses the paper's textual notation (identifiers, dot-concatenation,
    /// alternation, `*`/`+`/`?`/`{m,n}`, parentheses, `ε`).
    pub fn parse(input: &str, alphabet: &mut Alphabet) -> Result<Regex, crate::ParseError> {
        crate::parse::parse_regex(input, alphabet)
    }

    /// True if the language of `self` contains the empty word.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Seq(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
            Regex::Plus(inner) => inner.nullable(),
            Regex::Repeat(inner, min, _) => *min == 0 || inner.nullable(),
        }
    }

    /// True if the language of `self` is empty.
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Sym(_) | Regex::Star(_) | Regex::Opt(_) => false,
            Regex::Seq(parts) => parts.iter().any(Regex::is_empty_language),
            Regex::Alt(parts) => parts.iter().all(Regex::is_empty_language),
            Regex::Plus(inner) => inner.is_empty_language(),
            Regex::Repeat(inner, min, _) => *min > 0 && inner.is_empty_language(),
        }
    }

    /// All symbols occurring in the expression, deduplicated, in first-seen order.
    pub fn symbols(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut Vec<Symbol>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Sym(s) => {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            Regex::Seq(parts) | Regex::Alt(parts) => {
                for p in parts {
                    p.collect_symbols(out);
                }
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => {
                inner.collect_symbols(out)
            }
            Regex::Repeat(inner, _, _) => inner.collect_symbols(out),
        }
    }

    /// Rewrites every symbol through `f` (used to re-map alphabets).
    pub fn map_symbols(&self, f: &mut impl FnMut(Symbol) -> Regex) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(s) => f(*s),
            Regex::Seq(parts) => Regex::seq(parts.iter().map(|p| p.map_symbols(f))),
            Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| p.map_symbols(f))),
            Regex::Star(inner) => Regex::star(inner.map_symbols(f)),
            Regex::Plus(inner) => Regex::plus(inner.map_symbols(f)),
            Regex::Opt(inner) => Regex::opt(inner.map_symbols(f)),
            Regex::Repeat(inner, min, max) => Regex::repeat(inner.map_symbols(f), *min, *max),
        }
    }

    /// The reversal of the language: `lang(rev(R)) = { wᴿ | w ∈ lang(R) }`.
    ///
    /// Used by the right-to-left rewriting variant the paper mentions in
    /// footnote 4 (Sec. 3).
    pub fn reversed(&self) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(s) => Regex::Sym(*s),
            Regex::Seq(parts) => Regex::seq(parts.iter().rev().map(Regex::reversed)),
            Regex::Alt(parts) => Regex::alt(parts.iter().map(Regex::reversed)),
            Regex::Star(inner) => Regex::star(inner.reversed()),
            Regex::Plus(inner) => Regex::plus(inner.reversed()),
            Regex::Opt(inner) => Regex::opt(inner.reversed()),
            Regex::Repeat(inner, min, max) => Regex::repeat(inner.reversed(), *min, *max),
        }
    }

    /// Number of AST nodes; a rough size measure used for complexity benches.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) => 1,
            Regex::Seq(parts) | Regex::Alt(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => 1 + inner.size(),
            Regex::Repeat(inner, _, _) => 1 + inner.size(),
        }
    }

    /// Renders the expression in the paper's notation using `alphabet` names.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> RegexDisplay<'a> {
        RegexDisplay { re: self, alphabet }
    }
}

/// Pretty-printer returned by [`Regex::display`].
pub struct RegexDisplay<'a> {
    re: &'a Regex,
    alphabet: &'a Alphabet,
}

impl fmt::Display for RegexDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_regex(self.re, self.alphabet, f, 0)
    }
}

/// Precedence levels: 0 = alt, 1 = seq, 2 = postfix/atom.
fn fmt_regex(re: &Regex, ab: &Alphabet, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    let own = match re {
        Regex::Alt(_) => 0,
        Regex::Seq(_) => 1,
        _ => 2,
    };
    let parens = own < prec;
    if parens {
        write!(f, "(")?;
    }
    match re {
        Regex::Empty => write!(f, "∅")?,
        Regex::Epsilon => write!(f, "ε")?,
        Regex::Sym(s) => write!(f, "{}", ab.name(*s))?,
        Regex::Seq(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, ".")?;
                }
                fmt_regex(p, ab, f, 2)?;
            }
        }
        Regex::Alt(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                fmt_regex(p, ab, f, 1)?;
            }
        }
        Regex::Star(inner) => {
            fmt_regex(inner, ab, f, 2)?;
            write!(f, "*")?;
        }
        Regex::Plus(inner) => {
            fmt_regex(inner, ab, f, 2)?;
            write!(f, "+")?;
        }
        Regex::Opt(inner) => {
            fmt_regex(inner, ab, f, 2)?;
            write!(f, "?")?;
        }
        Regex::Repeat(inner, min, max) => {
            fmt_regex(inner, ab, f, 2)?;
            match max {
                Some(m) => write!(f, "{{{min},{m}}}")?,
                None => write!(f, "{{{min},}}")?,
            }
        }
    }
    if parens {
        write!(f, ")")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(n: u32) -> Vec<Regex> {
        (0..n).map(Regex::sym).collect()
    }

    #[test]
    fn seq_normalizes() {
        let s = syms(3);
        assert_eq!(Regex::seq([]), Regex::Epsilon);
        assert_eq!(Regex::seq([s[0].clone()]), s[0]);
        assert_eq!(
            Regex::seq([s[0].clone(), Regex::Epsilon, s[1].clone()]),
            Regex::Seq(vec![s[0].clone(), s[1].clone()])
        );
        assert_eq!(
            Regex::seq([s[0].clone(), Regex::Empty, s[1].clone()]),
            Regex::Empty
        );
        // Flattening.
        let nested = Regex::seq([Regex::seq([s[0].clone(), s[1].clone()]), s[2].clone()]);
        assert_eq!(
            nested,
            Regex::Seq(vec![s[0].clone(), s[1].clone(), s[2].clone()])
        );
    }

    #[test]
    fn alt_normalizes_and_dedups() {
        let s = syms(2);
        assert_eq!(Regex::alt([]), Regex::Empty);
        assert_eq!(
            Regex::alt([s[0].clone(), Regex::Empty, s[0].clone(), s[1].clone()]),
            Regex::Alt(vec![s[0].clone(), s[1].clone()])
        );
    }

    #[test]
    fn star_plus_opt_normalize() {
        let a = Regex::sym(0);
        assert_eq!(Regex::star(Regex::Epsilon), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::star(a.clone())), Regex::star(a.clone()));
        assert_eq!(Regex::plus(Regex::opt(a.clone())), Regex::star(a.clone()));
        assert_eq!(Regex::opt(Regex::plus(a.clone())), Regex::star(a.clone()));
        assert_eq!(Regex::plus(Regex::Empty), Regex::Empty);
        assert_eq!(Regex::opt(Regex::Empty), Regex::Epsilon);
    }

    #[test]
    fn repeat_normalizes() {
        let a = Regex::sym(0);
        assert_eq!(Regex::repeat(a.clone(), 0, Some(0)), Regex::Epsilon);
        assert_eq!(Regex::repeat(a.clone(), 1, Some(1)), a.clone());
        assert_eq!(Regex::repeat(a.clone(), 0, None), Regex::star(a.clone()));
        assert_eq!(Regex::repeat(a.clone(), 1, None), Regex::plus(a.clone()));
        assert_eq!(Regex::repeat(a.clone(), 0, Some(1)), Regex::opt(a.clone()));
        assert!(matches!(
            Regex::repeat(a.clone(), 2, Some(4)),
            Regex::Repeat(_, 2, Some(4))
        ));
    }

    #[test]
    #[should_panic(expected = "max")]
    fn repeat_rejects_inverted_bounds() {
        let _ = Regex::repeat(Regex::sym(0), 3, Some(2));
    }

    #[test]
    fn nullable_works() {
        let a = Regex::sym(0);
        assert!(!a.nullable());
        assert!(Regex::star(a.clone()).nullable());
        assert!(Regex::opt(a.clone()).nullable());
        assert!(!Regex::plus(a.clone()).nullable());
        assert!(Regex::Epsilon.nullable());
        assert!(!Regex::Empty.nullable());
        assert!(Regex::repeat(a.clone(), 0, Some(5)).nullable());
        assert!(!Regex::repeat(a.clone(), 2, Some(5)).nullable());
    }

    #[test]
    fn empty_language_detection() {
        let a = Regex::sym(0);
        assert!(Regex::Empty.is_empty_language());
        assert!(!a.is_empty_language());
        assert!(Regex::seq([a.clone(), Regex::Empty]).is_empty_language());
        // alt() drops Empty branches, so build Alt manually to test the method.
        assert!(Regex::Alt(vec![Regex::Empty, Regex::Empty]).is_empty_language());
    }

    #[test]
    fn symbols_deduplicated_in_order() {
        let re = Regex::seq([
            Regex::sym(2),
            Regex::alt([Regex::sym(0), Regex::sym(2)]),
            Regex::star(Regex::sym(1)),
        ]);
        assert_eq!(re.symbols(), vec![2, 0, 1]);
    }

    #[test]
    fn reversed_language() {
        let mut ab = Alphabet::new();
        let re = Regex::parse("a.b.(c|d)*", &mut ab).unwrap();
        let rev = re.reversed();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        let nfa = crate::Nfa::thompson(&rev, ab.len());
        assert!(nfa.accepts(&[b, a]));
        assert!(nfa.accepts(&[c, c, b, a]));
        assert!(!nfa.accepts(&[a, b]));
        // Involution.
        assert_eq!(rev.reversed(), re);
    }

    #[test]
    fn display_roundtrip() {
        let mut ab = Alphabet::new();
        let re = Regex::parse("title.date.(Get_Temp|temp).(TimeOut|exhibit*)", &mut ab).unwrap();
        let shown = re.display(&ab).to_string();
        let re2 = Regex::parse(&shown, &mut ab).unwrap();
        assert_eq!(re, re2);
    }
}
