//! Glushkov position automata and the XML-Schema determinism check.
//!
//! XML Schema requires *1-unambiguous* (deterministic) content models: while
//! parsing a word left to right, the next child can always be matched to a
//! single position of the regular expression without lookahead. The paper
//! leans on this twice (Sec. 4 and Sec. 7): it makes the top-down document
//! traversal possible and keeps the complement automaton polynomial.
//!
//! The Glushkov construction makes the check direct: the content model is
//! 1-unambiguous iff its position automaton is deterministic.

use crate::alphabet::{Alphabet, Symbol};
use crate::dfa::{Dfa, NO_STATE};
use crate::nfa::Nfa;
use crate::regex::Regex;
use std::collections::HashMap;
use std::fmt;

/// Error returned when a content model is not 1-unambiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnambiguityError {
    /// The symbol that can be matched by two different positions.
    pub symbol: Symbol,
}

impl UnambiguityError {
    /// Renders the error with the symbol name resolved through `alphabet`.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        format!(
            "content model is not 1-unambiguous: symbol '{}' is reachable at two competing positions",
            alphabet.name(self.symbol)
        )
    }
}

impl fmt::Display for UnambiguityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "content model is not 1-unambiguous on symbol #{}",
            self.symbol
        )
    }
}

impl std::error::Error for UnambiguityError {}

/// The Glushkov (position) automaton of a regular expression.
///
/// State `0` is the initial state; states `1..=m` are the symbol positions
/// of the expression in left-to-right order.
#[derive(Debug, Clone)]
pub struct Glushkov {
    /// `positions[p-1]` is the symbol at position `p`.
    pub positions: Vec<Symbol>,
    /// Positions that can start a word.
    pub first: Vec<u32>,
    /// Positions that can end a word.
    pub last: Vec<u32>,
    /// `follow[p-1]`: positions that may follow position `p`.
    pub follow: Vec<Vec<u32>>,
    /// Whether the language contains the empty word.
    pub nullable: bool,
    /// Alphabet size carried along for automaton exports.
    pub num_symbols: usize,
}

/// first/last/nullable for a subexpression during construction.
struct Info {
    first: Vec<u32>,
    last: Vec<u32>,
    nullable: bool,
}

impl Glushkov {
    /// Builds the position automaton of `re`.
    ///
    /// `Repeat` nodes are unrolled first (`r{2,3}` → `r.r.r?`), matching how
    /// XML Schema validators linearize bounded occurrences.
    pub fn new(re: &Regex, num_symbols: usize) -> Self {
        let expanded = expand_repeats(re);
        let mut g = Glushkov {
            positions: Vec::new(),
            first: Vec::new(),
            last: Vec::new(),
            follow: Vec::new(),
            nullable: false,
            num_symbols,
        };
        let info = g.build(&expanded);
        g.first = info.first;
        g.last = info.last;
        g.nullable = info.nullable;
        g
    }

    fn new_position(&mut self, sym: Symbol) -> u32 {
        self.positions.push(sym);
        self.follow.push(Vec::new());
        self.positions.len() as u32
    }

    fn build(&mut self, re: &Regex) -> Info {
        match re {
            Regex::Empty => Info {
                first: vec![],
                last: vec![],
                nullable: false,
            },
            Regex::Epsilon => Info {
                first: vec![],
                last: vec![],
                nullable: true,
            },
            Regex::Sym(s) => {
                let p = self.new_position(*s);
                Info {
                    first: vec![p],
                    last: vec![p],
                    nullable: false,
                }
            }
            Regex::Seq(parts) => {
                let mut acc = Info {
                    first: vec![],
                    last: vec![],
                    nullable: true,
                };
                for part in parts {
                    let info = self.build(part);
                    // follow: every last of the prefix is followed by every
                    // first of this part.
                    for &l in &acc.last {
                        for &f in &info.first {
                            push_unique(&mut self.follow[(l - 1) as usize], f);
                        }
                    }
                    if acc.nullable {
                        for &f in &info.first {
                            push_unique(&mut acc.first, f);
                        }
                    }
                    if info.nullable {
                        for &l in &info.last {
                            push_unique(&mut acc.last, l);
                        }
                    } else {
                        acc.last = info.last;
                    }
                    acc.nullable &= info.nullable;
                }
                acc
            }
            Regex::Alt(parts) => {
                let mut acc = Info {
                    first: vec![],
                    last: vec![],
                    nullable: false,
                };
                for part in parts {
                    let info = self.build(part);
                    for f in info.first {
                        push_unique(&mut acc.first, f);
                    }
                    for l in info.last {
                        push_unique(&mut acc.last, l);
                    }
                    acc.nullable |= info.nullable;
                }
                acc
            }
            Regex::Star(inner) | Regex::Plus(inner) => {
                let info = self.build(inner);
                for &l in &info.last {
                    for &f in &info.first {
                        push_unique(&mut self.follow[(l - 1) as usize], f);
                    }
                }
                Info {
                    nullable: info.nullable || matches!(re, Regex::Star(_)),
                    first: info.first,
                    last: info.last,
                }
            }
            Regex::Opt(inner) => {
                let info = self.build(inner);
                Info {
                    nullable: true,
                    ..info
                }
            }
            Regex::Repeat(..) => unreachable!("repeats are expanded before construction"),
        }
    }

    /// Number of positions `m` (the automaton has `m + 1` states).
    pub fn num_positions(&self) -> usize {
        self.positions.len()
    }

    /// Checks 1-unambiguity: no state may have two transitions on the same
    /// symbol to *different* positions.
    pub fn check_unambiguous(&self) -> Result<(), UnambiguityError> {
        check_set(&self.first, &self.positions)?;
        for f in &self.follow {
            check_set(f, &self.positions)?;
        }
        Ok(())
    }

    /// Exports the automaton as an [`Nfa`] (no ε-transitions).
    pub fn to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::with_states(self.num_positions() + 1, self.num_symbols);
        nfa.start = 0;
        for &p in &self.first {
            nfa.add_transition(0, self.positions[(p - 1) as usize], p);
        }
        for (i, follows) in self.follow.iter().enumerate() {
            for &q in follows {
                nfa.add_transition((i + 1) as u32, self.positions[(q - 1) as usize], q);
            }
        }
        nfa.finals = self.last.clone();
        if self.nullable {
            nfa.finals.push(0);
        }
        nfa
    }

    /// Exports directly as a (partial) [`Dfa`] when the model is
    /// 1-unambiguous; returns the ambiguity witness otherwise.
    pub fn to_dfa(&self) -> Result<Dfa, UnambiguityError> {
        self.check_unambiguous()?;
        let n = self.num_positions() + 1;
        let mut table = vec![NO_STATE; n * self.num_symbols];
        for &p in &self.first {
            table[self.positions[(p - 1) as usize] as usize] = p;
        }
        for (i, follows) in self.follow.iter().enumerate() {
            for &q in follows {
                let sym = self.positions[(q - 1) as usize] as usize;
                table[(i + 1) * self.num_symbols + sym] = q;
            }
        }
        let mut finals = vec![false; n];
        for &l in &self.last {
            finals[l as usize] = true;
        }
        if self.nullable {
            finals[0] = true;
        }
        Ok(Dfa {
            num_symbols: self.num_symbols,
            table,
            start: 0,
            finals,
        })
    }
}

fn check_set(set: &[u32], positions: &[Symbol]) -> Result<(), UnambiguityError> {
    let mut seen: HashMap<Symbol, u32> = HashMap::new();
    for &p in set {
        let sym = positions[(p - 1) as usize];
        if let Some(&q) = seen.get(&sym) {
            if q != p {
                return Err(UnambiguityError { symbol: sym });
            }
        } else {
            seen.insert(sym, p);
        }
    }
    Ok(())
}

fn push_unique(v: &mut Vec<u32>, x: u32) {
    if !v.contains(&x) {
        v.push(x);
    }
}

/// Unrolls every `Repeat` node into `Seq`/`Opt`/`Star` form.
fn expand_repeats(re: &Regex) -> Regex {
    match re {
        Regex::Empty | Regex::Epsilon | Regex::Sym(_) => re.clone(),
        Regex::Seq(parts) => Regex::seq(parts.iter().map(expand_repeats)),
        Regex::Alt(parts) => Regex::alt(parts.iter().map(expand_repeats)),
        Regex::Star(inner) => Regex::star(expand_repeats(inner)),
        Regex::Plus(inner) => Regex::plus(expand_repeats(inner)),
        Regex::Opt(inner) => Regex::opt(expand_repeats(inner)),
        Regex::Repeat(inner, min, max) => {
            let inner = expand_repeats(inner);
            let mut parts = Vec::new();
            for _ in 0..*min {
                parts.push(inner.clone());
            }
            match max {
                None => parts.push(Regex::star(inner)),
                Some(m) => {
                    // The optional tail: r?{m-min} — nested options keep the
                    // Glushkov automaton deterministic when r is.
                    let extra = m - min;
                    if extra > 0 {
                        let mut tail = Regex::opt(inner.clone());
                        for _ in 1..extra {
                            tail = Regex::opt(Regex::seq([inner.clone(), tail]));
                        }
                        parts.push(tail);
                    }
                }
            }
            Regex::seq(parts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn glushkov(pattern: &str) -> (Glushkov, Alphabet) {
        let mut ab = Alphabet::new();
        let re = Regex::parse(pattern, &mut ab).unwrap();
        let g = Glushkov::new(&re, ab.len());
        (g, ab)
    }

    fn accepts(g: &Glushkov, ab: &Alphabet, w: &str) -> bool {
        let word: Vec<Symbol> = w
            .split('.')
            .filter(|s| !s.is_empty())
            .map(|s| ab.lookup(s).expect("known symbol"))
            .collect();
        g.to_nfa().accepts(&word)
    }

    #[test]
    fn position_automaton_accepts_language() {
        let (g, ab) = glushkov("title.date.(Get_Temp|temp).(TimeOut|exhibit*)");
        assert!(accepts(&g, &ab, "title.date.Get_Temp.TimeOut"));
        assert!(accepts(&g, &ab, "title.date.temp"));
        assert!(accepts(&g, &ab, "title.date.temp.exhibit.exhibit"));
        assert!(!accepts(&g, &ab, "title.date"));
        assert_eq!(g.num_positions(), 6);
    }

    #[test]
    fn paper_models_are_deterministic() {
        for model in [
            "title.date.(Get_Temp | temp).(TimeOut | exhibit*)",
            "title.date.temp.(TimeOut | exhibit*)",
            "title.date.temp.exhibit*",
            "(exhibit | performance)*",
            "title.(Get_Date | date)",
        ] {
            let (g, _) = glushkov(model);
            assert!(
                g.check_unambiguous().is_ok(),
                "{model} should be deterministic"
            );
        }
    }

    #[test]
    fn classic_nondeterministic_models_detected() {
        // (a.b)|(a.c): two first-positions on 'a'.
        let (g, ab) = glushkov("(a.b)|(a.c)");
        let err = g.check_unambiguous().unwrap_err();
        assert_eq!(err.symbol, ab.lookup("a").unwrap());
        // a*.a is the canonical 1-ambiguous model.
        let (g, _) = glushkov("a*.a");
        assert!(g.check_unambiguous().is_err());
        // (a|b)*.a.(a|b): textbook NFA-only language.
        let (g, _) = glushkov("(a|b)*.a.(a|b)");
        assert!(g.check_unambiguous().is_err());
    }

    #[test]
    fn deterministic_dfa_matches_nfa() {
        let (g, ab) = glushkov("title.date.(Get_Temp|temp).(TimeOut|exhibit*)");
        let dfa = g.to_dfa().unwrap();
        let nfa = g.to_nfa();
        for w in [
            "title.date.Get_Temp.TimeOut",
            "title.date.temp.exhibit",
            "title.date",
            "title.date.temp.exhibit.TimeOut",
            "",
        ] {
            let word: Vec<Symbol> = w
                .split('.')
                .filter(|s| !s.is_empty())
                .map(|s| ab.lookup(s).unwrap())
                .collect();
            assert_eq!(dfa.accepts(&word), nfa.accepts(&word), "word {w}");
        }
    }

    #[test]
    fn to_dfa_rejects_ambiguous() {
        let (g, _) = glushkov("a*.a");
        assert!(g.to_dfa().is_err());
    }

    #[test]
    fn repeats_are_unrolled_deterministically() {
        let (g, ab) = glushkov("a{2,4}.b");
        assert!(g.check_unambiguous().is_ok());
        assert!(accepts(&g, &ab, "a.a.b"));
        assert!(accepts(&g, &ab, "a.a.a.b"));
        assert!(accepts(&g, &ab, "a.a.a.a.b"));
        assert!(!accepts(&g, &ab, "a.b"));
        assert!(!accepts(&g, &ab, "a.a.a.a.a.b"));
    }

    #[test]
    fn nullable_languages_accept_empty() {
        let (g, ab) = glushkov("(a|b)*");
        assert!(accepts(&g, &ab, ""));
        assert!(g.nullable);
        let dfa = g.to_dfa().unwrap();
        assert!(dfa.accepts(&[]));
    }

    #[test]
    fn empty_and_epsilon() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        let g = Glushkov::new(&Regex::Empty, ab.len());
        assert!(!g.to_nfa().accepts(&[]));
        let g = Glushkov::new(&Regex::Epsilon, ab.len());
        assert!(g.to_nfa().accepts(&[]));
        assert!(!g.to_nfa().accepts(&[0]));
    }
}
