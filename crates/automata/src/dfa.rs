//! Deterministic finite automata.
//!
//! The safe-rewriting algorithm (Fig. 3 of the paper) needs a *deterministic
//! and complete* automaton for the complement of the target content model.
//! This module provides subset construction, completion with a sink state,
//! complementation, products, Moore minimization, emptiness and witness
//! extraction.

use crate::alphabet::Symbol;
use crate::nfa::Nfa;
use axml_support::hash::FxHashMap;
use std::collections::HashMap;

/// Sentinel for a missing transition in a partial DFA.
pub const NO_STATE: u32 = u32::MAX;

/// A (possibly partial) DFA over the dense alphabet `0..num_symbols`.
///
/// The transition table is a flat row-major matrix: entry
/// `table[state * num_symbols + symbol]` is the successor state or
/// [`NO_STATE`].
#[derive(Debug, Clone)]
pub struct Dfa {
    /// Alphabet size.
    pub num_symbols: usize,
    /// Flat transition table, `num_states × num_symbols`.
    pub table: Vec<u32>,
    /// Initial state.
    pub start: u32,
    /// `finals[s]` is true iff state `s` accepts.
    pub finals: Vec<bool>,
}

impl Dfa {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.finals.len()
    }

    /// The successor of `state` on `sym`, or [`NO_STATE`].
    #[inline]
    pub fn next(&self, state: u32, sym: Symbol) -> u32 {
        self.table[state as usize * self.num_symbols + sym as usize]
    }

    /// True iff the DFA accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut s = self.start;
        for &sym in word {
            s = self.next(s, sym);
            if s == NO_STATE {
                return false;
            }
        }
        self.finals[s as usize]
    }

    /// Subset construction from an ε-NFA. The result is partial (no sink).
    pub fn determinize(nfa: &Nfa) -> Dfa {
        let num_symbols = nfa.num_symbols;
        let start_set = nfa.eps_closure(&[nfa.start]);
        let mut ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut sets: Vec<Vec<u32>> = Vec::new();
        let mut table: Vec<u32> = Vec::new();
        let mut finals: Vec<bool> = Vec::new();

        // Intern the start set, then process subset-states in discovery
        // order; every newly interned set is appended, so a cursor doubles
        // as the worklist.
        ids.insert(start_set.clone(), 0);
        finals.push(nfa.contains_final(&start_set));
        sets.push(start_set);
        table.extend(std::iter::repeat_n(NO_STATE, num_symbols));
        let start = 0u32;
        let mut cursor = 0usize;
        while cursor < sets.len() {
            // Group transitions by symbol to avoid scanning the whole
            // alphabet for sparse automata.
            let set = sets[cursor].clone();
            let mut by_sym: HashMap<Symbol, Vec<u32>> = HashMap::new();
            for &st in &set {
                for &(a, t) in &nfa.trans[st as usize] {
                    by_sym.entry(a).or_default().push(t);
                }
            }
            for (sym, targets) in by_sym {
                let next_set = nfa.eps_closure(&targets);
                if next_set.is_empty() {
                    continue;
                }
                let t = match ids.get(&next_set) {
                    Some(&id) => id,
                    None => {
                        let id = sets.len() as u32;
                        ids.insert(next_set.clone(), id);
                        finals.push(nfa.contains_final(&next_set));
                        sets.push(next_set);
                        table.extend(std::iter::repeat_n(NO_STATE, num_symbols));
                        id
                    }
                };
                table[cursor * num_symbols + sym as usize] = t;
            }
            cursor += 1;
        }
        Dfa {
            num_symbols,
            table,
            start,
            finals,
        }
    }

    /// Returns a *complete* copy over an alphabet of `num_symbols` symbols:
    /// every state has a transition on every symbol, adding a non-accepting
    /// sink if needed. `num_symbols` must be at least `self.num_symbols`
    /// (the alphabet may be widened, e.g. to cover document-only symbols).
    pub fn completed(&self, num_symbols: usize) -> Dfa {
        assert!(
            num_symbols >= self.num_symbols,
            "cannot shrink the alphabet"
        );
        let n = self.num_states();
        let needs_sink = num_symbols > self.num_symbols
            || (0..n).any(|s| {
                (0..self.num_symbols).any(|a| self.table[s * self.num_symbols + a] == NO_STATE)
            });
        let total = if needs_sink { n + 1 } else { n };
        let sink = n as u32;
        let mut table = vec![sink; total * num_symbols];
        for s in 0..n {
            for a in 0..self.num_symbols {
                let t = self.table[s * self.num_symbols + a];
                table[s * num_symbols + a] = if t == NO_STATE { sink } else { t };
            }
        }
        let mut finals = self.finals.clone();
        if needs_sink {
            finals.push(false);
        }
        Dfa {
            num_symbols,
            table,
            start: self.start,
            finals,
        }
    }

    /// True if every state has a successor on every symbol.
    pub fn is_complete(&self) -> bool {
        self.table.iter().all(|&t| t != NO_STATE)
    }

    /// Complements the automaton by flipping accepting states.
    ///
    /// # Panics
    /// Panics if the automaton is not complete — complement a
    /// [`Dfa::completed`] automaton.
    pub fn complemented(&self) -> Dfa {
        assert!(
            self.is_complete(),
            "complement requires a complete DFA; call completed() first"
        );
        let mut out = self.clone();
        for f in &mut out.finals {
            *f = !*f;
        }
        out
    }

    /// Product automaton; `accept` combines the two acceptance flags
    /// (e.g. `&&` for intersection, `||` for union).
    pub fn product(&self, other: &Dfa, accept: impl Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(
            self.num_symbols, other.num_symbols,
            "product requires matching alphabets"
        );
        let num_symbols = self.num_symbols;
        // Pair keys are packed into one u64 and interned through the
        // deterministic fast hasher: the product is quadratic in the
        // worst case, so SipHash on a tuple key dominates the profile.
        let pack = |a: u32, b: u32| (u64::from(a) << 32) | u64::from(b);
        let mut ids: FxHashMap<u64, u32> = FxHashMap::default();
        let expected = self.num_states().max(other.num_states()) * 2;
        ids.reserve(expected);
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(expected);
        let mut table: Vec<u32> = Vec::new();
        let mut finals: Vec<bool> = Vec::with_capacity(expected);
        // Intern the start pair, then process states in discovery order;
        // every newly interned pair is appended to `pairs`, so a simple
        // cursor doubles as the worklist.
        let start_pair = (self.start, other.start);
        ids.insert(pack(self.start, other.start), 0);
        finals.push(accept(
            self.finals[self.start as usize],
            other.finals[other.start as usize],
        ));
        pairs.push(start_pair);
        table.extend(std::iter::repeat_n(NO_STATE, num_symbols));
        let start = 0u32;
        let mut cursor = 0usize;
        while cursor < pairs.len() {
            let (p, q) = pairs[cursor];
            for a in 0..num_symbols {
                let tp = self.next(p, a as Symbol);
                let tq = other.next(q, a as Symbol);
                if tp == NO_STATE || tq == NO_STATE {
                    continue;
                }
                let t = match ids.get(&pack(tp, tq)) {
                    Some(&id) => id,
                    None => {
                        let id = pairs.len() as u32;
                        ids.insert(pack(tp, tq), id);
                        finals.push(accept(self.finals[tp as usize], other.finals[tq as usize]));
                        pairs.push((tp, tq));
                        table.extend(std::iter::repeat_n(NO_STATE, num_symbols));
                        id
                    }
                };
                table[cursor * num_symbols + a] = t;
            }
            cursor += 1;
        }
        Dfa {
            num_symbols,
            table,
            start,
            finals,
        }
    }

    /// True iff the language is empty (no accepting state reachable).
    ///
    /// Unlike [`Dfa::shortest_accepted`] this never builds the BFS parent
    /// chain or reconstructs a witness: a bitset-driven DFS that returns
    /// on the first reachable accepting state, allocation-free when the
    /// start state already decides the answer. `subset_of` and
    /// `equivalent` sit on this in the schema-compatibility hot path.
    pub fn is_empty_language(&self) -> bool {
        if self.finals[self.start as usize] {
            return false;
        }
        if !self.finals.iter().any(|&f| f) {
            return true;
        }
        let n = self.num_states();
        let mut seen = vec![0u64; n.div_ceil(64)];
        let mut stack = Vec::with_capacity(64);
        seen[self.start as usize / 64] |= 1u64 << (self.start as usize % 64);
        stack.push(self.start);
        while let Some(s) = stack.pop() {
            let row = s as usize * self.num_symbols;
            for &t in &self.table[row..row + self.num_symbols] {
                if t == NO_STATE {
                    continue;
                }
                let (word, bit) = (t as usize / 64, 1u64 << (t as usize % 64));
                if seen[word] & bit == 0 {
                    if self.finals[t as usize] {
                        return false;
                    }
                    seen[word] |= bit;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// A shortest accepted word, or `None` if the language is empty
    /// (BFS from the start state).
    pub fn shortest_accepted(&self) -> Option<Vec<Symbol>> {
        let n = self.num_states();
        let mut prev: Vec<Option<(u32, Symbol)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[self.start as usize] = true;
        queue.push_back(self.start);
        let mut hit = if self.finals[self.start as usize] {
            Some(self.start)
        } else {
            None
        };
        'bfs: while let Some(s) = queue.pop_front() {
            if hit.is_some() {
                break;
            }
            for a in 0..self.num_symbols {
                let t = self.next(s, a as Symbol);
                if t != NO_STATE && !seen[t as usize] {
                    seen[t as usize] = true;
                    prev[t as usize] = Some((s, a as Symbol));
                    if self.finals[t as usize] {
                        hit = Some(t);
                        break 'bfs;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut cur = hit?;
        let mut word = Vec::new();
        while let Some((p, a)) = prev[cur as usize] {
            word.push(a);
            cur = p;
        }
        word.reverse();
        Some(word)
    }

    /// Moore partition-refinement minimization.
    ///
    /// Input must be complete; the result is complete, minimal, and preserves
    /// the language. Unreachable states are dropped first.
    pub fn minimized(&self) -> Dfa {
        assert!(self.is_complete(), "minimize requires a complete DFA");
        // 1. Restrict to reachable states.
        let n = self.num_states();
        let mut reach = vec![false; n];
        let mut stack = vec![self.start];
        reach[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            for a in 0..self.num_symbols {
                let t = self.next(s, a as Symbol);
                if !reach[t as usize] {
                    reach[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        let states: Vec<u32> = (0..n as u32).filter(|&s| reach[s as usize]).collect();
        // 2. Initial partition: accepting / non-accepting.
        let mut class = vec![0u32; n];
        for &s in &states {
            class[s as usize] = u32::from(self.finals[s as usize]);
        }
        let mut num_classes = 2;
        loop {
            // Signature of a state: (class, class of successor per symbol).
            let mut sig_ids: HashMap<Vec<u32>, u32> = HashMap::new();
            let mut new_class = vec![0u32; n];
            for &s in &states {
                let mut sig = Vec::with_capacity(self.num_symbols + 1);
                sig.push(class[s as usize]);
                for a in 0..self.num_symbols {
                    sig.push(class[self.next(s, a as Symbol) as usize]);
                }
                let next_id = sig_ids.len() as u32;
                let id = *sig_ids.entry(sig).or_insert(next_id);
                new_class[s as usize] = id;
            }
            let new_num = sig_ids.len();
            class = new_class;
            if new_num == num_classes {
                break;
            }
            num_classes = new_num;
        }
        // 3. Build the quotient automaton.
        let mut table = vec![NO_STATE; num_classes * self.num_symbols];
        let mut finals = vec![false; num_classes];
        for &s in &states {
            let c = class[s as usize] as usize;
            finals[c] = self.finals[s as usize];
            for a in 0..self.num_symbols {
                table[c * self.num_symbols + a] = class[self.next(s, a as Symbol) as usize];
            }
        }
        Dfa {
            num_symbols: self.num_symbols,
            table,
            start: class[self.start as usize],
            finals,
        }
    }

    /// True iff `lang(self) ⊆ lang(other)` (both complete, same alphabet).
    pub fn subset_of(&self, other: &Dfa) -> bool {
        // L1 ⊆ L2 ⟺ L1 ∩ ¬L2 = ∅.
        self.product(&other.complemented(), |a, b| a && b)
            .is_empty_language()
    }

    /// True iff this DFA and `other` accept the same language
    /// (both must be complete over the same alphabet).
    pub fn equivalent(&self, other: &Dfa) -> bool {
        // L1 Δ L2 empty ⟺ equivalence.
        let xor = self.product(other, |a, b| a != b);
        xor.is_empty_language()
    }

    /// States from which an accepting state is reachable ("live" states).
    pub fn coaccessible(&self) -> Vec<bool> {
        let n = self.num_states();
        // Build reverse adjacency.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for s in 0..n {
            for a in 0..self.num_symbols {
                let t = self.next(s as u32, a as Symbol);
                if t != NO_STATE {
                    rev[t as usize].push(s as u32);
                }
            }
        }
        let mut live = vec![false; n];
        let mut stack: Vec<u32> = (0..n as u32).filter(|&s| self.finals[s as usize]).collect();
        for &s in &stack {
            live[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s as usize] {
                if !live[p as usize] {
                    live[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        live
    }

    /// True if `state` is an accepting sink: accepting, and every outgoing
    /// transition loops back to itself. Used by the lazy pruning variant of
    /// the safe-rewriting algorithm (Sec. 7, "Sink nodes").
    pub fn is_accepting_sink(&self, state: u32) -> bool {
        self.finals[state as usize]
            && (0..self.num_symbols).all(|a| self.next(state, a as Symbol) == state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::Regex;

    fn dfa_of(pattern: &str, extra: &[&str]) -> (Dfa, Alphabet) {
        let mut ab = Alphabet::new();
        let re = Regex::parse(pattern, &mut ab).unwrap();
        for e in extra {
            ab.intern(e);
        }
        let nfa = Nfa::thompson(&re, ab.len());
        (Dfa::determinize(&nfa), ab)
    }

    fn word(ab: &Alphabet, w: &str) -> Vec<Symbol> {
        w.split('.')
            .filter(|s| !s.is_empty())
            .map(|s| ab.lookup(s).expect("symbol must be interned"))
            .collect()
    }

    #[test]
    fn determinize_agrees_with_nfa() {
        let (dfa, ab) = dfa_of("title.date.(Get_Temp|temp).(TimeOut|exhibit*)", &[]);
        assert!(dfa.accepts(&word(&ab, "title.date.Get_Temp.TimeOut")));
        assert!(dfa.accepts(&word(&ab, "title.date.temp")));
        assert!(dfa.accepts(&word(&ab, "title.date.temp.exhibit.exhibit")));
        assert!(!dfa.accepts(&word(&ab, "title.date")));
        assert!(!dfa.accepts(&word(&ab, "title.date.temp.TimeOut.TimeOut")));
    }

    #[test]
    fn completion_adds_sink_and_complement_flips() {
        let (dfa, ab) = dfa_of("a.b", &["c"]);
        let complete = dfa.completed(ab.len());
        assert!(complete.is_complete());
        let comp = complete.complemented();
        assert!(!comp.accepts(&word(&ab, "a.b")));
        assert!(comp.accepts(&word(&ab, "a")));
        assert!(comp.accepts(&word(&ab, "a.b.c")));
        assert!(comp.accepts(&[]));
    }

    #[test]
    #[should_panic(expected = "complete")]
    fn complement_requires_complete() {
        let (dfa, _) = dfa_of("a.b", &[]);
        let _ = dfa.complemented();
    }

    #[test]
    fn product_intersection() {
        let (d1, mut ab) = {
            let mut ab = Alphabet::new();
            let re = Regex::parse("a*b", &mut ab).unwrap();
            let nfa = Nfa::thompson(&re, 2);
            (Dfa::determinize(&nfa), ab)
        };
        let re2 = Regex::parse("a.a*.b", &mut ab).unwrap();
        let d2 = Dfa::determinize(&Nfa::thompson(&re2, 2));
        let inter = d1.completed(2).product(&d2.completed(2), |x, y| x && y);
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        assert!(inter.accepts(&[a, b]));
        assert!(inter.accepts(&[a, a, b]));
        assert!(!inter.accepts(&[b])); // in L1, not L2
    }

    #[test]
    fn emptiness_and_witness() {
        let (dfa, ab) = dfa_of("a.b|a.c", &[]);
        let w = dfa.shortest_accepted().unwrap();
        assert_eq!(w.len(), 2);
        assert!(dfa.accepts(&w));
        // Intersection of disjoint languages is empty.
        let re2 = {
            let mut ab2 = ab.clone();
            Regex::parse("b.a", &mut ab2).unwrap()
        };
        let d2 = Dfa::determinize(&Nfa::thompson(&re2, ab.len()));
        let inter = dfa
            .completed(ab.len())
            .product(&d2.completed(ab.len()), |x, y| x && y);
        assert!(inter.is_empty_language());
    }

    #[test]
    fn emptiness_agrees_with_witness_search() {
        let (dfa, ab) = dfa_of("a.b|a.c", &[]);
        assert_eq!(dfa.is_empty_language(), dfa.shortest_accepted().is_none());
        let comp = dfa.completed(ab.len()).complemented();
        assert_eq!(comp.is_empty_language(), comp.shortest_accepted().is_none());
        // ε in the language: decided before touching the table.
        let (star, _) = dfa_of("a*", &[]);
        assert!(!star.is_empty_language());
        // No accepting state at all: decided without traversal.
        let none = Dfa {
            num_symbols: 1,
            table: vec![0],
            start: 0,
            finals: vec![false],
        };
        assert!(none.is_empty_language());
        assert!(none.shortest_accepted().is_none());
    }

    #[test]
    fn minimization_preserves_language_and_shrinks() {
        let (dfa, ab) = dfa_of("(a|b)*a(a|b)", &[]);
        let complete = dfa.completed(ab.len());
        let min = complete.minimized();
        assert!(min.num_states() <= complete.num_states());
        assert!(min.equivalent(&complete));
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        assert!(min.accepts(&[a, a]));
        assert!(min.accepts(&[b, a, b]));
        assert!(!min.accepts(&[a]));
    }

    #[test]
    fn subset_relation() {
        let mk = |pattern: &str, ab: &mut Alphabet| {
            let re = Regex::parse(pattern, ab).unwrap();
            Dfa::determinize(&Nfa::thompson(&re, 2))
        };
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let aa = mk("a.a", &mut ab).completed(2);
        let astar = mk("a*", &mut ab).completed(2);
        let ab_lang = mk("(a|b)*", &mut ab).completed(2);
        assert!(aa.subset_of(&astar));
        assert!(astar.subset_of(&ab_lang));
        assert!(!astar.subset_of(&aa));
        assert!(!ab_lang.subset_of(&astar));
        assert!(astar.subset_of(&astar));
    }

    #[test]
    fn equivalent_detects_difference() {
        let (d1, ab) = dfa_of("a*", &["b"]);
        let (d2, _) = {
            let mut ab2 = Alphabet::new();
            let re = Regex::parse("a.a*", &mut ab2).unwrap();
            ab2.intern("b");
            let nfa = Nfa::thompson(&re, ab2.len());
            (Dfa::determinize(&nfa), ab2)
        };
        let c1 = d1.completed(ab.len());
        let c2 = d2.completed(ab.len());
        assert!(!c1.equivalent(&c2)); // differ on ε
        assert!(c1.equivalent(&c1.minimized()));
    }

    #[test]
    fn accepting_sink_detection() {
        // (a|b)* : after minimization, a single accepting state looping on
        // everything.
        let (dfa, ab) = dfa_of("(a|b)*", &[]);
        let complete = dfa.completed(ab.len()).minimized();
        assert!(complete.is_accepting_sink(complete.start));
        // Complement of a.b has an accepting sink (the error sink).
        let (d2, ab2) = dfa_of("a.b", &[]);
        let comp = d2.completed(ab2.len()).complemented();
        let sink_exists = (0..comp.num_states() as u32).any(|s| comp.is_accepting_sink(s));
        assert!(sink_exists);
    }

    #[test]
    fn coaccessible_marks_live_states() {
        let (dfa, ab) = dfa_of("a.b", &["c"]);
        let complete = dfa.completed(ab.len());
        let live = complete.coaccessible();
        assert!(live[complete.start as usize]);
        // The sink cannot reach acceptance.
        let sink = (0..complete.num_states() as u32)
            .find(|&s| {
                !complete.finals[s as usize]
                    && (0..ab.len()).all(|a| complete.next(s, a as Symbol) == s)
            })
            .unwrap();
        assert!(!live[sink as usize]);
    }
}

impl Dfa {
    /// Renders the automaton in Graphviz DOT format, resolving symbol names
    /// through `alphabet`. Accepting states are drawn as double circles.
    pub fn to_dot(&self, alphabet: &crate::Alphabet, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle];");
        for s in 0..self.num_states() as u32 {
            let shape = if self.finals[s as usize] {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  q{s} [shape={shape}];");
        }
        let _ = writeln!(out, "  start [shape=point];");
        let _ = writeln!(out, "  start -> q{};", self.start);
        // Group parallel edges into one label.
        for s in 0..self.num_states() as u32 {
            let mut by_target: std::collections::BTreeMap<u32, Vec<&str>> =
                std::collections::BTreeMap::new();
            for a in 0..self.num_symbols {
                let t = self.next(s, a as Symbol);
                if t != NO_STATE {
                    by_target
                        .entry(t)
                        .or_default()
                        .push(alphabet.name(a as Symbol));
                }
            }
            for (t, labels) in by_target {
                let _ = writeln!(out, "  q{s} -> q{t} [label=\"{}\"];", labels.join(", "));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::{Alphabet, Nfa, Regex};

    #[test]
    fn dot_output_is_wellformed() {
        let mut ab = Alphabet::new();
        let re = Regex::parse("a.b*", &mut ab).unwrap();
        let dfa = Dfa::determinize(&Nfa::thompson(&re, ab.len()));
        let dot = dfa.to_dot(&ab, "test");
        assert!(dot.starts_with("digraph test {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("label=\"a\""));
        // Parallel symbols grouped on one edge.
        let re2 = Regex::parse("(a|b)", &mut ab).unwrap();
        let d2 = Dfa::determinize(&Nfa::thompson(&re2, ab.len()));
        let dot2 = d2.to_dot(&ab, "t2");
        assert!(dot2.contains("a, b"));
    }
}
