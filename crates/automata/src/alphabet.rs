//! Symbol interning.
//!
//! All automata in this crate run over a dense alphabet `0..n` of [`Symbol`]
//! identifiers. The [`Alphabet`] maps human-readable names (element labels,
//! function names, residual pattern classes, …) to identifiers and back.

use std::collections::HashMap;
use std::fmt;

/// A dense symbol identifier, valid for the [`Alphabet`] that produced it.
pub type Symbol = u32;

/// An interner mapping names to dense [`Symbol`] identifiers.
///
/// Interning the alphabet once and reusing symbol ids everywhere keeps the
/// automata representations compact (transition tables indexed by symbol) and
/// makes symbol comparison a single integer compare.
#[derive(Debug, Clone, Default)]
pub struct Alphabet {
    names: Vec<String>,
    ids: HashMap<String, Symbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol; idempotent.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as Symbol;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.ids.get(name).copied()
    }

    /// Returns the name of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this alphabet.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym as usize]
    }

    /// Number of interned symbols (the alphabet size `n`; symbols are `0..n`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as Symbol, n.as_str()))
    }

    /// Renders a word of symbols as a dotted string (paper notation).
    pub fn format_word(&self, word: &[Symbol]) -> String {
        let mut out = String::new();
        for (i, &s) in word.iter().enumerate() {
            if i > 0 {
                out.push('.');
            }
            out.push_str(self.name(s));
        }
        out
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut ab = Alphabet::new();
        let a = ab.intern("title");
        let b = ab.intern("date");
        assert_eq!(a, ab.intern("title"));
        assert_ne!(a, b);
        assert_eq!(ab.len(), 2);
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let mut ab = Alphabet::new();
        let s = ab.intern("Get_Temp");
        assert_eq!(ab.lookup("Get_Temp"), Some(s));
        assert_eq!(ab.lookup("absent"), None);
        assert_eq!(ab.name(s), "Get_Temp");
    }

    #[test]
    fn format_word_uses_dots() {
        let mut ab = Alphabet::new();
        let w = vec![ab.intern("title"), ab.intern("date")];
        assert_eq!(ab.format_word(&w), "title.date");
        assert_eq!(ab.format_word(&[]), "");
    }

    #[test]
    fn iter_in_order() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let v: Vec<_> = ab.iter().map(|(s, n)| (s, n.to_owned())).collect();
        assert_eq!(v, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }
}
