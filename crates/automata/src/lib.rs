//! Finite-automata and regular-expression toolkit for the Active XML system.
//!
//! This crate is the algorithmic substrate of the SIGMOD 2003 paper
//! *Exchanging Intensional XML Data*: every schema content model is a regular
//! expression over element labels and function names, and every rewriting
//! decision reduces to constructions on the corresponding finite automata
//! (Glushkov position automata, subset-construction DFAs, completion,
//! complementation, products, emptiness and reachability tests).
//!
//! The crate is deliberately self-contained and generic: symbols are dense
//! `u32` identifiers interned through an [`Alphabet`], which lets higher
//! layers map element labels, concrete function names, function-pattern
//! residual classes and wildcard buckets onto a single finite alphabet.
//!
//! # Quick tour
//!
//! ```
//! use axml_automata::{Alphabet, Regex, Nfa, Dfa};
//!
//! let mut ab = Alphabet::new();
//! // The paper's newspaper content model: title.date.(Get_Temp|temp).(TimeOut|exhibit*)
//! let re = Regex::parse("title.date.(Get_Temp|temp).(TimeOut|exhibit*)", &mut ab).unwrap();
//! let nfa = Nfa::thompson(&re, ab.len());
//! let dfa = Dfa::determinize(&nfa);
//! let w: Vec<u32> = ["title", "date", "temp", "exhibit", "exhibit"]
//!     .iter().map(|s| ab.intern(s)).collect();
//! assert!(dfa.accepts(&w));
//! let comp = dfa.completed(ab.len()).complemented();
//! assert!(!comp.accepts(&w));
//! ```

#![warn(missing_docs)]

mod alphabet;
mod dfa;
mod glushkov;
mod nfa;
mod parse;
mod regex;
mod sample;

pub use alphabet::{Alphabet, Symbol};
pub use dfa::{Dfa, NO_STATE};
pub use glushkov::{Glushkov, UnambiguityError};
pub use nfa::Nfa;
pub use parse::ParseError;
pub use regex::Regex;
pub use sample::{sample_word, SampleConfig};
