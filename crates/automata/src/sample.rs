//! Random sampling of words from a regular language.
//!
//! Safe rewriting quantifies universally over *all* output instances a
//! service may return (Sec. 2, Def. 4 of the paper: a function node is
//! replaced by an *arbitrary* output instance of its type). The simulated
//! adversarial services in `axml-services` use this sampler to draw such
//! arbitrary instances, and the property-test suites use it to cross-check
//! the automata constructions.

use crate::alphabet::Symbol;
use crate::regex::Regex;
use axml_support::rng::{Rng, RngExt};

/// Tuning knobs for [`sample_word`].
#[derive(Debug, Clone, Copy)]
pub struct SampleConfig {
    /// Probability of taking one more iteration of a `*`/`+` loop
    /// (geometric distribution).
    pub star_continue: f64,
    /// Hard cap on iterations of a single starred subexpression.
    pub max_star: u32,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            star_continue: 0.5,
            max_star: 8,
        }
    }
}

/// Draws a uniform-ish random word from `lang(re)`.
///
/// Returns `None` iff the language is empty. Alternation branches that
/// denote the empty language are never taken.
pub fn sample_word<R: Rng + ?Sized>(
    re: &Regex,
    rng: &mut R,
    config: &SampleConfig,
) -> Option<Vec<Symbol>> {
    if re.is_empty_language() {
        return None;
    }
    let mut out = Vec::new();
    sample_into(re, rng, config, &mut out);
    Some(out)
}

fn sample_into<R: Rng + ?Sized>(
    re: &Regex,
    rng: &mut R,
    config: &SampleConfig,
    out: &mut Vec<Symbol>,
) {
    match re {
        Regex::Empty => unreachable!("empty branches are filtered by the caller"),
        Regex::Epsilon => {}
        Regex::Sym(s) => out.push(*s),
        Regex::Seq(parts) => {
            for p in parts {
                sample_into(p, rng, config, out);
            }
        }
        Regex::Alt(parts) => {
            let viable: Vec<&Regex> = parts.iter().filter(|p| !p.is_empty_language()).collect();
            debug_assert!(!viable.is_empty());
            let pick = rng.random_range(0..viable.len());
            sample_into(viable[pick], rng, config, out);
        }
        Regex::Star(inner) => {
            let mut n = 0;
            while n < config.max_star && rng.random_bool(config.star_continue) {
                sample_into(inner, rng, config, out);
                n += 1;
            }
        }
        Regex::Plus(inner) => {
            sample_into(inner, rng, config, out);
            let mut n = 1;
            while n < config.max_star && rng.random_bool(config.star_continue) {
                sample_into(inner, rng, config, out);
                n += 1;
            }
        }
        Regex::Opt(inner) => {
            if rng.random_bool(0.5) {
                sample_into(inner, rng, config, out);
            }
        }
        Regex::Repeat(inner, min, max) => {
            let hi = max.unwrap_or(min + config.max_star);
            let n = rng.random_range(*min..=hi);
            for _ in 0..n {
                sample_into(inner, rng, config, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::nfa::Nfa;
    use axml_support::rng::SeedableRng;

    #[test]
    fn samples_are_in_the_language() {
        let mut ab = Alphabet::new();
        let patterns = [
            "title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
            "(exhibit | performance)*",
            "a{2,5}.b?",
            "a+.(b|c)*",
            "ε",
        ];
        let mut rng = axml_support::rng::StdRng::seed_from_u64(42);
        for pattern in patterns {
            let re = Regex::parse(pattern, &mut ab).unwrap();
            let nfa = Nfa::thompson(&re, ab.len());
            for _ in 0..200 {
                let w = sample_word(&re, &mut rng, &SampleConfig::default())
                    .expect("non-empty language");
                assert!(nfa.accepts(&w), "sampled word rejected for {pattern}");
            }
        }
    }

    #[test]
    fn empty_language_yields_none() {
        let mut rng = axml_support::rng::StdRng::seed_from_u64(1);
        assert_eq!(
            sample_word(&Regex::Empty, &mut rng, &SampleConfig::default()),
            None
        );
        let dead = Regex::seq([Regex::sym(0), Regex::Empty]);
        assert_eq!(sample_word(&dead, &mut rng, &SampleConfig::default()), None);
    }

    #[test]
    fn alternation_eventually_covers_all_branches() {
        let mut ab = Alphabet::new();
        let re = Regex::parse("a|b|c", &mut ab).unwrap();
        let mut rng = axml_support::rng::StdRng::seed_from_u64(7);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let w = sample_word(&re, &mut rng, &SampleConfig::default()).unwrap();
            seen[w[0] as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all branches should be sampled");
    }

    #[test]
    fn star_respects_cap() {
        let mut ab = Alphabet::new();
        let re = Regex::parse("a*", &mut ab).unwrap();
        let cfg = SampleConfig {
            star_continue: 0.99,
            max_star: 3,
        };
        let mut rng = axml_support::rng::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let w = sample_word(&re, &mut rng, &cfg).unwrap();
            assert!(w.len() <= 3);
        }
    }
}
