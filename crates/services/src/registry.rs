//! The service registry: a simulated UDDI plus access control.
//!
//! The paper's function patterns rely on boolean predicates implemented as
//! Web services — `UDDIF` ("is this function registered in the UDDI
//! registry?") and `InACL` ("may this client call it?") in the Sec. 2.1
//! example. The [`Registry`] provides both: it stores service descriptions
//! and implementations, maintains per-principal access-control lists, and
//! implements [`PatternOracle`] so compiled schemas can evaluate pattern
//! membership against it.
//!
//! It also implements the rewriter's [`Invoker`] boundary through
//! [`Registry::invoker`], with full call accounting (calls, fees, simulated
//! latency, side effects) — the inputs to the paper's Sec. 1 trade-offs.

use crate::service::{ServiceDef, ServiceError, ServiceImpl};
use axml_core::invoke::{InvokeError, Invoker};
use axml_schema::{ITree, PatternOracle, SchemaBuilder};
use axml_support::sync::RwLock;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

struct Registered {
    def: ServiceDef,
    imp: Arc<dyn ServiceImpl>,
}

/// Cumulative call accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallStats {
    /// Total calls, per service.
    pub calls: BTreeMap<String, u64>,
    /// Total fees charged, in cents.
    pub fees_cents: u64,
    /// Total simulated latency, in microseconds.
    pub latency_us: u64,
    /// Calls made to services with side effects.
    pub side_effect_calls: u64,
}

impl CallStats {
    /// Total number of calls across services.
    pub fn total_calls(&self) -> u64 {
        self.calls.values().sum()
    }
}

#[derive(Default)]
struct Inner {
    services: HashMap<String, Registered>,
    /// principal -> set of services it may call.
    acls: HashMap<String, BTreeSet<String>>,
    stats: CallStats,
}

/// A thread-safe UDDI-like service registry.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service (replacing any previous entry with that name).
    pub fn register(&self, def: ServiceDef, imp: Arc<dyn ServiceImpl>) {
        self.inner
            .write()
            .services
            .insert(def.name.clone(), Registered { def, imp });
    }

    /// Registers a closure-backed service.
    pub fn register_fn<F>(&self, def: ServiceDef, f: F)
    where
        F: Fn(&[ITree]) -> Result<Vec<ITree>, ServiceError> + Send + Sync + 'static,
    {
        self.register(def, Arc::new(f));
    }

    /// Removes a service from the registry (UDDI churn: a provider
    /// withdraws its listing mid-exchange). Later calls fail with the
    /// typed "service not registered" [`InvokeError`]; ACL entries are
    /// kept, so re-registering restores the previous grants. Returns
    /// whether the service was registered.
    pub fn deregister(&self, name: &str) -> bool {
        self.inner.write().services.remove(name).is_some()
    }

    /// True if a service with this name is registered (the `UDDIF`
    /// predicate).
    pub fn is_registered(&self, name: &str) -> bool {
        self.inner.read().services.contains_key(name)
    }

    /// The WSDL_int description of `name`.
    pub fn describe(&self, name: &str) -> Option<ServiceDef> {
        self.inner.read().services.get(name).map(|r| r.def.clone())
    }

    /// All registered descriptions (UDDI browse).
    pub fn descriptions(&self) -> Vec<ServiceDef> {
        let mut out: Vec<ServiceDef> = self
            .inner
            .read()
            .services
            .values()
            .map(|r| r.def.clone())
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// UDDI green-pages search: services whose signature matches exactly.
    pub fn find_by_signature(&self, input: &str, output: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .inner
            .read()
            .services
            .values()
            .filter(|r| r.def.input == input && r.def.output == output)
            .map(|r| r.def.name.clone())
            .collect();
        out.sort();
        out
    }

    /// Grants `principal` the right to call `service` (the `InACL`
    /// predicate data).
    pub fn grant(&self, principal: &str, service: &str) {
        self.inner
            .write()
            .acls
            .entry(principal.to_owned())
            .or_default()
            .insert(service.to_owned());
    }

    /// Revokes a previously granted right.
    pub fn revoke(&self, principal: &str, service: &str) {
        if let Some(set) = self.inner.write().acls.get_mut(principal) {
            set.remove(service);
        }
    }

    /// True if `principal` may call `service`.
    pub fn allowed(&self, principal: &str, service: &str) -> bool {
        self.inner
            .read()
            .acls
            .get(principal)
            .is_some_and(|s| s.contains(service))
    }

    /// Adds every registered service's WSDL_int description as a function
    /// declaration on `builder` (used to build the sender's schema `s0`).
    pub fn augment(&self, mut builder: SchemaBuilder) -> SchemaBuilder {
        for def in self.descriptions() {
            builder = builder.function(&def.name, &def.input, &def.output);
        }
        builder
    }

    /// A snapshot of the call accounting.
    pub fn stats(&self) -> CallStats {
        self.inner.read().stats.clone()
    }

    /// Resets the call accounting.
    pub fn reset_stats(&self) {
        self.inner.write().stats = CallStats::default();
    }

    /// Executes a call, with accounting. Enforces the principal's ACL when
    /// one is given.
    pub fn call(
        &self,
        principal: Option<&str>,
        name: &str,
        params: &[ITree],
    ) -> Result<Vec<ITree>, InvokeError> {
        // Look up without holding the lock during the call itself.
        let (imp, def) = {
            let inner = self.inner.read();
            let reg = inner.services.get(name).ok_or_else(|| InvokeError {
                function: name.to_owned(),
                message: "service not registered".to_owned(),
            })?;
            (Arc::clone(&reg.imp), reg.def.clone())
        };
        if let Some(p) = principal {
            if !self.allowed(p, name) {
                return Err(InvokeError {
                    function: name.to_owned(),
                    message: format!("principal '{p}' is not in the ACL"),
                });
            }
        }
        let result = imp.call(params).map_err(|e| {
            axml_obs::global().counter("services.call_faults_total").inc();
            InvokeError {
                function: name.to_owned(),
                message: e.0,
            }
        })?;
        let obs = axml_obs::global();
        obs.counter("services.calls_total").inc();
        obs.counter("services.fees_cents_total")
            .add(u64::from(def.fee_cents));
        let mut inner = self.inner.write();
        *inner.stats.calls.entry(name.to_owned()).or_insert(0) += 1;
        inner.stats.fees_cents += u64::from(def.fee_cents);
        inner.stats.latency_us += def.latency_us;
        if def.side_effects {
            inner.stats.side_effect_calls += 1;
        }
        Ok(result)
    }

    /// An [`Invoker`] view bound to an optional principal.
    pub fn invoker(&self, principal: Option<&str>) -> RegistryInvoker<'_> {
        RegistryInvoker {
            registry: self,
            principal: principal.map(str::to_owned),
        }
    }
}

/// [`Invoker`] adapter over a [`Registry`].
pub struct RegistryInvoker<'r> {
    registry: &'r Registry,
    principal: Option<String>,
}

impl Invoker for RegistryInvoker<'_> {
    fn invoke(&mut self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        self.registry
            .call(self.principal.as_deref(), function, params)
    }
}

/// [`PatternOracle`] over a registry: understands the paper's predicates.
///
/// * `UDDIF` — true iff the function is registered;
/// * `InACL` — true iff the oracle's principal may call the function;
/// * anything else — false.
pub struct RegistryOracle<'r> {
    registry: &'r Registry,
    principal: Option<String>,
}

impl Registry {
    /// An oracle evaluating `UDDIF`/`InACL` against this registry for the
    /// given principal.
    pub fn oracle(&self, principal: Option<&str>) -> RegistryOracle<'_> {
        RegistryOracle {
            registry: self,
            principal: principal.map(str::to_owned),
        }
    }
}

impl PatternOracle for RegistryOracle<'_> {
    fn check(&self, predicate: &str, function: &str) -> bool {
        match predicate {
            "UDDIF" => self.registry.is_registered(function),
            "InACL" => self
                .principal
                .as_deref()
                .is_some_and(|p| self.registry.allowed(p, function)),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_service() -> (ServiceDef, Arc<dyn ServiceImpl>) {
        let def = ServiceDef::new("Get_Temp", "city", "temp").with_fee(3);
        let imp = Arc::new(|_p: &[ITree]| Ok(vec![ITree::data("temp", "15 C")]));
        (def, imp as Arc<dyn ServiceImpl>)
    }

    #[test]
    fn register_lookup_describe() {
        let reg = Registry::new();
        let (def, imp) = temp_service();
        reg.register(def.clone(), imp);
        assert!(reg.is_registered("Get_Temp"));
        assert!(!reg.is_registered("ghost"));
        assert_eq!(reg.describe("Get_Temp"), Some(def));
        assert_eq!(reg.descriptions().len(), 1);
    }

    #[test]
    fn deregister_churn_fails_typed_and_reregister_restores() {
        let reg = Registry::new();
        let (def, imp) = temp_service();
        reg.register(def.clone(), Arc::clone(&imp));
        reg.grant("alice", "Get_Temp");
        let mut inv = reg.invoker(Some("alice"));
        inv.invoke("Get_Temp", &[ITree::data("city", "Paris")])
            .unwrap();
        assert!(reg.deregister("Get_Temp"));
        assert!(!reg.is_registered("Get_Temp"));
        assert!(!reg.deregister("Get_Temp"), "second deregister is a no-op");
        let err = reg
            .invoker(Some("alice"))
            .invoke("Get_Temp", &[ITree::data("city", "Paris")])
            .unwrap_err();
        assert!(err.message.contains("not registered"), "{err:?}");
        // Re-registering restores the service *and* the surviving grant.
        reg.register(def, imp);
        reg.invoker(Some("alice"))
            .invoke("Get_Temp", &[ITree::data("city", "Paris")])
            .unwrap();
    }

    #[test]
    fn signature_search() {
        let reg = Registry::new();
        let (def, imp) = temp_service();
        reg.register(def, imp);
        reg.register_fn(ServiceDef::new("Get_Berlin_Temp", "city", "temp"), |_| {
            Ok(vec![ITree::data("temp", "8 C")])
        });
        reg.register_fn(ServiceDef::new("Other", "data", "date"), |_| {
            Ok(vec![ITree::data("date", "x")])
        });
        assert_eq!(
            reg.find_by_signature("city", "temp"),
            vec!["Get_Berlin_Temp".to_owned(), "Get_Temp".to_owned()]
        );
    }

    #[test]
    fn calls_account_fees_and_stats() {
        let reg = Registry::new();
        let (def, imp) = temp_service();
        reg.register(def, imp);
        let mut inv = reg.invoker(None);
        for _ in 0..3 {
            inv.invoke("Get_Temp", &[ITree::data("city", "Paris")])
                .unwrap();
        }
        let stats = reg.stats();
        assert_eq!(stats.total_calls(), 3);
        assert_eq!(stats.calls["Get_Temp"], 3);
        assert_eq!(stats.fees_cents, 9);
        assert!(stats.latency_us > 0);
        reg.reset_stats();
        assert_eq!(reg.stats().total_calls(), 0);
    }

    #[test]
    fn acl_enforced_for_principals() {
        let reg = Registry::new();
        let (def, imp) = temp_service();
        reg.register(def, imp);
        let mut inv = reg.invoker(Some("alice"));
        let err = inv.invoke("Get_Temp", &[]).unwrap_err();
        assert!(err.message.contains("ACL"));
        reg.grant("alice", "Get_Temp");
        assert!(inv.invoke("Get_Temp", &[]).is_ok());
        reg.revoke("alice", "Get_Temp");
        assert!(inv.invoke("Get_Temp", &[]).is_err());
        // Anonymous invokers bypass ACLs (trusted local caller).
        assert!(reg.invoker(None).invoke("Get_Temp", &[]).is_ok());
    }

    #[test]
    fn oracle_implements_uddif_and_inacl() {
        let reg = Registry::new();
        let (def, imp) = temp_service();
        reg.register(def, imp);
        reg.grant("bob", "Get_Temp");
        let oracle = reg.oracle(Some("bob"));
        assert!(oracle.check("UDDIF", "Get_Temp"));
        assert!(!oracle.check("UDDIF", "ghost"));
        assert!(oracle.check("InACL", "Get_Temp"));
        assert!(!reg.oracle(Some("eve")).check("InACL", "Get_Temp"));
        assert!(!reg.oracle(None).check("InACL", "Get_Temp"));
        assert!(!oracle.check("Unknown", "Get_Temp"));
    }

    #[test]
    fn unknown_service_fails() {
        let reg = Registry::new();
        let err = reg.invoker(None).invoke("nope", &[]).unwrap_err();
        assert!(err.message.contains("not registered"));
    }

    #[test]
    fn augment_adds_function_declarations() {
        let reg = Registry::new();
        let (def, imp) = temp_service();
        reg.register(def, imp);
        let schema = reg
            .augment(
                axml_schema::Schema::builder()
                    .data_element("city")
                    .data_element("temp"),
            )
            .build()
            .unwrap();
        assert!(schema.functions.contains_key("Get_Temp"));
    }

    #[test]
    fn service_errors_propagate() {
        let reg = Registry::new();
        reg.register_fn(ServiceDef::new("flaky", "", ""), |_| {
            Err(ServiceError("backend down".to_owned()))
        });
        let err = reg.invoker(None).invoke("flaky", &[]).unwrap_err();
        assert!(err.message.contains("backend down"));
        // Failed calls are not accounted.
        assert_eq!(reg.stats().total_calls(), 0);
    }
}
