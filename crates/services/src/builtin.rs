//! The paper's concrete services, plus simulation-oriented ones.
//!
//! * [`GetTemp`] — the weather forecast service of Fig. 2 (`city → temp`);
//! * [`TimeOutGuide`] — the TimeOut listing service
//!   (`data → (exhibit|performance)*`);
//! * [`GetDate`] — `title → date` for exhibits;
//! * [`SearchEngine`] — the Sec. 3 recursion example: returns a page of
//!   results plus, possibly, a continuation handle to fetch more;
//! * [`Adversarial`] — returns a *random output instance* of a declared
//!   type: the universally-quantified opponent that safe rewriting must
//!   withstand (Def. 4);
//! * [`Flaky`] and [`IllTyped`] — failure injection.

use crate::service::{ServiceError, ServiceImpl};
use axml_automata::Regex;
use axml_schema::{generate_output_instance, Compiled, GenConfig, ITree};
use axml_support::sync::Mutex;
use axml_support::rng::StdRng;
use axml_support::rng::SeedableRng;
use std::sync::Arc;

/// The Fig. 2 weather service: takes a `city`, returns a `temp`.
pub struct GetTemp {
    /// `(city, temperature)` table; unknown cities get a default.
    pub table: Vec<(String, String)>,
}

impl GetTemp {
    /// A service knowing a few European cities.
    pub fn with_defaults() -> Self {
        GetTemp {
            table: vec![
                ("Paris".to_owned(), "15 C".to_owned()),
                ("Berlin".to_owned(), "8 C".to_owned()),
                ("Rome".to_owned(), "21 C".to_owned()),
                ("San Diego".to_owned(), "22 C".to_owned()),
            ],
        }
    }
}

impl ServiceImpl for GetTemp {
    fn call(&self, params: &[ITree]) -> Result<Vec<ITree>, ServiceError> {
        let city = params
            .first()
            .and_then(|p| match p {
                ITree::Elem { label, children } if label == "city" => {
                    children.first().and_then(|c| match c {
                        ITree::Text(t) => Some(t.clone()),
                        _ => None,
                    })
                }
                _ => None,
            })
            .ok_or_else(|| ServiceError("expected a city parameter".to_owned()))?;
        let temp = self
            .table
            .iter()
            .find(|(c, _)| *c == city)
            .map(|(_, t)| t.clone())
            .unwrap_or_else(|| "12 C".to_owned());
        Ok(vec![ITree::data("temp", &temp)])
    }
}

/// The TimeOut local guide: returns current exhibits and performances.
pub struct TimeOutGuide {
    /// Exhibit titles with dates.
    pub exhibits: Vec<(String, String)>,
    /// Performance names.
    pub performances: Vec<String>,
}

impl TimeOutGuide {
    /// A guide with a small Paris program.
    pub fn with_defaults() -> Self {
        TimeOutGuide {
            exhibits: vec![
                ("Monet".to_owned(), "Mon".to_owned()),
                ("Rodin".to_owned(), "Tue".to_owned()),
            ],
            performances: vec!["Hamlet".to_owned()],
        }
    }

    /// A guide currently listing only exhibits (makes possible rewritings
    /// into `exhibit*` succeed).
    pub fn exhibits_only() -> Self {
        TimeOutGuide {
            exhibits: vec![
                ("Monet".to_owned(), "Mon".to_owned()),
                ("Rodin".to_owned(), "Tue".to_owned()),
            ],
            performances: Vec::new(),
        }
    }
}

impl ServiceImpl for TimeOutGuide {
    fn call(&self, params: &[ITree]) -> Result<Vec<ITree>, ServiceError> {
        // The single data parameter filters the program kind.
        let filter = params.first().and_then(|p| match p {
            ITree::Text(t) => Some(t.as_str()),
            _ => None,
        });
        let mut out = Vec::new();
        if filter != Some("performances") {
            for (title, date) in &self.exhibits {
                out.push(ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", title), ITree::data("date", date)],
                ));
            }
        }
        if filter != Some("exhibits") {
            for p in &self.performances {
                out.push(ITree::elem("performance", vec![ITree::text(p)]));
            }
        }
        Ok(out)
    }
}

/// `title → date`: looks a date up in a program table.
pub struct GetDate {
    /// `(title, date)` pairs.
    pub table: Vec<(String, String)>,
}

impl ServiceImpl for GetDate {
    fn call(&self, params: &[ITree]) -> Result<Vec<ITree>, ServiceError> {
        let title = params
            .first()
            .map(|p| match p {
                ITree::Elem { label, .. } if label == "title" => Ok(p
                    .children()
                    .first()
                    .and_then(|c| match c {
                        ITree::Text(t) => Some(t.clone()),
                        _ => None,
                    })
                    .unwrap_or_default()),
                _ => Err(ServiceError("expected a title parameter".to_owned())),
            })
            .transpose()?
            .unwrap_or_default();
        let date = self
            .table
            .iter()
            .find(|(t, _)| *t == title)
            .map(|(_, d)| d.clone())
            .unwrap_or_else(|| "TBA".to_owned());
        Ok(vec![ITree::data("date", &date)])
    }
}

/// The Sec. 3 search engine: for a keyword, returns a page of `url`
/// elements plus a continuation call when more results remain.
///
/// Output type: `url*.SearchMore?` — the recursive-handles situation that
/// motivates the k-depth restriction.
pub struct SearchEngine {
    /// All result URLs.
    pub results: Vec<String>,
    /// Page size.
    pub page: usize,
    /// Name of the continuation operation (usually this service itself).
    pub continuation: String,
    offset: Mutex<usize>,
}

impl SearchEngine {
    /// A search engine over `results` with the given page size.
    pub fn new(results: Vec<String>, page: usize, continuation: &str) -> Self {
        SearchEngine {
            results,
            page: page.max(1),
            continuation: continuation.to_owned(),
            offset: Mutex::new(0),
        }
    }
}

impl ServiceImpl for SearchEngine {
    fn call(&self, _params: &[ITree]) -> Result<Vec<ITree>, ServiceError> {
        let mut offset = self.offset.lock();
        let end = (*offset + self.page).min(self.results.len());
        let mut out: Vec<ITree> = self.results[*offset..end]
            .iter()
            .map(|u| ITree::data("url", u))
            .collect();
        *offset = end;
        if end < self.results.len() {
            out.push(ITree::func(&self.continuation, vec![]));
        }
        Ok(out)
    }
}

/// Returns a *random output instance* of the declared output type, drawn
/// through the schema-aware generator. This is the Def. 4 adversary: safe
/// rewriting must succeed whatever this service answers.
pub struct Adversarial {
    compiled: Arc<Compiled>,
    output: Regex,
    rng: Mutex<StdRng>,
    config: GenConfig,
}

impl Adversarial {
    /// An adversary for the output type of `function` as compiled in
    /// `compiled`, seeded deterministically.
    pub fn for_function(compiled: Arc<Compiled>, function: &str, seed: u64) -> Self {
        let output = compiled.sig_of(function).output.clone();
        Adversarial {
            compiled,
            output,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            config: GenConfig::default(),
        }
    }
}

impl ServiceImpl for Adversarial {
    fn call(&self, _params: &[ITree]) -> Result<Vec<ITree>, ServiceError> {
        let mut rng = self.rng.lock();
        generate_output_instance(&self.compiled, &self.output, &mut *rng, &self.config)
            .map_err(|e| ServiceError(e.to_string()))
    }
}

/// Fails every `n`-th call (failure injection).
pub struct Flaky {
    inner: Arc<dyn ServiceImpl>,
    every: u64,
    count: Mutex<u64>,
}

impl Flaky {
    /// Wraps `inner`, failing every `every`-th call (1 = always fail).
    pub fn every(inner: Arc<dyn ServiceImpl>, every: u64) -> Self {
        Flaky {
            inner,
            every: every.max(1),
            count: Mutex::new(0),
        }
    }
}

impl ServiceImpl for Flaky {
    fn call(&self, params: &[ITree]) -> Result<Vec<ITree>, ServiceError> {
        let mut count = self.count.lock();
        *count += 1;
        if (*count).is_multiple_of(self.every) {
            return Err(ServiceError("simulated transient failure".to_owned()));
        }
        self.inner.call(params)
    }
}

/// Always returns the same (typically ill-typed) forest, regardless of its
/// declared output type — for testing the rewriter's runtime type checks.
pub struct IllTyped {
    /// The forest to return.
    pub forest: Vec<ITree>,
}

impl ServiceImpl for IllTyped {
    fn call(&self, _params: &[ITree]) -> Result<Vec<ITree>, ServiceError> {
        Ok(self.forest.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_schema::{NoOracle, Schema};

    #[test]
    fn get_temp_looks_up_cities() {
        let svc = GetTemp::with_defaults();
        let out = svc.call(&[ITree::data("city", "Paris")]).unwrap();
        assert_eq!(out, vec![ITree::data("temp", "15 C")]);
        let out = svc.call(&[ITree::data("city", "Atlantis")]).unwrap();
        assert_eq!(out, vec![ITree::data("temp", "12 C")]);
        assert!(svc.call(&[]).is_err());
        assert!(svc.call(&[ITree::data("date", "x")]).is_err());
    }

    #[test]
    fn timeout_filters_by_parameter() {
        let svc = TimeOutGuide::with_defaults();
        let all = svc.call(&[ITree::text("everything")]).unwrap();
        assert_eq!(all.len(), 3);
        let ex = svc.call(&[ITree::text("exhibits")]).unwrap();
        assert_eq!(ex.len(), 2);
        assert!(ex.iter().all(|t| t.name() == Some("exhibit")));
        let perf = svc.call(&[ITree::text("performances")]).unwrap();
        assert_eq!(perf.len(), 1);
        assert_eq!(perf[0].name(), Some("performance"));
    }

    #[test]
    fn get_date_lookup() {
        let svc = GetDate {
            table: vec![("Monet".to_owned(), "Mon".to_owned())],
        };
        let out = svc.call(&[ITree::data("title", "Monet")]).unwrap();
        assert_eq!(out, vec![ITree::data("date", "Mon")]);
        let out = svc.call(&[ITree::data("title", "Unknown")]).unwrap();
        assert_eq!(out, vec![ITree::data("date", "TBA")]);
    }

    #[test]
    fn search_engine_paginates_with_continuations() {
        let svc = SearchEngine::new(
            (0..5).map(|i| format!("http://r/{i}")).collect(),
            2,
            "SearchMore",
        );
        let p1 = svc.call(&[]).unwrap();
        assert_eq!(p1.len(), 3); // 2 urls + continuation
        assert!(p1[2].is_func());
        let p2 = svc.call(&[]).unwrap();
        assert_eq!(p2.len(), 3);
        let p3 = svc.call(&[]).unwrap();
        assert_eq!(p3.len(), 1); // final url, no continuation
        assert!(!p3[0].is_func());
        let p4 = svc.call(&[]).unwrap();
        assert!(p4.is_empty());
    }

    #[test]
    fn adversarial_outputs_are_type_correct() {
        let compiled = Arc::new(
            Compiled::new(
                Schema::builder()
                    .element("exhibit", "title.(Get_Date|date)")
                    .data_element("title")
                    .data_element("date")
                    .data_element("performance")
                    .function("TimeOut", "data", "(exhibit|performance)*")
                    .function("Get_Date", "title", "date")
                    .build()
                    .unwrap(),
                &NoOracle,
            )
            .unwrap(),
        );
        let svc = Adversarial::for_function(Arc::clone(&compiled), "TimeOut", 7);
        let sig = compiled.sig_of("TimeOut");
        for _ in 0..50 {
            let out = svc.call(&[]).unwrap();
            axml_schema::validate_output_instance(&out, &sig.output_dfa, &compiled).unwrap();
        }
    }

    #[test]
    fn flaky_fails_periodically() {
        let inner = Arc::new(|_: &[ITree]| Ok(vec![ITree::data("a", "1")]));
        let svc = Flaky::every(inner, 3);
        assert!(svc.call(&[]).is_ok());
        assert!(svc.call(&[]).is_ok());
        assert!(svc.call(&[]).is_err());
        assert!(svc.call(&[]).is_ok());
    }

    #[test]
    fn ill_typed_returns_fixed_forest() {
        let svc = IllTyped {
            forest: vec![ITree::data("wrong", "x")],
        };
        assert_eq!(svc.call(&[]).unwrap()[0], ITree::data("wrong", "x"));
    }
}
