//! Simulated Web services for the Active XML system.
//!
//! The paper's system lives in a world of SOAP/WSDL/UDDI Web services.
//! This crate simulates that world faithfully enough for every algorithm
//! to run end to end:
//!
//! * [`ServiceDef`]/[`ServiceImpl`] — WSDL_int descriptions and executable
//!   behaviours, with side-effect/fee/latency metadata (the Sec. 1
//!   exchange trade-offs);
//! * [`Registry`] — a UDDI-like registry with per-principal ACLs, the
//!   `UDDIF`/`InACL` pattern predicates of Sec. 2.1, call accounting, and
//!   an [`axml_core::invoke::Invoker`] adapter for the rewriter;
//! * [`soap`] — request/response/fault envelopes used by the peers;
//! * [`builtin`] — the paper's concrete services (`Get_Temp`, `TimeOut`,
//!   `Get_Date`), the Sec. 3 continuation-style search engine, and the
//!   Def. 4 adversary that returns arbitrary output instances.

#![warn(missing_docs)]

pub mod builtin;
mod registry;
mod service;
pub mod soap;

pub use registry::{CallStats, Registry, RegistryInvoker, RegistryOracle};
pub use service::{ServiceDef, ServiceError, ServiceImpl};
