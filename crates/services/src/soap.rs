//! SOAP-style envelopes for peer-to-peer exchange.
//!
//! All exchanges between Active XML peers and with other Web-service
//! providers/consumers use SOAP (Sec. 7). This module provides the minimal
//! envelope subset the system needs: request envelopes carrying a method
//! name and intensional parameters, response envelopes carrying an
//! intensional result forest, and fault envelopes.

use axml_schema::ITree;
use axml_xml::{parse_document, Element, Node};

/// The SOAP 1.1 envelope namespace.
pub const SOAP_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";

/// A first-class SOAP fault: a dotted code, a human-readable message, and
/// a `retryable` flag telling the caller whether backing off and retrying
/// can help (server busy, timeout) or cannot (type mismatch, unknown
/// service). Wire transports map this 1:1 onto their typed fault frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Fault code (e.g. `Client`, `Server`, `Server.Busy`).
    pub code: String,
    /// Human-readable fault string.
    pub message: String,
    /// Whether retrying (after backoff) can succeed.
    pub retryable: bool,
}

impl Fault {
    /// A non-retryable fault.
    pub fn new(code: impl Into<String>, message: impl Into<String>) -> Self {
        Fault {
            code: code.into(),
            message: message.into(),
            retryable: false,
        }
    }

    /// Marks the fault retryable.
    pub fn retryable(mut self) -> Self {
        self.retryable = true;
        self
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SOAP fault [{}{}]: {}",
            self.code,
            if self.retryable { ", retryable" } else { "" },
            self.message
        )
    }
}

/// A decoded SOAP message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A call request: method + parameters.
    Request {
        /// The method (function) name.
        method: String,
        /// Parameter forest.
        params: Vec<ITree>,
    },
    /// A successful response carrying the result forest.
    Response {
        /// The returned trees.
        result: Vec<ITree>,
    },
    /// A fault.
    Fault(Fault),
}

fn envelope(body_content: Element) -> Element {
    Element::with_ns("soap", "Envelope", SOAP_NS)
        .xmlns("soap", SOAP_NS)
        .child(Element::with_ns("soap", "Body", SOAP_NS).child(body_content))
}

/// Builds a request envelope.
pub fn request(method: &str, params: &[ITree]) -> Element {
    let mut call = Element::new("call").attr("method", method);
    for p in params {
        let mut param = Element::new("param");
        push_tree(&mut param, p);
        call.children.push(Node::Element(param));
    }
    envelope(call)
}

/// Builds a response envelope.
pub fn response(result: &[ITree]) -> Element {
    let mut res = Element::new("result");
    for t in result {
        push_tree(&mut res, t);
    }
    envelope(res)
}

/// Builds a non-retryable fault envelope (shorthand for
/// [`fault_envelope`] over [`Fault::new`]).
pub fn fault(code: &str, message: &str) -> Element {
    fault_envelope(&Fault::new(code, message))
}

/// Builds a fault envelope. The `retryable` flag travels in the standard
/// SOAP `detail` element so foreign decoders see a plain 1.1 fault.
pub fn fault_envelope(f: &Fault) -> Element {
    let mut el = Element::with_ns("soap", "Fault", SOAP_NS)
        .child(Element::new("faultcode").text(&f.code))
        .child(Element::new("faultstring").text(&f.message));
    if f.retryable {
        el = el.child(Element::new("detail").child(Element::new("retryable").text("true")));
    }
    envelope(el)
}

fn push_tree(parent: &mut Element, tree: &ITree) {
    match tree {
        ITree::Text(t) => parent.children.push(Node::Text(t.clone())),
        other => parent.children.push(Node::Element(other.to_xml())),
    }
}

/// Decodes an envelope from its XML text.
pub fn decode(text: &str) -> Result<Message, String> {
    let doc = parse_document(text).map_err(|e| e.to_string())?;
    decode_element(&doc.root)
}

/// Decodes an envelope from a parsed element.
pub fn decode_element(root: &Element) -> Result<Message, String> {
    if !root.name.matches(SOAP_NS, "Envelope") {
        return Err(format!("not a SOAP envelope: <{}>", root.name));
    }
    let body = root
        .child_elements()
        .find(|e| e.name.matches(SOAP_NS, "Body"))
        .ok_or("envelope has no Body")?;
    let content = body.child_elements().next().ok_or("empty Body")?;
    if content.name.matches(SOAP_NS, "Fault") {
        let code = content
            .first_child("faultcode")
            .map(Element::text_content)
            .unwrap_or_default();
        let message = content
            .first_child("faultstring")
            .map(Element::text_content)
            .unwrap_or_default();
        let retryable = content
            .first_child("detail")
            .and_then(|d| d.first_child("retryable"))
            .is_some_and(|r| r.text_content().trim() == "true");
        return Ok(Message::Fault(Fault {
            code,
            message,
            retryable,
        }));
    }
    match content.name.local.as_str() {
        "call" => {
            let method = content
                .attribute("method")
                .ok_or("call without method")?
                .to_owned();
            let mut params = Vec::new();
            for p in content.children_named("param") {
                params.push(decode_forest_item(p)?);
            }
            Ok(Message::Request { method, params })
        }
        "result" => {
            let mut result = Vec::new();
            for c in &content.children {
                match c {
                    Node::Element(e) => result.push(ITree::from_xml(e)?),
                    Node::Text(t) if !t.trim().is_empty() => {
                        result.push(ITree::text(t.trim()));
                    }
                    _ => {}
                }
            }
            Ok(Message::Response { result })
        }
        other => Err(format!("unsupported body element <{other}>")),
    }
}

fn decode_forest_item(param: &Element) -> Result<ITree, String> {
    let elems: Vec<&Element> = param.child_elements().collect();
    match elems.as_slice() {
        [one] => ITree::from_xml(one),
        [] => {
            let t = param.text_content();
            if t.is_empty() {
                Err("empty param".to_owned())
            } else {
                Ok(ITree::text(&t))
            }
        }
        _ => Err("param must hold a single tree".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let params = vec![
            ITree::data("city", "Paris"),
            ITree::text("verbose"),
            ITree::func("Get_Date", vec![ITree::data("title", "Expo")]),
        ];
        let env = request("Get_Temp", &params);
        let text = env.to_xml();
        match decode(&text).unwrap() {
            Message::Request { method, params: p } => {
                assert_eq!(method, "Get_Temp");
                assert_eq!(p, params);
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn response_roundtrip_preserves_intensional_parts() {
        let result = vec![
            ITree::elem("exhibit", vec![ITree::data("title", "Expo")]),
            ITree::func("Get_Exhibits", vec![]),
        ];
        let env = response(&result);
        match decode(&env.to_xml()).unwrap() {
            Message::Response { result: r } => assert_eq!(r, result),
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn fault_roundtrip() {
        let env = fault("Client", "type mismatch in parameters");
        match decode(&env.to_xml()).unwrap() {
            Message::Fault(f) => {
                assert_eq!(f.code, "Client");
                assert!(f.message.contains("type mismatch"));
                assert!(!f.retryable, "plain faults are final");
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn retryable_flag_travels_in_detail() {
        let f = Fault::new("Server.Busy", "queue full").retryable();
        let env = fault_envelope(&f);
        let text = env.to_xml();
        assert!(text.contains("<detail>"));
        match decode(&text).unwrap() {
            Message::Fault(back) => assert_eq!(back, f),
            other => panic!("expected fault, got {other:?}"),
        }
        assert_eq!(
            f.to_string(),
            "SOAP fault [Server.Busy, retryable]: queue full"
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode("<notsoap/>").is_err());
        assert!(decode("not xml at all").is_err());
        let env = Element::with_ns("soap", "Envelope", SOAP_NS).xmlns("soap", SOAP_NS);
        assert!(decode_element(&env).is_err()); // no body
    }
}
