//! Service descriptions and implementations.
//!
//! A [`ServiceDef`] is the WSDL_int description of one Web-service
//! operation: its name, input/output types (in the paper's content-model
//! notation), and exchange-relevant metadata — whether calls have side
//! effects and what they cost (the Sec. 1 considerations: performance,
//! security, fees). A [`ServiceImpl`] is the executable behaviour.

use axml_schema::ITree;
use std::fmt;

/// The WSDL_int description of a service operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDef {
    /// Operation name (the function name used in documents).
    pub name: String,
    /// Input type `τ_in` in the paper's textual notation.
    pub input: String,
    /// Output type `τ_out`.
    pub output: String,
    /// Whether invoking the service has side effects (Sec. 1, *Security*).
    pub side_effects: bool,
    /// Fee charged per call, in cents (Sec. 1, *Functionalities*).
    pub fee_cents: u32,
    /// Simulated processing latency in microseconds (accounted, not slept).
    pub latency_us: u64,
    /// SOAP endpoint URL advertised for this operation.
    pub endpoint: String,
}

impl ServiceDef {
    /// A plain free, side-effect-free service.
    pub fn new(name: &str, input: &str, output: &str) -> Self {
        ServiceDef {
            name: name.to_owned(),
            input: input.to_owned(),
            output: output.to_owned(),
            side_effects: false,
            fee_cents: 0,
            latency_us: 100,
            endpoint: format!("http://services.example.org/soap/{name}"),
        }
    }

    /// Marks the service as having side effects.
    pub fn with_side_effects(mut self) -> Self {
        self.side_effects = true;
        self
    }

    /// Sets the per-call fee.
    pub fn with_fee(mut self, cents: u32) -> Self {
        self.fee_cents = cents;
        self
    }

    /// Sets the simulated latency.
    pub fn with_latency_us(mut self, us: u64) -> Self {
        self.latency_us = us;
        self
    }
}

/// Error raised by a service implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError(pub String);

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ServiceError {}

/// Executable behaviour of a service operation.
///
/// Implementations must be thread-safe: an Active XML peer serves calls
/// from several sessions concurrently.
pub trait ServiceImpl: Send + Sync {
    /// Handles one call.
    fn call(&self, params: &[ITree]) -> Result<Vec<ITree>, ServiceError>;
}

impl<F> ServiceImpl for F
where
    F: Fn(&[ITree]) -> Result<Vec<ITree>, ServiceError> + Send + Sync,
{
    fn call(&self, params: &[ITree]) -> Result<Vec<ITree>, ServiceError> {
        self(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_builder() {
        let d = ServiceDef::new("Get_Temp", "city", "temp")
            .with_fee(5)
            .with_side_effects()
            .with_latency_us(250);
        assert_eq!(d.name, "Get_Temp");
        assert_eq!(d.fee_cents, 5);
        assert!(d.side_effects);
        assert_eq!(d.latency_us, 250);
        assert!(d.endpoint.contains("Get_Temp"));
    }

    #[test]
    fn closures_are_services() {
        let svc = |params: &[ITree]| -> Result<Vec<ITree>, ServiceError> {
            Ok(vec![ITree::data(
                "echo",
                &format!("{} params", params.len()),
            )])
        };
        let out = ServiceImpl::call(&svc, &[ITree::text("x")]).unwrap();
        assert_eq!(out[0], ITree::data("echo", "1 params"));
    }
}
