//! Shrinking behaviour of the property harness: failing cases must come
//! back minimal, and a reported failure must be replayable — both from its
//! recorded choice stream and from its seed via the regression corpus.

use axml_support::prop::{check, collection, ProptestConfig, Source, Strategy, TestCaseError};

fn big_element_prop(v: Vec<u32>) -> Result<(), TestCaseError> {
    if v.iter().any(|&x| x >= 1000) {
        Err(TestCaseError::fail(format!("{v:?} has an element >= 1000")))
    } else {
        Ok(())
    }
}

#[test]
fn failing_vec_property_shrinks_to_minimal_counterexample() {
    let cfg = ProptestConfig::with_cases(256);
    let failure = check(
        "shrink_vec_to_minimal",
        &cfg,
        collection::vec(0u32..2000, 0..=8),
        big_element_prop,
    )
    .expect_err("elements >= 1000 are reachable, the property must fail");
    // Minimality in both dimensions: a single element, at the exact
    // boundary the predicate flips on.
    assert_eq!(failure.value, vec![1000]);
    assert!(failure.message.contains("1000"));
}

#[test]
fn minimal_choice_stream_replays_the_failure() {
    let cfg = ProptestConfig::with_cases(128);
    let strategy = || collection::vec(0u32..2000, 0..=8);
    let failure = check("shrink_stream_replay", &cfg, strategy(), big_element_prop)
        .expect_err("property must fail");
    let mut src = Source::replay(failure.stream.clone());
    let replayed = strategy().generate(&mut src);
    assert_eq!(replayed, failure.value, "stream must regenerate the minimal value");
    assert!(big_element_prop(replayed).is_err(), "and it must still fail");
}

#[test]
fn reported_seed_replays_to_the_same_failure() {
    let cfg = ProptestConfig::with_cases(128);
    let strategy = || collection::vec(0u32..2000, 0..=8);
    let first = check("shrink_seed_replay", &cfg, strategy(), big_element_prop)
        .expect_err("property must fail");

    // Case seeds are a pure function of (property name, case index), so a
    // rerun reports the same seed and converges on the same minimum.
    let second = check("shrink_seed_replay", &cfg, strategy(), big_element_prop)
        .expect_err("rerun must fail identically");
    assert_eq!(first.seed, second.seed);
    assert_eq!(first.value, second.value);

    // And the seed alone reproduces a failing case: generating fresh from
    // it (exactly what the regression corpus does before shrinking) hits
    // the failure without any recorded stream.
    let mut src = Source::fresh(first.seed);
    let fresh_value = strategy().generate(&mut src);
    assert!(
        big_element_prop(fresh_value).is_err(),
        "seed 0x{:016x} must regenerate a failing (pre-shrink) case",
        first.seed
    );
}

#[test]
fn corpus_file_replays_seed_before_novel_cases() {
    // Write the failing seed to a corpus file, point the harness at it,
    // and verify a property that only fails on that seed's case is caught
    // even with zero novel cases configured.
    let cfg = ProptestConfig::with_cases(128);
    let strategy = || collection::vec(0u32..2000, 0..=8);
    let failure = check("corpus_replayed", &cfg, strategy(), big_element_prop)
        .expect_err("property must fail");

    let dir = std::env::temp_dir().join(format!("axml-corpus-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("corpus_replayed.seeds"),
        format!("# written by shrinking.rs\n0x{:016x}\n", failure.seed),
    )
    .unwrap();
    std::env::set_var("AXML_REGRESSIONS_DIR", &dir);
    let replayed = check(
        "corpus_replayed",
        &ProptestConfig::with_cases(0),
        strategy(),
        big_element_prop,
    );
    std::env::remove_var("AXML_REGRESSIONS_DIR");
    let _ = std::fs::remove_dir_all(&dir);

    let replayed = replayed.expect_err("corpus seed alone must reproduce the failure");
    assert_eq!(replayed.seed, failure.seed);
    assert_eq!(replayed.value, failure.value);
}

#[test]
fn shrinking_composes_through_prop_map_and_recursion() {
    // A mapped + recursive strategy: nested sums of small ints. Shrinking
    // operates on the choice stream, so it minimizes through the map
    // without any value-level shrink logic.
    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(u32),
        Node(Vec<Tree>),
    }
    fn total(t: &Tree) -> u64 {
        match t {
            Tree::Leaf(v) => *v as u64,
            Tree::Node(cs) => cs.iter().map(total).sum(),
        }
    }
    let strategy = (0u32..100)
        .prop_map(Tree::Leaf)
        .prop_recursive(3, 20, 3, |inner| {
            collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
    let cfg = ProptestConfig::with_cases(512);
    let failure = check("shrink_through_map", &cfg, strategy, |t| {
        if total(&t) >= 50 {
            Err(TestCaseError::fail(format!("total {} too large", total(&t))))
        } else {
            Ok(())
        }
    })
    .expect_err("totals >= 50 are reachable");
    assert_eq!(
        total(&failure.value),
        50,
        "minimal tree sits exactly on the boundary: {:?}",
        failure.value
    );
}
