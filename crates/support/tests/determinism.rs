//! Determinism guarantees of `axml_support::rng` — the whole workspace
//! (word sampler, instance generators, adversarial services, property
//! harness) assumes that a seed fully determines the stream, on every
//! platform, forever.

use axml_support::rng::{Rng, RngExt, SeedableRng, SplitMix64, StdRng};

#[test]
fn same_seed_identical_u64_stream() {
    for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for i in 0..10_000 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed} diverged at draw {i}");
        }
    }
}

#[test]
fn different_seeds_diverge() {
    let mut a = StdRng::seed_from_u64(1);
    let mut b = StdRng::seed_from_u64(2);
    let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
    assert_eq!(same, 0, "streams of different seeds should not collide early");
}

/// Pins the concrete output values so an accidental algorithm change (or a
/// platform-dependent code path) cannot slip in silently: these are the
/// streams every recorded regression seed depends on.
#[test]
fn golden_vectors_never_change() {
    let mut g = StdRng::seed_from_u64(42);
    assert_eq!(
        [g.next_u64(), g.next_u64(), g.next_u64(), g.next_u64()],
        [
            0x15780b2e0c2ec716,
            0x6104d9866d113a7e,
            0xae17533239e499a1,
            0xecb8ad4703b360a1,
        ]
    );
    // SplitMix64 reference vector (public-domain implementation, seed 0).
    let mut m = SplitMix64::new(0);
    assert_eq!(m.next_u64(), 0xe220a8397b1dcdaf);
}

#[test]
fn gen_range_respects_bounds_over_1e5_draws() {
    let mut g = StdRng::seed_from_u64(7);
    let mut hit_lo = false;
    let mut hit_hi = false;
    for _ in 0..100_000 {
        let v: u32 = g.gen_range(10..20);
        assert!((10..20).contains(&v));
        hit_lo |= v == 10;
        hit_hi |= v == 19;

        let w: i64 = g.gen_range(-1000..=1000);
        assert!((-1000..=1000).contains(&w));

        let u: usize = g.gen_range(0..3);
        assert!(u < 3);

        let c: char = g.gen_range('a'..='z');
        assert!(c.is_ascii_lowercase());
    }
    assert!(hit_lo && hit_hi, "both endpoints of 10..20 must be reachable");
}

#[test]
fn degenerate_ranges_work() {
    let mut g = StdRng::seed_from_u64(8);
    for _ in 0..100 {
        assert_eq!(g.gen_range(5u8..=5), 5);
        assert_eq!(g.gen_range(-3i32..-2), -3);
    }
    // Full-width range must not overflow the span arithmetic.
    let _: u64 = g.gen_range(0..=u64::MAX);
    let _: i64 = g.gen_range(i64::MIN..=i64::MAX);
}

#[test]
fn shuffle_is_a_permutation() {
    let mut g = StdRng::seed_from_u64(3);
    for round in 0..200 {
        let original: Vec<u32> = (0..50).map(|i| i * 7 % 13).collect();
        let mut shuffled = original.clone();
        g.shuffle(&mut shuffled);
        let mut a = original.clone();
        let mut b = shuffled.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "round {round}: shuffle changed the multiset");
    }
}

#[test]
fn shuffle_is_deterministic_and_actually_shuffles() {
    let base: Vec<u32> = (0..100).collect();
    let mut one = base.clone();
    let mut two = base.clone();
    StdRng::seed_from_u64(9).shuffle(&mut one);
    StdRng::seed_from_u64(9).shuffle(&mut two);
    assert_eq!(one, two, "same seed must shuffle identically");
    assert_ne!(one, base, "a 100-element shuffle staying sorted is ~impossible");
}

#[test]
fn choose_picks_members_and_handles_empty() {
    let mut g = StdRng::seed_from_u64(4);
    let items = [2u8, 3, 5, 7, 11];
    let mut seen = [false; 5];
    for _ in 0..1000 {
        let picked = *g.choose(&items).unwrap();
        let idx = items.iter().position(|&x| x == picked).expect("member");
        seen[idx] = true;
    }
    assert!(seen.iter().all(|&s| s), "every element should be chosen eventually");
    assert_eq!(g.choose::<u8>(&[]), None);
}

#[test]
fn random_bool_tracks_probability() {
    let mut g = StdRng::seed_from_u64(5);
    let hits = (0..100_000).filter(|_| g.random_bool(0.25)).count();
    assert!(
        (23_000..27_000).contains(&hits),
        "p=0.25 over 1e5 draws gave {hits} hits"
    );
    assert!(!g.random_bool(0.0));
    assert!(g.random_bool(1.0));
}
