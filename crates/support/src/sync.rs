//! `std::sync` behind the ergonomics the workspace was written against.
//!
//! The peer and services crates used `parking_lot` locks (no poison
//! plumbing at call sites: `lock()`/`read()`/`write()` return guards
//! directly) and `crossbeam::channel` (one cloneable `Sender` type for
//! both bounded and unbounded channels). These thin wrappers provide the
//! same call-site shape over `std::sync` only.
//!
//! Poisoning policy: a poisoned lock means a peer thread panicked while
//! holding shared state; continuing on that state would be silent data
//! corruption, so the wrappers propagate the panic — the behaviour
//! `parking_lot` callers implicitly relied on never having to think about.

use std::sync::mpsc;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, panicking if a previous holder panicked.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned: a thread panicked while holding it")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .expect("mutex poisoned: a thread panicked while holding it")
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned: a thread panicked while holding it")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .expect("rwlock poisoned: a thread panicked while holding it")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .expect("rwlock poisoned: a thread panicked while holding it")
    }
}

/// Multi-producer channels with one `Sender` type for bounded and
/// unbounded flavours, as `crossbeam::channel` offered.
pub mod channel {
    use super::mpsc;

    /// Sending half of a channel. Cloneable and shareable across threads.
    #[derive(Debug)]
    pub enum Sender<T> {
        /// Unbounded (asynchronous) sender.
        Unbounded(mpsc::Sender<T>),
        /// Bounded (rendezvous/buffered) sender.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side is gone.
    pub type SendError<T> = mpsc::SendError<T>;
    /// Error returned when every sender is gone.
    pub type RecvError = mpsc::RecvError;
    /// Error returned by [`Sender::try_send`] on a full or closed channel.
    pub type TrySendError<T> = mpsc::TrySendError<T>;
    /// Error returned by [`Receiver::recv_timeout`].
    pub type RecvTimeoutError = mpsc::RecvTimeoutError;

    impl<T> Sender<T> {
        /// Sends a value, blocking on a full bounded channel; errors when
        /// the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value),
                Sender::Bounded(s) => s.send(value),
            }
        }

        /// Sends without blocking: a full bounded channel yields
        /// `TrySendError::Full` immediately (unbounded channels are never
        /// full) — the backpressure primitive daemons reject work with.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value).map_err(|e| TrySendError::Disconnected(e.0)),
                Sender::Bounded(s) => s.try_send(value),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; errors once all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks for the next value at most `timeout` — the bounded-wait
        /// primitive deterministic shutdown is built on.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates over received values until all senders are dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// A channel holding at most `cap` queued values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn channels_cross_threads() {
        let (tx, rx) = channel::unbounded();
        let (reply_tx, reply_rx) = channel::bounded(1);
        let server = std::thread::spawn(move || {
            while let Ok((v, reply)) = rx.recv() {
                let reply: channel::Sender<i32> = reply;
                reply.send(v + 1).unwrap();
            }
        });
        tx.send((41, reply_tx.clone())).unwrap();
        assert_eq!(reply_rx.recv().unwrap(), 42);
        // Senders shared across threads through clones.
        let tx2 = tx.clone();
        let t = std::thread::spawn(move || tx2.send((1, reply_tx)).unwrap());
        t.join().unwrap();
        assert_eq!(reply_rx.recv().unwrap(), 2);
        drop(tx);
        server.join().unwrap();
    }

    #[test]
    fn try_send_reports_backpressure() {
        let (tx, rx) = channel::bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(
            tx.try_send(2),
            Err(channel::TrySendError::Full(2))
        ));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(rx);
        assert!(matches!(
            tx.try_send(4),
            Err(channel::TrySendError::Disconnected(4))
        ));
        // Unbounded senders are never full.
        let (utx, urx) = channel::unbounded();
        for i in 0..64 {
            utx.try_send(i).unwrap();
        }
        drop(urx);
        assert!(matches!(
            utx.try_send(0),
            Err(channel::TrySendError::Disconnected(0))
        ));
    }

    #[test]
    fn recv_timeout_bounds_the_wait() {
        let (tx, rx) = channel::unbounded();
        tx.send(5).unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(1)).unwrap(),
            5
        );
        assert!(matches!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        ));
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        ));
    }
}
