//! OS readiness polling as a capability: a minimal, level-triggered
//! poller over **epoll** (Linux) or **kqueue** (macOS / BSDs), built on
//! `std::os::fd` and in-repo `extern "C"` syscall bindings — no `libc`
//! crate, keeping the workspace hermetic (DESIGN.md §6).
//!
//! The poller is the substrate of the event-driven network core
//! (DESIGN.md §12): one [`Poller`] per server shard watches thousands of
//! non-blocking sockets and reports which are readable or writable, so a
//! single thread can serve what used to take a thread per connection.
//!
//! Semantics:
//!
//! * **Level-triggered** — a registered fd is reported on every
//!   [`Poller::wait`] for as long as the condition holds. Consumers must
//!   drain (read until `WouldBlock`) or they will busy-spin, but they can
//!   never *miss* readiness.
//! * **Tokens** — each registration carries a caller-chosen `u64` token
//!   handed back in every [`Event`]; fds themselves never appear in the
//!   event stream. Token [`WAKE_TOKEN`] is reserved for the built-in
//!   waker.
//! * **Waker** — every poller owns a [`Waker`] (a `UnixStream` pair, not
//!   a raw pipe, so `std` owns the fds): any thread may call
//!   [`Waker::wake`] to make a concurrent or future `wait` return
//!   promptly. Wake-ups coalesce; the poller drains them internally.
//!
//! One fd may be registered with *many* pollers (how server shards share
//! one listening socket); deregistration is per-poller.

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, BorrowedFd, OwnedFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// The token [`Poller::wait`] never reports: it marks the internal waker
/// registration. Registering application fds under it is refused.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// What to watch an fd for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    read: bool,
    write: bool,
}

impl Interest {
    /// Watch for readability only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };

    /// Watch for writability only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };

    /// Watch for both readability and writability.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (or has pending data / an incoming connection).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the fd is in an error state. Reported as
    /// readable too, so a plain read loop observes the EOF/error.
    pub hangup: bool,
}

/// A handle that makes a [`Poller::wait`] return promptly from any
/// thread. Clonable and cheap; wake-ups coalesce.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Wakes the poller this waker belongs to. Never blocks: if the wake
    /// channel is already full, a wake-up is already pending and the
    /// write is dropped.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Waker")
    }
}

/// A level-triggered OS readiness poller (epoll / kqueue).
pub struct Poller {
    sys: sys::Selector,
    wake_rx: UnixStream,
    wake_tx: Arc<UnixStream>,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Poller")
    }
}

impl Poller {
    /// Creates a poller with its waker channel already registered.
    pub fn new() -> io::Result<Poller> {
        let sys = sys::Selector::new()?;
        let (wake_rx, wake_tx) = UnixStream::pair().map(|(a, b)| (a, b))?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        sys.register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)?;
        Ok(Poller {
            sys,
            wake_rx,
            wake_tx: Arc::new(wake_tx),
        })
    }

    /// The poller's waker. Clone freely; any clone wakes this poller.
    pub fn waker(&self) -> Waker {
        Waker {
            tx: Arc::clone(&self.wake_tx),
        }
    }

    /// Starts watching `fd` under `token`. The fd must stay open until
    /// [`Poller::deregister`]; closing it first is allowed by the OS
    /// (the registration dies with the fd) but then `deregister` will
    /// report `ENOENT`-flavoured errors, which callers should ignore.
    pub fn register(&self, fd: BorrowedFd<'_>, token: u64, interest: Interest) -> io::Result<()> {
        if token == WAKE_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the poller's waker",
            ));
        }
        self.sys.register(fd.as_raw_fd(), token, interest)
    }

    /// Changes the interest set (and token) of an already-registered fd.
    pub fn modify(&self, fd: BorrowedFd<'_>, token: u64, interest: Interest) -> io::Result<()> {
        if token == WAKE_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the poller's waker",
            ));
        }
        self.sys.modify(fd.as_raw_fd(), token, interest)
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: BorrowedFd<'_>) -> io::Result<()> {
        self.sys.deregister(fd.as_raw_fd())
    }

    /// Blocks until at least one registered fd is ready, the waker fires,
    /// or `timeout` elapses (`None` waits forever). Clears `events` and
    /// fills it with this round's reports; returns the number delivered.
    /// Waker traffic is drained internally and never reported.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let mut woken = false;
        self.sys.wait(events, timeout)?;
        events.retain(|e| {
            if e.token == WAKE_TOKEN {
                woken = true;
                false
            } else {
                true
            }
        });
        if woken {
            // Coalesce: drain every pending wake byte in one gulp.
            let mut buf = [0u8; 64];
            while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
        }
        Ok(events.len())
    }
}

/// Linux backend: epoll via in-repo bindings (the symbols live in the C
/// library the Rust standard library already links against).
#[cfg(target_os = "linux")]
mod sys {
    use super::*;

    // The kernel packs epoll_event on x86-64 only; other ABIs lay it out
    // naturally. Getting this wrong corrupts every second event's token.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            m |= EPOLLIN;
        }
        if interest.write {
            m |= EPOLLOUT;
        }
        m
    }

    pub(super) struct Selector {
        ep: OwnedFd,
    }

    impl Selector {
        pub(super) fn new() -> io::Result<Selector> {
            // SAFETY: epoll_create1 returns a fresh fd we own exclusively.
            let raw = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Selector {
                ep: unsafe { std::os::fd::FromRawFd::from_raw_fd(raw) },
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the fd numbers are valid by
            // the caller's contract (BorrowedFd upstream).
            cvt(unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
        }

        pub(super) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub(super) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let timeout_ms = match timeout {
                None => -1,
                // Round up so a 1ns timeout still sleeps ~1ms instead of
                // degenerating into a busy-loop.
                Some(d) => i32::try_from(d.as_millis().max(u128::from(u32::from(!d.is_zero()))))
                    .unwrap_or(i32::MAX),
            };
            let n = loop {
                // SAFETY: buf is a valid, writable array of 256 events.
                match cvt(unsafe {
                    epoll_wait(self.ep.as_raw_fd(), buf.as_mut_ptr(), 256, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }
}

/// macOS / BSD backend: kqueue. Read and write are separate filters, so
/// interest changes add/delete each filter individually.
#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd"
))]
mod sys {
    use super::*;

    #[repr(C)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut std::ffi::c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: isize,
        tv_nsec: isize,
    }

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_EOF: u16 = 0x8000;
    const EV_ERROR: u16 = 0x4000;

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const KEvent,
            nchanges: i32,
            eventlist: *mut KEvent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub(super) struct Selector {
        kq: OwnedFd,
    }

    impl Selector {
        pub(super) fn new() -> io::Result<Selector> {
            // SAFETY: kqueue returns a fresh fd we own exclusively.
            let raw = cvt(unsafe { kqueue() })?;
            Ok(Selector {
                kq: unsafe { std::os::fd::FromRawFd::from_raw_fd(raw) },
            })
        }

        fn change(&self, fd: RawFd, filter: i16, flags: u16, token: u64) -> io::Result<()> {
            let ev = KEvent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: token as *mut std::ffi::c_void,
            };
            // SAFETY: one fully-initialized change record, no event list.
            cvt(unsafe { kevent(self.kq.as_raw_fd(), &ev, 1, std::ptr::null_mut(), 0, std::ptr::null()) })
                .map(|_| ())
        }

        fn apply(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if interest.read {
                self.change(fd, EVFILT_READ, EV_ADD, token)?;
            } else {
                let _ = self.change(fd, EVFILT_READ, EV_DELETE, token);
            }
            if interest.write {
                self.change(fd, EVFILT_WRITE, EV_ADD, token)?;
            } else {
                let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, token);
            }
            Ok(())
        }

        pub(super) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.apply(fd, token, interest)
        }

        pub(super) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.apply(fd, token, interest)
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let _ = self.change(fd, EVFILT_READ, EV_DELETE, 0);
            let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, 0);
            Ok(())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf: Vec<KEvent> = Vec::with_capacity(256);
            let ts;
            let ts_ptr = match timeout {
                None => std::ptr::null(),
                Some(d) => {
                    ts = Timespec {
                        tv_sec: d.as_secs() as isize,
                        tv_nsec: d.subsec_nanos() as isize,
                    };
                    &ts as *const Timespec
                }
            };
            let n = loop {
                // SAFETY: buf has capacity for 256 events; kevent fills
                // at most that many and returns the count.
                match cvt(unsafe {
                    kevent(self.kq.as_raw_fd(), std::ptr::null(), 0, buf.as_mut_ptr(), 256, ts_ptr)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            // SAFETY: the kernel initialized the first n events.
            unsafe { buf.set_len(n) };
            for ev in &buf {
                let eof = ev.flags & (EV_EOF | EV_ERROR) != 0;
                out.push(Event {
                    token: ev.udata as u64,
                    readable: ev.filter == EVFILT_READ || eof,
                    writable: ev.filter == EVFILT_WRITE,
                    hangup: eof,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsFd;

    #[test]
    fn reports_readable_when_bytes_arrive() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending: the wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "spurious event before any bytes: {events:?}");

        a.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: still reported until drained.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 8];
        use std::io::Read as _;
        assert_eq!((&b).read(&mut buf).unwrap(), 1);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained fd still reported: {events:?}");
        poller.deregister(b.as_fd()).unwrap();
    }

    #[test]
    fn write_interest_and_modify() {
        let poller = Poller::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.register(a.as_fd(), 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        // An idle socket with empty send buffer is immediately writable.
        poller.modify(a.as_fd(), 4, Interest::READ_WRITE).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 4);
        assert!(events[0].writable);
    }

    #[test]
    fn waker_unblocks_wait_from_another_thread() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(n, 0, "waker traffic must not surface as an event");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "wait did not return promptly on wake"
        );
        handle.join().unwrap();
        // Coalesced wake bytes are drained: the next wait times out.
        poller.waker().wake();
        poller.waker().wake();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "stale wake byte left behind");
    }

    #[test]
    fn wake_token_is_reserved() {
        let poller = Poller::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        let err = poller
            .register(a.as_fd(), WAKE_TOKEN, Interest::READ)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn one_fd_in_two_pollers() {
        // The sharded server registers one listener in every shard.
        let p1 = Poller::new().unwrap();
        let p2 = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        p1.register(b.as_fd(), 1, Interest::READ).unwrap();
        p2.register(b.as_fd(), 2, Interest::READ).unwrap();
        a.write_all(b"y").unwrap();
        let mut events = Vec::new();
        assert_eq!(
            p1.wait(&mut events, Some(Duration::from_secs(5))).unwrap(),
            1
        );
        assert_eq!(events[0].token, 1);
        assert_eq!(
            p2.wait(&mut events, Some(Duration::from_secs(5))).unwrap(),
            1
        );
        assert_eq!(events[0].token, 2);
    }
}
