//! Pattern-string strategies: `"[a-z]{1,6}"` as a `Strategy<Value = String>`.
//!
//! Upstream proptest interprets `&str` strategies as full regexes; the
//! workspace's suites use a small dialect — literal characters, `.`
//! (any character), character classes `[a-z_]` with ranges, and `{m,n}` /
//! `{n}` repetition — which is what this module implements. Unsupported
//! syntax panics with a clear message, since a pattern is test code.

use super::strategy::Strategy;
use super::Source;
use crate::rng::RngExt;

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    Any,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern '{pattern}'"),
                        Some(']') => break,
                        Some(lo) => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = chars.next().unwrap_or_else(|| {
                                    panic!("dangling '-' in pattern '{pattern}'")
                                });
                                if hi == ']' {
                                    ranges.push((lo, lo));
                                    ranges.push(('-', '-'));
                                    break;
                                }
                                assert!(lo <= hi, "inverted range in pattern '{pattern}'");
                                ranges.push((lo, hi));
                            } else {
                                ranges.push((lo, lo));
                            }
                        }
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in '{pattern}'");
                Atom::Class(ranges)
            }
            '.' => Atom::Any,
            '\\' => Atom::Lit(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern '{pattern}'")),
            ),
            other => Atom::Lit(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().unwrap_or_else(|_| bad_quant(pattern)),
                    n.trim().parse().unwrap_or_else(|_| bad_quant(pattern)),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or_else(|_| bad_quant(pattern));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern '{pattern}'");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn bad_quant(pattern: &str) -> usize {
    panic!("malformed {{m,n}} quantifier in pattern '{pattern}'")
}

fn sample_atom(atom: &Atom, src: &mut Source) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut i = src.random_range(0..total);
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if i < span {
                    return char::from_u32(*lo as u32 + i).expect("class stays in scalar range");
                }
                i -= span;
            }
            unreachable!("index within total class size")
        }
        Atom::Any => {
            // Mostly ASCII (including controls — good fuzz food for the
            // parsers), occasionally an arbitrary scalar value.
            if src.random_bool(0.95) {
                src.random_range('\u{0}'..='\u{7f}')
            } else {
                src.random_range('\u{80}'..=char::MAX)
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, src: &mut Source) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = src.random_range(piece.min..=piece.max);
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, src));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &'static str, seed: u64) -> String {
        let mut src = Source::fresh(seed);
        pattern.generate(&mut src)
    }

    #[test]
    fn classes_and_quantifiers() {
        for seed in 0..50 {
            let s = gen("[a-z]{1,6}", seed);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let s = gen("[A-Z][a-z_]{0,5}", seed);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_uppercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn dot_ranges_over_anything() {
        for seed in 0..20 {
            let s = gen(".{0,200}", seed);
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    fn literals_pass_through() {
        assert_eq!(gen("abc", 1), "abc");
        assert_eq!(gen("a{3}", 1), "aaa");
    }
}
