//! Case execution, choice-stream shrinking, and seed-corpus replay.

use super::strategy::Strategy;
use super::{Source, TestCaseError, TestCaseResult};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Once;

/// Knobs for one property's run, mirroring upstream proptest's type.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required to pass.
    pub cases: u32,
    /// Budget of candidate replays the shrinker may spend.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 4096,
        }
    }
}

impl ProptestConfig {
    /// The default configuration with `cases` overridden.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A property failure after shrinking: the minimal counterexample found,
/// the seed that uncovered it, and the message of the failing assertion.
#[derive(Debug)]
pub struct Failure<V> {
    /// The property's name as given to [`run`]/[`check`].
    pub name: String,
    /// PRNG seed that produced the original failing case. Adding it to
    /// `regressions/<name>.seeds` replays it on every future run.
    pub seed: u64,
    /// Minimal failing value the shrinker converged on.
    pub value: V,
    /// Assertion/panic message from the minimal case.
    pub message: String,
    /// The minimal choice stream (what the shrinker actually minimized).
    pub stream: Vec<u64>,
}

// Panics thrown inside catch_unwind during shrinking would spam stderr via
// the default hook. Install (once) a delegating hook that a thread-local
// flag can mute, so muting one property run never hides another thread's
// real panic output.
thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

enum Trial {
    Pass,
    Reject,
    Fail { message: String, stream: Vec<u64> },
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Generates from `source` and runs `test`, catching panics. The returned
/// failing stream is truncated to the draws generation actually consumed.
fn run_one<S, F>(strategy: &S, source: &mut Source, test: &F) -> Trial
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    QUIET.with(|q| q.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let value = strategy.generate(source);
        test(value)
    }));
    QUIET.with(|q| q.set(false));
    let failing_stream = |source: &Source| {
        let stream = source.stream();
        stream[..source.consumed().min(stream.len())].to_vec()
    };
    match outcome {
        Ok(Ok(())) => Trial::Pass,
        Ok(Err(TestCaseError::Reject(_))) => Trial::Reject,
        Ok(Err(TestCaseError::Fail(message))) => Trial::Fail {
            message,
            stream: failing_stream(source),
        },
        Err(payload) => Trial::Fail {
            message: panic_message(payload),
            stream: failing_stream(source),
        },
    }
}

/// Shrinks a failing choice stream: block deletion with halving block
/// sizes, then per-entry minimization toward zero by binary search, looping
/// to a fixpoint within `budget` replays. Candidates are only accepted when
/// strictly smaller (shorter, or lexicographically below at equal length),
/// so the loop terminates.
fn shrink<S, F>(
    strategy: &S,
    test: &F,
    mut stream: Vec<u64>,
    mut message: String,
    budget: u32,
) -> (Vec<u64>, String)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let spent = Cell::new(0u32);
    let attempt = |candidate: Vec<u64>| -> Option<(Vec<u64>, String)> {
        if spent.get() >= budget {
            return None;
        }
        spent.set(spent.get() + 1);
        let mut src = Source::replay(candidate);
        match run_one(strategy, &mut src, test) {
            Trial::Fail { message, stream } => Some((stream, message)),
            _ => None,
        }
    };

    loop {
        let before = stream.clone();

        // Pass 1: delete blocks, largest first.
        let mut block = (stream.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < stream.len() {
                let end = (start + block).min(stream.len());
                let mut candidate = stream.clone();
                candidate.drain(start..end);
                if let Some((s, m)) = attempt(candidate) {
                    if s.len() < stream.len() {
                        stream = s;
                        message = m;
                        continue; // retry same start against shorter stream
                    }
                }
                start += block;
            }
            if block == 1 {
                break;
            }
            block /= 2;
        }

        // Pass 2: minimize each entry toward zero.
        let mut i = 0;
        while i < stream.len() {
            let cur = stream[i];
            if cur != 0 {
                let mut zeroed = stream.clone();
                zeroed[i] = 0;
                if let Some((s, m)) = attempt(zeroed) {
                    stream = s;
                    message = m;
                } else {
                    // 0 passes, `cur` fails: binary-search the least
                    // failing value in between.
                    let (mut lo, mut hi) = (0u64, cur);
                    while lo + 1 < hi {
                        if i >= stream.len() {
                            break;
                        }
                        let mid = lo + (hi - lo) / 2;
                        let mut candidate = stream.clone();
                        candidate[i] = mid;
                        if let Some((s, m)) = attempt(candidate) {
                            hi = mid;
                            stream = s;
                            message = m;
                        } else {
                            lo = mid;
                        }
                    }
                    if i < stream.len() && stream[i] == cur && hi < cur {
                        stream[i] = hi;
                    }
                }
            }
            i += 1;
        }

        if stream == before || spent.get() >= budget {
            return (stream, message);
        }
    }
}

/// Runs the property, returning the shrunk [`Failure`] instead of
/// panicking. [`run`] is the `#[test]`-facing wrapper; `check` exists so
/// the harness can test itself (and so callers can inspect failures).
pub fn check<S, F>(
    name: &str,
    config: &ProptestConfig,
    strategy: S,
    test: F,
) -> Result<(), Failure<S::Value>>
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    install_quiet_hook();

    let finish = |seed: u64, stream: Vec<u64>, message: String| {
        let (stream, message) = shrink(&strategy, &test, stream, message, config.max_shrink_iters);
        // The accepted candidate generated successfully during shrinking,
        // so regenerating it deterministically cannot panic.
        let mut src = Source::replay(stream.clone());
        let value = strategy.generate(&mut src);
        Failure {
            name: name.to_string(),
            seed,
            value,
            message,
            stream,
        }
    };

    // Regression corpus first: known-bad seeds from earlier failures.
    for seed in regression_seeds(name) {
        let mut src = Source::fresh(seed);
        if let Trial::Fail { message, stream } = run_one(&strategy, &mut src, &test) {
            return Err(finish(seed, stream, message));
        }
    }

    let base = fnv1a64(name.as_bytes());
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let mut rejects = 0u32;
    while passed < config.cases {
        let seed = case_seed(base, attempts);
        attempts += 1;
        let mut src = Source::fresh(seed);
        match run_one(&strategy, &mut src, &test) {
            Trial::Pass => passed += 1,
            Trial::Reject => {
                rejects += 1;
                assert!(
                    rejects <= config.cases.saturating_mul(16).saturating_add(64),
                    "property '{name}': too many cases rejected by prop_assume! \
                     ({rejects} rejects for {passed} passes) — loosen the strategy"
                );
            }
            Trial::Fail { message, stream } => return Err(finish(seed, stream, message)),
        }
    }
    Ok(())
}

/// Runs the property `config.cases` times (after replaying the regression
/// corpus), shrinking and panicking with the minimal counterexample on
/// failure. This is what the [`crate::proptest!`] macro expands to.
pub fn run<S, F>(name: &str, config: &ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    if let Err(failure) = check(name, config, strategy, test) {
        panic!(
            "property '{name}' failed: {message}\n\
             minimal failing input: {value:#?}\n\
             seed: 0x{seed:016x}\n\
             replay: add the seed above to regressions/{name}.seeds",
            message = failure.message,
            value = failure.value,
            seed = failure.seed,
        );
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-case seeds: deterministic in (property name, case index) so a run
/// is reproducible without any global state, yet distinct across both.
fn case_seed(base: u64, attempt: u64) -> u64 {
    use crate::rng::Rng;
    crate::rng::SplitMix64::new(base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

fn regressions_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("AXML_REGRESSIONS_DIR") {
        return Some(PathBuf::from(dir));
    }
    // Walk up from the crate being tested to the workspace root.
    let mut dir = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").ok()?);
    for _ in 0..4 {
        let candidate = dir.join("regressions");
        if candidate.is_dir() {
            return Some(candidate);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

/// Seeds listed in `regressions/<name>.seeds`: one decimal or `0x`-hex
/// `u64` per line, `#` starting a comment. A missing file means no corpus.
fn regression_seeds(name: &str) -> Vec<u64> {
    let Some(dir) = regressions_dir() else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(dir.join(format!("{name}.seeds"))) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim().replace('_', "");
        if line.is_empty() {
            continue;
        }
        let parsed = match line.strip_prefix("0x").or_else(|| line.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => line.parse(),
        };
        match parsed {
            Ok(seed) => seeds.push(seed),
            Err(_) => panic!(
                "regressions/{name}.seeds line {}: '{line}' is not a u64 seed",
                lineno + 1
            ),
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::collection;

    #[test]
    fn passing_property_passes() {
        let cfg = ProptestConfig::with_cases(64);
        check("always_in_range", &cfg, 0u32..10, |v| {
            assert!(v < 10);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn failing_property_shrinks_scalar_to_boundary() {
        let cfg = ProptestConfig::with_cases(64);
        let failure = check("scalar_boundary", &cfg, 0u32..10_000, |v| {
            if v >= 1000 {
                Err(TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(failure.value, 1000, "binary search finds the boundary");
    }

    #[test]
    fn vec_property_shrinks_to_single_minimal_element() {
        let cfg = ProptestConfig::with_cases(128);
        let failure = check(
            "vec_minimal",
            &cfg,
            collection::vec(0u32..2000, 0..=8),
            |v| {
                if v.iter().any(|&x| x >= 1000) {
                    Err(TestCaseError::fail("has a big element"))
                } else {
                    Ok(())
                }
            },
        )
        .unwrap_err();
        assert_eq!(failure.value, vec![1000]);
    }

    #[test]
    fn panics_are_failures_and_shrink_too() {
        let cfg = ProptestConfig::with_cases(64);
        let failure = check("panicky", &cfg, 0u64..100, |v| {
            assert!(v < 7, "blew up on {v}");
            Ok(())
        })
        .unwrap_err();
        assert_eq!(failure.value, 7);
        assert!(failure.message.contains("blew up"));
    }

    #[test]
    fn minimal_stream_replays_to_same_failure() {
        let cfg = ProptestConfig::with_cases(64);
        let strategy = || collection::vec(0u32..500, 1..=6);
        let prop = |v: Vec<u32>| {
            if v.iter().sum::<u32>() >= 300 {
                Err(TestCaseError::fail("sum too large"))
            } else {
                Ok(())
            }
        };
        let failure = check("replayable", &cfg, strategy(), prop).unwrap_err();
        let mut src = Source::replay(failure.stream.clone());
        let replayed = strategy().generate(&mut src);
        assert_eq!(replayed, failure.value);
        assert!(prop(replayed).is_err());
    }

    #[test]
    fn rejects_do_not_fail() {
        let cfg = ProptestConfig::with_cases(16);
        check("rejecting", &cfg, 0u32..10, |v| {
            if v % 2 == 0 {
                Err(TestCaseError::reject("odd only"))
            } else {
                Ok(())
            }
        })
        .unwrap();
    }
}
