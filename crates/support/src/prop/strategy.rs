//! Strategy combinators: how random structured values are described.

use super::Source;
use crate::rng::RngExt;
use std::fmt::Debug;
use std::sync::Arc;

/// A recipe for generating random values of one type from a [`Source`].
///
/// Unlike upstream proptest there is no per-value shrink tree: shrinking
/// happens on the choice stream (see the module docs), so implementors
/// only ever define [`Strategy::generate`] — and must draw **exclusively**
/// through the source, never from ambient state, or replay breaks.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, src: &mut Source) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Recursively nests this strategy: `expand` receives a strategy for
    /// the nested occurrences and returns the composite level.
    ///
    /// `depth` bounds the nesting; `desired_size` and `expected_branch`
    /// are accepted for source compatibility with upstream proptest but
    /// only influence the leaf/branch bias mildly.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        desired_size: u32,
        expected_branch: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        S2: Strategy<Value = Self::Value>,
    {
        let _ = (desired_size, expected_branch);
        Recursive {
            base: self.boxed(),
            expand: Arc::new(move |inner| expand(inner).boxed()),
            depth,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, src: &mut Source) -> T {
        self.0.generate(src)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _src: &mut Source) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;

    fn generate(&self, src: &mut Source) -> O {
        (self.f)(self.inner.generate(src))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    expand: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            expand: Arc::clone(&self.expand),
            depth: self.depth,
        }
    }
}

impl<T: Debug + 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, src: &mut Source) -> T {
        if self.depth == 0 {
            return self.base.generate(src);
        }
        // Bias toward branching while depth remains, tapering as it runs
        // out; the draw itself goes through the source so shrinking can
        // collapse branches into leaves.
        let p_branch = self.depth as f64 / (self.depth as f64 + 1.0);
        if src.random_bool(p_branch) {
            let inner = Recursive {
                base: self.base.clone(),
                expand: Arc::clone(&self.expand),
                depth: self.depth - 1,
            }
            .boxed();
            (self.expand)(inner).generate(src)
        } else {
            self.base.generate(src)
        }
    }
}

/// Uniform choice between alternative strategies for the same type —
/// what [`crate::prop_oneof!`] builds.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug + 'static> Union<T> {
    /// A union over the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug + 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, src: &mut Source) -> T {
        let i = src.random_range(0..self.options.len());
        self.options[i].generate(src)
    }
}

/// Uniform choice from a fixed slice of values (`proptest::sample::select`).
#[derive(Debug, Clone)]
pub struct Select<T: 'static> {
    choices: &'static [T],
}

/// A strategy drawing uniformly from `choices`.
pub fn select<T: Clone + Debug>(choices: &'static [T]) -> Select<T> {
    assert!(!choices.is_empty(), "select() needs a non-empty slice");
    Select { choices }
}

impl<T: Clone + Debug + 'static> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, src: &mut Source) -> T {
        let i = src.random_range(0..self.choices.len());
        self.choices[i].clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, src: &mut Source) -> $t {
                src.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, src: &mut Source) -> $t {
                src.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, char);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    /// Bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, src: &mut Source) -> Vec<S::Value> {
            let len = src.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(src)).collect()
        }
    }
}
