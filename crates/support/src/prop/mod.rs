//! A minimal, deterministic property-testing harness.
//!
//! Ported surface of the upstream `proptest` crate, sized to what the
//! workspace's suites use: strategy combinators, a `proptest!` macro,
//! `prop_assert*` / `prop_assume!`, bounded shrinking and seed-corpus
//! replay.
//!
//! ## How it works
//!
//! A [`Strategy`] draws its value from a [`Source`] — a recorded stream of
//! `u64` choices backed by the deterministic [`crate::rng::StdRng`]. When a
//! property fails, the harness **shrinks the choice stream**, not the
//! value: it deletes blocks and binary-searches individual choices toward
//! zero, replaying the strategy on each candidate stream and keeping those
//! that still fail. Because every combinator (including `prop_map` and
//! `prop_recursive`) regenerates from the stream, shrinking composes
//! through arbitrary mappings for free — the trick Hypothesis popularized.
//!
//! ## Regression corpus
//!
//! Before generating novel cases, [`run`] replays every seed listed in
//! `regressions/<property>.seeds` (resolved against `AXML_REGRESSIONS_DIR`
//! or `CARGO_MANIFEST_DIR`). A failing run prints the seed to add. Lines
//! are decimal or `0x`-hex `u64`s; `#` starts a comment.

mod runner;
mod strategy;
mod string;

pub use runner::{check, run, Failure, ProptestConfig};
pub use strategy::{
    collection, select, BoxedStrategy, Just, Recursive, Select, Strategy, Union,
};

use crate::rng::{Rng, SeedableRng, StdRng};

/// The outcome of one test-case execution.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property failed; shrinking will start from this case.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (assumption not met) with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// The choice stream strategies draw from.
///
/// In `Fresh` mode every drawn `u64` comes from the PRNG and is recorded;
/// in `Replay` mode draws come from a fixed stream (padding with zeros once
/// exhausted), which is what shrinking and regression replay rely on.
pub struct Source {
    rng: StdRng,
    mode: Mode,
    /// Number of draws the current generation consumed.
    consumed: usize,
}

enum Mode {
    Fresh { recorded: Vec<u64> },
    Replay { stream: Vec<u64> },
}

impl Source {
    /// A fresh recording source seeded deterministically.
    pub fn fresh(seed: u64) -> Self {
        Source {
            rng: StdRng::seed_from_u64(seed),
            mode: Mode::Fresh {
                recorded: Vec::new(),
            },
            consumed: 0,
        }
    }

    /// A replay source over a fixed choice stream.
    pub fn replay(stream: Vec<u64>) -> Self {
        Source {
            // The rng is unused during replay but keeps the type uniform.
            rng: StdRng::seed_from_u64(0),
            mode: Mode::Replay { stream },
            consumed: 0,
        }
    }

    /// The recorded (fresh) or consumed (replay) choice stream so far.
    pub fn stream(&self) -> &[u64] {
        match &self.mode {
            Mode::Fresh { recorded } => recorded,
            Mode::Replay { stream } => stream,
        }
    }

    /// How many draws the last generation used.
    pub fn consumed(&self) -> usize {
        self.consumed
    }
}

impl Rng for Source {
    fn next_u64(&mut self) -> u64 {
        let i = self.consumed;
        self.consumed += 1;
        match &mut self.mode {
            Mode::Fresh { recorded } => {
                let v = self.rng.next_u64();
                recorded.push(v);
                v
            }
            Mode::Replay { stream } => stream.get(i).copied().unwrap_or(0),
        }
    }
}
