//! A micro-benchmark harness behind a Criterion-compatible facade.
//!
//! The `crates/bench/benches/b*.rs` workloads keep their upstream shape
//! (`Criterion`, `benchmark_group`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!`); this module supplies the
//! measurement loop: a timed warm-up, adaptively batched samples, and
//! median / p95 / min / max / mean statistics per benchmark.
//!
//! Environment knobs:
//!
//! * `AXML_BENCH_SMOKE=1` — smoke mode: one warm-up iteration and three
//!   samples per benchmark, so every bench binary finishes in seconds.
//!   CI uses this to prove the workloads still run.
//! * `AXML_BENCH_JSON=<dir>` (or `1` for the current directory) — write
//!   one `BENCH_<group>.json` per benchmark group. Schema (documented in
//!   DESIGN.md): `{"group", "smoke", "benchmarks": [{"id", "samples",
//!   "iters_per_sample", "median_ns", "p95_ns", "min_ns", "max_ns",
//!   "mean_ns", "throughput_elements"}]}`, plus any values a workload
//!   attached via [`BenchmarkGroup::attach_json`] as extra top-level keys.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use crate::{criterion_group, criterion_main};

/// True when `AXML_BENCH_SMOKE` requests the fast smoke configuration.
pub fn smoke_mode() -> bool {
    matches!(
        std::env::var("AXML_BENCH_SMOKE").as_deref(),
        Ok("1") | Ok("true") | Ok("yes")
    )
}

/// Per-element throughput annotation (`group.throughput(...)`). Only the
/// `Elements` flavour is used by the workloads; it is recorded into the
/// JSON report, not used to rescale timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group: an optional function name plus
/// a `Display`-formatted parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the closure under measurement; [`Bencher::iter`] runs and
/// times the workload.
pub struct Bencher<'a> {
    samples: usize,
    warm_up: Duration,
    /// Filled by `iter`: per-iteration nanosecond samples.
    recorded: &'a mut Vec<f64>,
    iters_per_sample: &'a mut u64,
}

impl Bencher<'_> {
    /// Times `f`: warm-up, then `samples` batches, recording the mean
    /// per-iteration time of each batch. Batch size adapts so one batch
    /// costs roughly a millisecond, keeping timer noise out of fast
    /// workloads.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warm_start = Instant::now();
        std::hint::black_box(f());
        let first = warm_start.elapsed();
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(f());
        }

        const TARGET_BATCH: Duration = Duration::from_millis(1);
        let est = first.max(Duration::from_nanos(1));
        let iters = (TARGET_BATCH.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;
        *self.iters_per_sample = iters;

        self.recorded.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            self.recorded.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

#[derive(Debug)]
struct BenchResult {
    id: String,
    samples: usize,
    iters_per_sample: u64,
    median_ns: f64,
    p95_ns: f64,
    min_ns: f64,
    max_ns: f64,
    mean_ns: f64,
    throughput_elements: Option<u64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// A named collection of benchmarks sharing measurement settings; created
/// by [`Criterion::benchmark_group`], reported when [`finish`]ed.
///
/// [`finish`]: BenchmarkGroup::finish
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
    attachments: Vec<(String, String)>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        if !smoke_mode() {
            self.sample_size = n;
        }
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if !smoke_mode() {
            self.warm_up = d;
        }
        self
    }

    /// Accepted for source compatibility; the harness sizes measurement by
    /// sample count, not wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Attaches a pre-rendered JSON value under `key` at the top level of
    /// the group's `BENCH_<group>.json` report. `raw_json` must be a valid
    /// JSON value — it is embedded verbatim, not escaped. Workloads use
    /// this to snapshot side-channel data (e.g. an `axml-obs` metrics
    /// registry) alongside the timing figures without this harness taking
    /// a dependency on the producer.
    pub fn attach_json(&mut self, key: impl Into<String>, raw_json: impl Into<String>) -> &mut Self {
        let key = key.into();
        let raw = raw_json.into();
        assert!(!key.is_empty(), "attachment key must be non-empty");
        assert!(
            !raw.trim().is_empty(),
            "attachment '{key}' must carry a JSON value"
        );
        self.attachments.push((key, raw));
        self
    }

    /// Measures `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let id = id.into();
        self.record(id.id.clone(), |b| f(b));
        self
    }

    /// Measures `f` under `id`, passing `input` through — the upstream
    /// shape for parameterized benchmarks.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        self.record(id.id.clone(), |b| f(b, input));
        self
    }

    fn record(&mut self, id: String, mut f: impl FnMut(&mut Bencher<'_>)) {
        let mut recorded = Vec::new();
        let mut iters_per_sample = 1u64;
        let mut bencher = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            recorded: &mut recorded,
            iters_per_sample: &mut iters_per_sample,
        };
        f(&mut bencher);
        assert!(
            !recorded.is_empty(),
            "benchmark '{}/{id}' never called Bencher::iter",
            self.name
        );
        recorded.sort_by(|a, b| a.total_cmp(b));
        let mean = recorded.iter().sum::<f64>() / recorded.len() as f64;
        let result = BenchResult {
            id,
            samples: recorded.len(),
            iters_per_sample,
            median_ns: percentile(&recorded, 0.5),
            p95_ns: percentile(&recorded, 0.95),
            min_ns: recorded[0],
            max_ns: recorded[recorded.len() - 1],
            mean_ns: mean,
            throughput_elements: match self.throughput {
                Some(Throughput::Elements(n)) => Some(n),
                _ => None,
            },
        };
        println!(
            "{:<40} median {:>12.1} ns  p95 {:>12.1} ns  ({} samples x {} iters)",
            format!("{}/{}", self.name, result.id),
            result.median_ns,
            result.p95_ns,
            result.samples,
            result.iters_per_sample,
        );
        self.results.push(result);
    }

    /// Emits the group's report (stdout summary always; JSON when
    /// `AXML_BENCH_JSON` is set) and ends the group.
    pub fn finish(self) {
        let json = render_json(&self.name, &self.results, &self.attachments);
        self.criterion.emit(&self.name, &json);
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json(group: &str, results: &[BenchResult], attachments: &[(String, String)]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"group\": \"{}\",\n  \"smoke\": {},\n  \"benchmarks\": [",
        json_escape(group),
        smoke_mode()
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
             \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"min_ns\": {:.1}, \
             \"max_ns\": {:.1}, \"mean_ns\": {:.1}, \"throughput_elements\": {}}}",
            json_escape(&r.id),
            r.samples,
            r.iters_per_sample,
            r.median_ns,
            r.p95_ns,
            r.min_ns,
            r.max_ns,
            r.mean_ns,
            r.throughput_elements
                .map_or("null".to_string(), |n| n.to_string()),
        );
    }
    out.push_str("\n  ]");
    for (key, raw) in attachments {
        let _ = write!(out, ",\n  \"{}\": {}", json_escape(key), raw.trim());
    }
    out.push_str("\n}\n");
    out
}

/// Entry point mirroring `criterion::Criterion`: hands out benchmark
/// groups and emits their reports.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let smoke = smoke_mode();
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: if smoke { 3 } else { 30 },
            warm_up: if smoke {
                Duration::ZERO
            } else {
                Duration::from_millis(300)
            },
            throughput: None,
            results: Vec::new(),
            attachments: Vec::new(),
        }
    }

    /// Measures a single standalone benchmark — a one-entry group named
    /// after the benchmark itself.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher<'_>)) -> &mut Self {
        let mut group = self.benchmark_group(name);
        group.bench_function(name, f);
        group.finish();
        self
    }

    fn emit(&mut self, group: &str, json: &str) {
        let Ok(dest) = std::env::var("AXML_BENCH_JSON") else {
            return;
        };
        if dest.is_empty() || dest == "0" {
            return;
        }
        let dir = if dest == "1" || dest == "true" {
            std::path::PathBuf::from(".")
        } else {
            std::path::PathBuf::from(dest)
        };
        let _ = std::fs::create_dir_all(&dir);
        let slug: String = group
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("BENCH_{slug}.json"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    }
}

/// Declares a function running the listed benchmark targets in order, as
/// `criterion::criterion_group!` does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main()` invoking each benchmark group function, as
/// `criterion::criterion_main!` does.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_renders_json() {
        // Force-quick settings regardless of env.
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size = 3;
        group.warm_up = Duration::ZERO;
        group.throughput(Throughput::Elements(7));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        assert_eq!(group.results.len(), 1);
        let r = &group.results[0];
        assert_eq!(r.id, "sum/10");
        assert!(r.median_ns >= 0.0 && r.min_ns <= r.max_ns);
        assert_eq!(r.throughput_elements, Some(7));
        let json = render_json(&group.name, &group.results, &group.attachments);
        assert!(json.contains("\"group\": \"selftest\""));
        assert!(json.contains("\"id\": \"sum/10\""));
        assert!(json.contains("\"median_ns\""));
    }

    #[test]
    fn attachments_land_as_top_level_keys() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("attached");
        group.sample_size = 1;
        group.warm_up = Duration::ZERO;
        group.bench_function("noop", |b| b.iter(|| 1u32));
        group.attach_json("obs_snapshot", "{\"counters\":{\"x\":1}}");
        let json = render_json(&group.name, &group.results, &group.attachments);
        assert!(json.contains("\"obs_snapshot\": {\"counters\":{\"x\":1}}"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("safe", 4).id, "safe/4");
        assert_eq!(BenchmarkId::from_parameter("x2_k3").id, "x2_k3");
    }
}
