//! Time as a capability: a [`Clock`] trait code blocks and measures
//! against, instead of calling `std::time` directly.
//!
//! Anything that sleeps (client retry backoff) or timestamps (latency
//! histograms) takes a `Arc<dyn Clock>`; production code gets the
//! wall-clock [`SystemClock`], while the deterministic simulator
//! (`axml-sim`) substitutes a *virtual* clock whose time advances only
//! when its event scheduler says so. That substitution is what lets a
//! simulated scenario with seconds of configured timeouts run in
//! microseconds of wall time — and reproduce byte-identically per seed.

use std::sync::Arc;
use std::time::Duration;

/// A monotonic clock plus the ability to block until a later instant.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's (arbitrary, fixed) epoch.
    fn now_ns(&self) -> u64;

    /// Blocks the calling thread for (at least) `d`.
    fn sleep(&self, d: Duration);
}

/// The real monotonic clock; its epoch is the first call in the process.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        use std::sync::OnceLock;
        use std::time::Instant;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = *EPOCH.get_or_init(Instant::now);
        Instant::now().duration_since(epoch).as_nanos() as u64
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// The shared wall clock, for call sites that default rather than inject.
pub fn system() -> Arc<dyn Clock> {
    use std::sync::OnceLock;
    static SYSTEM: OnceLock<Arc<dyn Clock>> = OnceLock::new();
    Arc::clone(SYSTEM.get_or_init(|| Arc::new(SystemClock)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_and_sleeps() {
        let clock = SystemClock;
        let a = clock.now_ns();
        clock.sleep(Duration::from_millis(2));
        let b = clock.now_ns();
        assert!(b > a, "time moved: {a} -> {b}");
    }

    #[test]
    fn shared_clock_is_one_instance() {
        assert!(Arc::ptr_eq(&system(), &system()));
    }
}
