//! # axml-support — hermetic build-and-test substrate
//!
//! The workspace must build and test **offline**: no registry crate may
//! appear in any `Cargo.toml`. This crate supplies, from scratch, the
//! small slices of `rand`, `proptest`, `criterion`, `parking_lot` and
//! `crossbeam` that the rest of the workspace actually uses:
//!
//! * [`rng`] — a deterministic, seedable PRNG (SplitMix64 seeding a
//!   xoshiro256\*\* core) behind `rand`-style [`rng::Rng`] /
//!   [`rng::RngExt`] / [`rng::SeedableRng`] traits. Same seed, same
//!   stream, on every platform — the property suites and the adversarial
//!   services depend on that.
//! * [`prop`] — a minimal property-testing harness: strategy combinators
//!   ([`prop::Strategy::prop_map`], [`prop::Strategy::prop_recursive`],
//!   [`prop_oneof!`], [`prop::collection::vec`], pattern-string and range
//!   strategies), bounded choice-stream shrinking, and seed-corpus replay
//!   from a `regressions/` directory. The [`proptest!`] macro mirrors the
//!   upstream surface the test suites were written against.
//! * [`bench`] — a micro-bench harness (warm-up, N timed iterations,
//!   median/p95, JSON emission) with a Criterion-compatible facade so the
//!   `benches/b*.rs` workloads keep their shape. See DESIGN.md for the
//!   emitted `BENCH_*.json` schema.
//! * [`sync`] — `parking_lot`-flavoured [`sync::Mutex`] / [`sync::RwLock`]
//!   (no poison plumbing at call sites) and a `crossbeam`-flavoured
//!   [`sync::channel`] module, all over `std::sync`.
//! * [`hash`] — an FxHash-style deterministic fast hasher
//!   ([`hash::FxHashMap`], [`hash::fx_hash_one`]) for trusted-key
//!   interning tables and structural fingerprints on hot paths.
//! * [`clock`] — time as a capability: the [`clock::Clock`] trait with a
//!   wall-clock default, so the deterministic simulator can substitute
//!   virtual time everywhere code sleeps or timestamps.
//! * [`poll`] — a minimal level-triggered OS readiness poller (epoll on
//!   Linux, kqueue on macOS/BSD) over `std::os::fd` with in-repo
//!   `extern "C"` bindings, the substrate of the event-driven network
//!   core (`axml-net`'s `--io poll` engine).
//!
//! Everything here is plain `std`; adding a dependency to this crate
//! defeats its purpose.

#![warn(missing_docs)]

pub mod bench;
pub mod clock;
pub mod hash;
mod macros;
#[cfg(unix)]
pub mod poll;
pub mod prop;
pub mod rng;
pub mod sync;

/// One-stop import for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop::collection;
    pub use crate::prop::{
        self, select, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}
