//! Deterministic, seedable pseudo-random number generation.
//!
//! The workspace needs reproducible randomness in three places: the
//! regular-language word sampler (`axml-automata`), the schema instance
//! generators (`axml-schema`), and the adversarial simulated services
//! (`axml-services`). All of them seed from a `u64` and must produce the
//! same stream on every platform and every run — so the generator lives
//! here, in-repo, instead of behind a registry crate.
//!
//! The core is xoshiro256\*\* (Blackman & Vigna), seeded by expanding the
//! `u64` seed through SplitMix64 — the construction the reference
//! implementation recommends. Neither algorithm is cryptographic; they are
//! fast, well-distributed simulation PRNGs, which is exactly the job here.

/// A source of random `u64`s. Object-safe; everything richer lives in
/// [`RngExt`].
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The SplitMix64 generator: a tiny, fast PRNG whose main role here is
/// expanding one `u64` seed into the 256-bit xoshiro state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workspace's standard generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The default generator type, by its `rand`-era name.
pub type StdRng = Xoshiro256StarStar;

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = mix.next_u64();
        }
        // All-zero state is the one fixed point; the SplitMix expansion of
        // any seed cannot produce it, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

mod sealed {
    use super::Rng;

    /// Types [`super::RngExt::random_range`] can draw uniformly.
    pub trait UniformSample: Copy + PartialOrd {
        fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        fn sample_exclusive_upper<R: Rng + ?Sized>(rng: &mut R, lo: Self, end: Self) -> Self;
    }

    macro_rules! impl_uniform_unsigned {
        ($($t:ty),*) => {$(
            impl UniformSample for $t {
                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    // Fixed-point multiply maps 2^64 draws onto span+1
                    // buckets; the bias is < (span+1)/2^64 — irrelevant for
                    // simulation use and, crucially, deterministic.
                    let draw = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                    lo.wrapping_add(draw as $t)
                }

                fn sample_exclusive_upper<R: Rng + ?Sized>(rng: &mut R, lo: Self, end: Self) -> Self {
                    Self::sample_inclusive(rng, lo, end - 1)
                }
            }
        )*};
    }
    impl_uniform_unsigned!(u8, u16, u32, u64, usize);

    macro_rules! impl_uniform_signed {
        ($($t:ty => $u:ty),*) => {$(
            impl UniformSample for $t {
                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    // Shift into the unsigned domain, sample, shift back.
                    let lo_u = (lo as $u).wrapping_sub(<$t>::MIN as $u);
                    let hi_u = (hi as $u).wrapping_sub(<$t>::MIN as $u);
                    let s = <$u as UniformSample>::sample_inclusive(rng, lo_u, hi_u);
                    s.wrapping_add(<$t>::MIN as $u) as $t
                }

                fn sample_exclusive_upper<R: Rng + ?Sized>(rng: &mut R, lo: Self, end: Self) -> Self {
                    Self::sample_inclusive(rng, lo, end - 1)
                }
            }
        )*};
    }
    impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    impl UniformSample for char {
        fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            // Rejection-free over the surrogate gap: sample the code-point
            // range with the gap removed, then shift past it.
            const GAP_LO: u32 = 0xD800;
            const GAP_LEN: u32 = 0xE000 - 0xD800;
            let lo = lo as u32;
            let hi = hi as u32;
            let lo_packed = if lo >= GAP_LO { lo - GAP_LEN } else { lo };
            let hi_packed = if hi >= GAP_LO { hi - GAP_LEN } else { hi };
            let v = u32::sample_inclusive(rng, lo_packed, hi_packed);
            let v = if v >= GAP_LO { v + GAP_LEN } else { v };
            char::from_u32(v).expect("sampled a valid scalar value")
        }

        fn sample_exclusive_upper<R: Rng + ?Sized>(rng: &mut R, lo: Self, end: Self) -> Self {
            let prev = char::from_u32(end as u32 - 1)
                .or_else(|| char::from_u32(0xD7FF))
                .expect("non-empty char range");
            Self::sample_inclusive(rng, lo, prev)
        }
    }
}

use sealed::UniformSample;

/// A half-open or inclusive range an [`RngExt`] method can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_exclusive_upper(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience methods over any [`Rng`], mirroring the `rand` extension
/// surface the workspace uses.
pub trait RngExt: Rng {
    /// Uniform draw from an integer (or `char`) range.
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Alias for [`RngExt::random_range`], under the older `rand` name.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        self.random_range(range)
    }

    /// Returns `true` with probability `p` (values outside `[0, 1]` clamp).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_unit() < p
    }

    /// A uniform `f64` in `[0, 1)` built from 53 random bits.
    fn random_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.random_range(0..slice.len());
            Some(&slice[i])
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First output of the public-domain SplitMix64 for seed 0.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut g = StdRng::seed_from_u64(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v: u8 = g.random_range(3..=5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn signed_ranges_work() {
        let mut g = StdRng::seed_from_u64(10);
        for _ in 0..2000 {
            let v: i32 = g.random_range(-5..5);
            assert!((-5..5).contains(&v));
        }
        let _: i64 = g.random_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn char_ranges_skip_surrogates() {
        let mut g = StdRng::seed_from_u64(11);
        for _ in 0..2000 {
            let c: char = g.random_range('\u{0}'..=char::MAX);
            assert!(!(0xD800..0xE000).contains(&(c as u32)));
        }
    }

    #[test]
    fn dyn_rng_usable() {
        let mut g = StdRng::seed_from_u64(12);
        let d: &mut dyn Rng = &mut g;
        let v = d.random_range(0..10usize);
        assert!(v < 10);
    }
}
