//! The `proptest!` macro family, mirroring the upstream surface.

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// inside the block becomes a `#[test]` that runs the body against
/// generated inputs via [`crate::prop::run`], shrinking on failure.
///
/// An optional leading `#![proptest_config(expr)]` sets the
/// [`crate::prop::ProptestConfig`] for every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::prop::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: peels one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // Metas pass through verbatim — like upstream, the user writes
        // `#[test]` inside the block and the macro does not add its own.
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::prop::run(
                stringify!($name),
                &config,
                strategy,
                move |($($pat,)+)| -> $crate::prop::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Uniform choice among alternative strategies producing the same type.
/// Arms are boxed and wrapped in a [`crate::prop::Union`].
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::prop::Union::new(vec![
            $($crate::prop::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!`, but fails the current test case (triggering shrinking)
/// instead of immediately panicking the test thread.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::prop::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails the current test case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs,
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            lhs,
            rhs,
        );
    }};
}

/// Discards the current test case (without failing) when the assumption
/// does not hold; the runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::prop::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
