//! Deterministic fast hashing.
//!
//! `std::collections::HashMap` defaults to SipHash with per-process
//! random keys — robust against adversarial keys, but slow for the tiny
//! integer keys the automata layer interns by the million, and
//! non-deterministic across runs. This module provides an FxHash-style
//! multiply-xor hasher: a fixed seed, one multiply per word, identical
//! output on every platform and run. Use it for *internal* interning
//! tables whose keys are trusted (state ids, symbol pairs, structural
//! cache keys), never for maps keyed by untrusted input.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// 64-bit odd multiplier (derived from the golden ratio), the same
/// constant rustc's FxHash uses. Any odd constant with good bit
/// dispersion works; this one is well studied.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher.
///
/// Each written word is combined by rotate-xor-multiply. Not resistant
/// to collision attacks — only use with trusted keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab" and "ab\0" differ.
            buf[7] ^= rest.len() as u8;
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`] — deterministic iteration-free
/// drop-in for interning tables on hot paths.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hashes a single value with [`FxHasher`] from the fixed seed.
///
/// Deterministic across runs and platforms — suitable for structural
/// fingerprints that end up in cache keys or test snapshots.
pub fn fx_hash_one<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice: the canonical streaming digest used for
/// transcript fingerprints and on-disk snapshot checksums.
///
/// Unlike [`FxHasher`] (word-at-a-time, tuned for interning tables),
/// this folds byte-by-byte, so it is stable under re-chunking: digesting
/// a file in one read or in many yields the same value. That makes it
/// the right choice wherever the digest is *externally visible* — event
/// logs compared across runs, snapshot files verified after a restart.
/// Not cryptographic; it detects corruption, not adversaries.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A resumable FNV-1a digest for callers that fold incrementally (e.g.
/// checksumming a snapshot while streaming it to disk). `Fnv64::new()`
/// then repeated [`Fnv64::update`] is byte-for-byte equivalent to one
/// [`fnv64`] call over the concatenation.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh digest at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest of everything folded so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = fx_hash_one(&(3u32, 7u32));
        let b = fx_hash_one(&(3u32, 7u32));
        assert_eq!(a, b);
        assert_ne!(a, fx_hash_one(&(7u32, 3u32)));
    }

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        m.reserve(16);
        for i in 0..100u32 {
            m.insert((i, i + 1), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(41, 42)), Some(&41));
        assert_eq!(m.get(&(42, 41)), None);
    }

    #[test]
    fn string_tail_disambiguation() {
        assert_ne!(fx_hash_one(&"ab"), fx_hash_one(&"ab\0"));
        assert_ne!(fx_hash_one(&"abcdefgh"), fx_hash_one(&"abcdefg"));
    }

    #[test]
    fn fnv64_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv64_streaming_matches_oneshot() {
        let data = b"the quick brown fox";
        let mut d = Fnv64::new();
        d.update(&data[..7]);
        d.update(&data[7..]);
        assert_eq!(d.finish(), fnv64(data));
    }

    #[test]
    fn set_operations() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
        assert!(s.contains(&9));
    }
}
