//! Peers as network daemons: the in-process [`Peer`] served over TCP.
//!
//! The paper's system (Sec. 7) is a daemon whose Schema Enforcement module
//! intercepts every exchange. [`NetPeer`] realizes that daemon on top of
//! `axml-net`: it plugs the peer's envelope handling in as the TCP
//! server's request handler, and [`RemotePeer`] is the client side —
//! invoking declared services and shipping documents (the Fig. 1
//! scenario) against a daemon across the wire, with enforcement on both
//! ends:
//!
//! * the **sender** rewrites parameters / documents into the agreed type
//!   before they leave ([`Peer::enforce_input`], safe rewriting against
//!   the exchange schema);
//! * the **receiver** re-verifies everything that arrives (the service
//!   handler's input/output enforcement; [`RECEIVE_METHOD`] validation
//!   against the receiving peer's own schema plus its
//!   [`InboundPolicy`](crate::InboundPolicy)).
//!
//! Enforcement failures travel as typed wire faults; [`wire_fault`] /
//! [`soap_fault`] give the 1:1 mapping between [`soap::Fault`] envelopes
//! and `axml-net` fault frames.

use crate::peer::{EnforceMode, Peer, PeerError};
use axml_core::invoke::{InvokeError, Invoker, RefusingInvoker};
use axml_core::rewrite::RewriteReport;
use axml_core::stream::{enforce_stream_to, enforce_stream_with, StreamOptions, StreamReport};
use axml_net::wire::{FaultCode, WireFault, CAP_CHUNKED};
use axml_net::{
    ClientConfig, ClientError, Handler, NetClient, NetServer, ServerConfig, ServerStats, Transport,
};
use axml_support::clock::Clock;
use axml_schema::{validate, validate_output_instance, Compiled, ITree};
use axml_services::soap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

/// Reserved method for peer-to-peer document shipping (the Fig. 1
/// exchange): parameter 1 is the document name, parameter 2 the document.
/// The receiving daemon verifies the document against its own schema and
/// inbound policy, then stores it in its repository under that name.
pub const RECEIVE_METHOD: &str = "axml.receive";

/// Maps a SOAP fault onto the typed fault frame `axml-net` puts on the
/// wire. Dotted sub-codes collapse onto the nearest wire code (e.g.
/// `Client.NoSuchService` → `Client`); the message keeps the detail.
pub fn wire_fault(f: &soap::Fault) -> WireFault {
    let wf = WireFault::new(FaultCode::from_soap_code(&f.code), f.message.clone());
    if f.retryable {
        wf.retryable()
    } else {
        wf
    }
}

/// Maps a wire fault frame back onto a SOAP fault (inverse of
/// [`wire_fault`] up to sub-code granularity).
pub fn soap_fault(f: &WireFault) -> soap::Fault {
    let sf = soap::Fault::new(f.code.as_soap_code(), f.message.clone());
    if f.retryable {
        sf.retryable()
    } else {
        sf
    }
}

fn transport(e: impl std::fmt::Display) -> PeerError {
    PeerError::Transport(e.to_string())
}

fn client_error(e: ClientError) -> PeerError {
    match e {
        ClientError::Fault(wf) => PeerError::Fault(soap_fault(&wf)),
        other => PeerError::Transport(other.to_string()),
    }
}

/// An Active XML peer served as a TCP daemon.
pub struct NetPeer {
    peer: Arc<Peer>,
    server: NetServer,
}

impl NetPeer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves the
    /// peer's declared services plus [`RECEIVE_METHOD`] over it.
    pub fn serve(
        peer: Arc<Peer>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<NetPeer, PeerError> {
        let handler = envelope_handler(Arc::clone(&peer));
        let server = NetServer::bind(addr, handler, config).map_err(transport)?;
        Ok(NetPeer { peer, server })
    }

    /// Like [`NetPeer::serve`], but over an explicit [`Transport`] and
    /// [`Clock`] — how tests serve a peer on an in-memory network.
    pub fn serve_with(
        peer: Arc<Peer>,
        net: &dyn Transport,
        endpoint: &str,
        clock: Arc<dyn Clock>,
        config: ServerConfig,
    ) -> Result<NetPeer, PeerError> {
        let handler = envelope_handler(Arc::clone(&peer));
        let server =
            NetServer::bind_with(net, endpoint, clock, handler, config).map_err(transport)?;
        Ok(NetPeer { peer, server })
    }

    /// The daemon's bound socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The daemon's bound endpoint, in the transport's notation.
    pub fn endpoint(&self) -> &str {
        self.server.endpoint()
    }

    /// The peer being served.
    pub fn peer(&self) -> &Arc<Peer> {
        &self.peer
    }

    /// The underlying server's counters.
    pub fn stats(&self) -> &ServerStats {
        self.server.stats()
    }

    /// Invokes a declared service on a remote daemon on behalf of the
    /// served peer (see [`RemotePeer::invoke_service`]).
    pub fn invoke_service(
        &self,
        remote: &RemotePeer,
        method: &str,
        params: &[ITree],
    ) -> Result<Vec<ITree>, PeerError> {
        remote.invoke_service(&self.peer, method, params)
    }

    /// Ships a document to a remote daemon under an agreed exchange
    /// schema (see [`RemotePeer::send_document`]).
    pub fn send_document(
        &self,
        remote: &RemotePeer,
        name: &str,
        doc: &ITree,
        exchange: &Arc<Compiled>,
    ) -> Result<(ITree, RewriteReport), PeerError> {
        remote.send_document(&self.peer, name, doc, exchange)
    }

    /// Ships a document to a remote daemon as a chunked wire transfer
    /// (see [`RemotePeer::send_document_chunked`]).
    pub fn send_document_chunked(
        &self,
        remote: &RemotePeer,
        name: &str,
        doc: &ITree,
        exchange: &Arc<Compiled>,
        chunk_bytes: usize,
    ) -> Result<StreamReport, PeerError> {
        remote.send_document_chunked(&self.peer, name, doc, exchange, chunk_bytes)
    }

    /// Graceful shutdown: stops the listener, joins every server thread,
    /// and reports any worker panic as a [`PeerError::Transport`].
    pub fn shutdown(self) -> Result<(), PeerError> {
        self.server.shutdown().map_err(transport)
    }
}

/// The peer's full server-side envelope handling (declared services plus
/// [`RECEIVE_METHOD`]) as an `axml-net` [`Handler`], so any server — the
/// threaded TCP daemon or the simulator's single-threaded in-memory peer —
/// serves exactly the same enforcement pipeline.
pub fn envelope_handler(peer: Arc<Peer>) -> Arc<dyn Handler> {
    Arc::new(PeerHandler { peer })
}

/// The served peer as an `axml-net` [`Handler`]: SOAP envelopes through
/// [`handle_net_envelope`], chunk-shipped documents through
/// [`receive_document_text`].
struct PeerHandler {
    peer: Arc<Peer>,
}

impl Handler for PeerHandler {
    fn handle(&self, id: u64, envelope: &str) -> Result<String, WireFault> {
        handle_net_envelope(&self.peer, id, envelope)
    }

    fn handle_document(&self, id: u64, name: &str, text: &str) -> Result<String, WireFault> {
        handle_net_document(&self.peer, id, name, text)
    }
}

/// The server side of one envelope: decode, dispatch, and turn peer
/// errors into typed wire faults. `rid` is the wire request id the
/// sender stamped on the frame; the receiver's `validate` span carries it
/// so one exchange can be followed across both processes.
fn handle_net_envelope(peer: &Peer, rid: u64, envelope: &str) -> Result<String, WireFault> {
    let mut sp = axml_obs::span("validate");
    sp.set("rid", rid);
    sp.set("peer", &peer.name);
    let result = handle_net_envelope_inner(peer, &mut sp, envelope);
    if let Err(fault) = &result {
        sp.fail(&fault.message);
    }
    result
}

fn handle_net_envelope_inner(
    peer: &Peer,
    sp: &mut axml_obs::SpanGuard,
    envelope: &str,
) -> Result<String, WireFault> {
    let message = soap::decode(envelope)
        .map_err(|e| WireFault::new(FaultCode::Client, format!("bad envelope: {e}")))?;
    match message {
        soap::Message::Request { method, params } if method == RECEIVE_METHOD => {
            sp.set("method", RECEIVE_METHOD);
            receive_document(peer, &params)
                .map(|name| soap::response(&[ITree::text(&name)]).to_xml())
                .map_err(|e| wire_fault(&e.to_fault()))
        }
        soap::Message::Request { method, params } => {
            sp.set("method", &method);
            peer.handle(&method, &params)
                .map(|result| soap::response(&result).to_xml())
                .map_err(|e| wire_fault(&e.to_fault()))
        }
        _ => Err(WireFault::new(
            FaultCode::Client,
            "expected a call request",
        )),
    }
}

/// The server side of one chunk-shipped document, span-wrapped like
/// [`handle_net_envelope`] so sender and receiver correlate through the
/// wire request id regardless of the shipping mode.
fn handle_net_document(peer: &Peer, rid: u64, name: &str, text: &str) -> Result<String, WireFault> {
    let mut sp = axml_obs::span("validate");
    sp.set("rid", rid);
    sp.set("peer", &peer.name);
    sp.set("method", RECEIVE_METHOD);
    sp.set("doc", name);
    let result = receive_document_text(peer, name, text)
        .map(|stored| soap::response(&[ITree::text(&stored)]).to_xml())
        .map_err(|e| wire_fault(&e.to_fault()));
    if let Err(fault) = &result {
        sp.fail(&fault.message);
    }
    result
}

/// Receiver side of a *chunked* Fig. 1 exchange: the document arrives as
/// raw XML text (chunked transfers carry no SOAP envelope — the name
/// rides in the `DocChunkStart` frame). Verification happens on the text
/// itself: in streaming mode the streaming enforcer with a refusing
/// invoker runs *before* any tree is built, so enforcement memory stays
/// at the stream engine's `peak_buffer_bytes` even for documents far
/// larger than the frame cap; the parse into the repository's [`ITree`]
/// form afterwards is the storage cost, not an enforcement cost.
pub fn receive_document_text(peer: &Peer, name: &str, text: &str) -> Result<String, PeerError> {
    if name.trim().is_empty() {
        return Err(PeerError::Enforcement(format!(
            "{RECEIVE_METHOD}: document name must be non-empty"
        )));
    }
    if peer.enforce.mode == EnforceMode::Streaming {
        let opts = StreamOptions {
            k: peer.enforce.k,
            cache: Some(peer.enforce.cache.clone()),
            ..StreamOptions::default()
        };
        enforce_stream_with(&peer.compiled, text, &opts, &mut RefusingInvoker)
            .map_err(|e| PeerError::Enforcement(e.to_string()))?;
    }
    let doc = axml_xml::parse_document(text)
        .map_err(|e| PeerError::Enforcement(format!("chunked document: {e}")))
        .and_then(|d| ITree::from_xml(&d.root).map_err(PeerError::Enforcement))?;
    if peer.enforce.mode != EnforceMode::Streaming {
        validate(&doc, &peer.compiled).map_err(|e| PeerError::Enforcement(e.to_string()))?;
    }
    peer.inbound.check(std::slice::from_ref(&doc))?;
    peer.repository.store(name, doc);
    axml_obs::global().counter("peer.received_total").inc();
    Ok(name.to_owned())
}

/// Receiver side of the Fig. 1 exchange: verify the shipped document
/// against this peer's schema and inbound policy, then store it.
fn receive_document(peer: &Peer, params: &[ITree]) -> Result<String, PeerError> {
    let [name, doc] = params else {
        return Err(PeerError::Enforcement(format!(
            "{RECEIVE_METHOD} expects (name, document), got {} parameters",
            params.len()
        )));
    };
    let ITree::Text(name) = name else {
        return Err(PeerError::Enforcement(format!(
            "{RECEIVE_METHOD}: document name must be text"
        )));
    };
    if name.trim().is_empty() {
        return Err(PeerError::Enforcement(format!(
            "{RECEIVE_METHOD}: document name must be non-empty"
        )));
    }
    // Receiver-side Schema Enforcement (verify step): the document must
    // already be an instance of the receiver's schema — rewriting is the
    // *sender's* burden under the agreed exchange schema. In streaming
    // mode the verify is the streaming enforcer with a refusing invoker:
    // a rewrite with zero invocations is the identity, so it succeeds
    // exactly on valid documents, while keeping the daemon's memory
    // bounded and its `enforce.stream.*` metrics live.
    match (peer.enforce.mode, doc) {
        (EnforceMode::Streaming, ITree::Elem { .. }) => {
            let text = axml_xml::element_to_string(
                &doc.to_xml(),
                &axml_xml::WriteOptions::compact(),
            );
            let opts = StreamOptions {
                k: peer.enforce.k,
                cache: Some(peer.enforce.cache.clone()),
                ..StreamOptions::default()
            };
            enforce_stream_with(&peer.compiled, &text, &opts, &mut RefusingInvoker)
                .map_err(|e| PeerError::Enforcement(e.to_string()))?;
        }
        _ => validate(doc, &peer.compiled).map_err(|e| PeerError::Enforcement(e.to_string()))?,
    }
    peer.inbound.check(std::slice::from_ref(doc))?;
    peer.repository.store(name, doc.clone());
    axml_obs::global().counter("peer.received_total").inc();
    Ok(name.clone())
}

/// A client handle to a remote peer daemon.
pub struct RemotePeer {
    client: NetClient,
}

impl RemotePeer {
    /// Creates a handle for the daemon at `addr` (connections are dialed
    /// lazily and pooled).
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<RemotePeer, PeerError> {
        Ok(RemotePeer {
            client: NetClient::new(addr, config).map_err(client_error)?,
        })
    }

    /// Wraps an already-built [`NetClient`] — e.g. one dialing an
    /// in-memory transport via [`NetClient::with_transport`].
    pub fn from_client(client: NetClient) -> RemotePeer {
        RemotePeer { client }
    }

    /// The remote daemon's address.
    pub fn addr(&self) -> SocketAddr {
        self.client.remote_addr()
    }

    /// The underlying transport client.
    pub fn client(&self) -> &NetClient {
        &self.client
    }

    /// Invokes a declared service on the remote daemon on behalf of
    /// `caller`, with enforcement on both sides of the wire: `caller`
    /// rewrites the parameters into the service's input type before
    /// sending, and screens/validates the result against the declared
    /// output type and its inbound policy.
    pub fn invoke_service(
        &self,
        caller: &Peer,
        method: &str,
        params: &[ITree],
    ) -> Result<Vec<ITree>, PeerError> {
        let rid = axml_obs::next_request_id();
        let mut sp = axml_obs::span("invoke");
        sp.set("rid", rid);
        sp.set("method", method);
        let result = self.invoke_service_inner(caller, rid, method, params);
        if let Err(e) = &result {
            sp.fail(e);
        }
        result
    }

    fn invoke_service_inner(
        &self,
        caller: &Peer,
        rid: u64,
        method: &str,
        params: &[ITree],
    ) -> Result<Vec<ITree>, PeerError> {
        let params = caller.enforce_input(method, params)?;
        let envelope = soap::request(method, &params).to_xml();
        let reply = self.client.call_with_id(rid, &envelope).map_err(client_error)?;
        match soap::decode(&reply).map_err(PeerError::Transport)? {
            soap::Message::Response { result } => {
                let sig = caller.compiled.sig_of(method);
                validate_output_instance(&result, &sig.output_dfa, &caller.compiled)
                    .map_err(|e| PeerError::Enforcement(e.to_string()))?;
                caller.inbound.check(&result)?;
                Ok(result)
            }
            soap::Message::Fault(fault) => Err(PeerError::Fault(fault)),
            soap::Message::Request { .. } => {
                Err(PeerError::Transport("unexpected request".to_owned()))
            }
        }
    }

    /// Ships a document to the remote daemon under an agreed exchange
    /// schema — Fig. 1 over TCP. `caller` first materializes exactly what
    /// the exchange schema requires (safe rewriting through its own
    /// registry), then sends the conforming document via
    /// [`RECEIVE_METHOD`]; the receiver re-verifies and stores it.
    /// Returns the document as sent plus the rewrite report.
    pub fn send_document(
        &self,
        caller: &Peer,
        name: &str,
        doc: &ITree,
        exchange: &Arc<Compiled>,
    ) -> Result<(ITree, RewriteReport), PeerError> {
        let mut invoker = caller.registry.invoker(None);
        self.send_document_with(caller, name, doc, exchange, &mut invoker)
    }

    /// Like [`RemotePeer::send_document`], but materializing embedded
    /// calls through an explicit [`Invoker`] — e.g. a [`NetInvoker`]
    /// pointed at a *third* daemon that provides the services, the full
    /// three-party Fig. 1 scenario.
    pub fn send_document_with(
        &self,
        caller: &Peer,
        name: &str,
        doc: &ITree,
        exchange: &Arc<Compiled>,
        invoker: &mut dyn Invoker,
    ) -> Result<(ITree, RewriteReport), PeerError> {
        // One span tree per exchange, correlated with the receiver's
        // `validate` span through the wire request id.
        let rid = axml_obs::next_request_id();
        let metrics = axml_obs::global();
        metrics.counter("peer.exchanges_total").inc();
        let mut ex = axml_obs::span("exchange");
        ex.set("rid", rid);
        ex.set("doc", name);
        let result = self.ship_document(caller, rid, name, doc, exchange, invoker);
        if let Err(e) = &result {
            metrics.counter("peer.exchange_faults_total").inc();
            ex.fail(e);
        }
        result
    }

    /// Sender-side whole-document enforcement, honoring the caller's
    /// [`EnforceMode`]: element documents stream through
    /// [`enforce_stream_with`] (warming the caller's solver cache and its
    /// `enforce.stream.*` metrics), everything else — and
    /// [`EnforceMode::Dom`] — takes the DOM pipeline. Both produce the
    /// same document.
    fn enforce_outbound(
        caller: &Peer,
        exchange: &Compiled,
        doc: &ITree,
        invoker: &mut dyn Invoker,
    ) -> Result<(ITree, RewriteReport), PeerError> {
        if caller.enforce.mode == EnforceMode::Streaming && matches!(doc, ITree::Elem { .. }) {
            let text = axml_xml::element_to_string(
                &doc.to_xml(),
                &axml_xml::WriteOptions::compact(),
            );
            let opts = StreamOptions {
                k: caller.enforce.k,
                cache: Some(caller.enforce.cache.clone()),
                ..StreamOptions::default()
            };
            let (out, rep) = enforce_stream_with(exchange, &text, &opts, invoker)
                .map_err(PeerError::from)?;
            let sent = axml_xml::parse_document(&out)
                .map_err(|e| PeerError::Enforcement(format!("re-parsing enforced output: {e}")))
                .and_then(|d| ITree::from_xml(&d.root).map_err(PeerError::Enforcement))?;
            return Ok((sent, rep.rewrite));
        }
        axml_core::rewrite::enforce(exchange, doc, caller.enforce.k, invoker)
            .map_err(PeerError::from)
    }

    /// Ships a document as a *chunked* wire transfer — the path for
    /// documents larger than the frame cap (or than sender RAM would
    /// allow as one enforced string). The enforced output streams from
    /// [`enforce_stream_to`] straight into `DocChunk` frames of
    /// `chunk_bytes` bytes each, so the sender's peak memory is
    /// O(`chunk_bytes` + the stream engine's `peak_buffer_bytes`) beyond
    /// the input text itself. Against a pre-capability peer this falls
    /// back transparently to the single-frame [`RemotePeer::send_document`]
    /// pipeline (the returned report has `fell_back` set and carries the
    /// DOM rewrite report).
    pub fn send_document_chunked(
        &self,
        caller: &Peer,
        name: &str,
        doc: &ITree,
        exchange: &Arc<Compiled>,
        chunk_bytes: usize,
    ) -> Result<StreamReport, PeerError> {
        let mut invoker = caller.registry.invoker(None);
        self.send_document_chunked_with(caller, name, doc, exchange, chunk_bytes, &mut invoker)
    }

    /// Like [`RemotePeer::send_document_chunked`], but materializing
    /// embedded calls through an explicit [`Invoker`].
    pub fn send_document_chunked_with(
        &self,
        caller: &Peer,
        name: &str,
        doc: &ITree,
        exchange: &Arc<Compiled>,
        chunk_bytes: usize,
        invoker: &mut dyn Invoker,
    ) -> Result<StreamReport, PeerError> {
        let rid = axml_obs::next_request_id();
        let metrics = axml_obs::global();
        metrics.counter("peer.exchanges_total").inc();
        let mut ex = axml_obs::span("exchange");
        ex.set("rid", rid);
        ex.set("doc", name);
        ex.set("chunk_bytes", chunk_bytes);
        let result =
            self.ship_document_chunked(caller, rid, name, doc, exchange, chunk_bytes, invoker);
        if let Err(e) = &result {
            metrics.counter("peer.exchange_faults_total").inc();
            ex.fail(e);
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn ship_document_chunked(
        &self,
        caller: &Peer,
        rid: u64,
        name: &str,
        doc: &ITree,
        exchange: &Arc<Compiled>,
        chunk_bytes: usize,
        invoker: &mut dyn Invoker,
    ) -> Result<StreamReport, PeerError> {
        let caps = self.client.server_caps().map_err(client_error)?;
        if caps & CAP_CHUNKED == 0 {
            // An old peer: ship the enforced document as one Request
            // frame instead — same enforcement, same reply semantics.
            let (_, rewrite) = self.ship_document(caller, rid, name, doc, exchange, invoker)?;
            let mut report = StreamReport::default();
            report.fell_back = true;
            report.rewrite = rewrite;
            return Ok(report);
        }
        let text =
            axml_xml::element_to_string(&doc.to_xml(), &axml_xml::WriteOptions::compact());
        let opts = StreamOptions {
            k: caller.enforce.k,
            cache: Some(caller.enforce.cache.clone()),
            ..StreamOptions::default()
        };
        let mut report: Option<StreamReport> = None;
        let mut enforce_err: Option<PeerError> = None;
        let reply = {
            let mut sp = axml_obs::span("ship");
            sp.set("rid", rid);
            sp.set("chunk_bytes", chunk_bytes);
            let outcome =
                self.client
                    .send_document_chunked(Some(rid), name, chunk_bytes, |sink| {
                        // Enforcement streams into the chunk sink; its
                        // typed error is captured here because the wire
                        // layer only understands io errors.
                        match enforce_stream_to(exchange, &text, &opts, invoker, sink) {
                            Ok(rep) => {
                                report = Some(rep);
                                Ok(())
                            }
                            Err(e) => {
                                enforce_err = Some(PeerError::from(e));
                                Err(std::io::Error::new(
                                    std::io::ErrorKind::Other,
                                    "enforcement failed",
                                ))
                            }
                        }
                    });
            match outcome {
                Ok(reply) => reply,
                Err(e) => {
                    if let Some(pe) = enforce_err {
                        sp.fail(&pe);
                        return Err(pe);
                    }
                    sp.fail(&e);
                    return Err(client_error(e));
                }
            }
        };
        match soap::decode(&reply).map_err(PeerError::Transport)? {
            soap::Message::Response { .. } => Ok(report.unwrap_or_default()),
            soap::Message::Fault(fault) => Err(PeerError::Fault(fault)),
            soap::Message::Request { .. } => {
                Err(PeerError::Transport("unexpected request".to_owned()))
            }
        }
    }

    fn ship_document(
        &self,
        caller: &Peer,
        rid: u64,
        name: &str,
        doc: &ITree,
        exchange: &Arc<Compiled>,
        invoker: &mut dyn Invoker,
    ) -> Result<(ITree, RewriteReport), PeerError> {
        let (sent, report) = {
            let mut sp = axml_obs::span("enforce");
            sp.set("rid", rid);
            match Self::enforce_outbound(caller, exchange, doc, invoker) {
                Ok(v) => v,
                Err(e) => {
                    sp.fail(&e);
                    return Err(e);
                }
            }
        };
        let params = [ITree::text(name), sent.clone()];
        let envelope = soap::request(RECEIVE_METHOD, &params).to_xml();
        let reply = {
            let mut sp = axml_obs::span("ship");
            sp.set("rid", rid);
            sp.set("bytes", envelope.len());
            match self.client.call_with_id(rid, &envelope) {
                Ok(r) => r,
                Err(e) => {
                    sp.fail(&e);
                    return Err(client_error(e));
                }
            }
        };
        match soap::decode(&reply).map_err(PeerError::Transport)? {
            soap::Message::Response { .. } => Ok((sent, report)),
            soap::Message::Fault(fault) => Err(PeerError::Fault(fault)),
            soap::Message::Request { .. } => {
                Err(PeerError::Transport("unexpected request".to_owned()))
            }
        }
    }
}

/// An [`Invoker`] that materializes embedded calls by invoking a remote
/// daemon's declared services over TCP — the network analogue of
/// [`RemoteInvoker`](crate::RemoteInvoker).
pub struct NetInvoker<'a> {
    /// The calling peer (enforcement + policy side).
    pub caller: &'a Peer,
    /// The daemon providing the services.
    pub remote: &'a RemotePeer,
}

impl Invoker for NetInvoker<'_> {
    fn invoke(&mut self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        self.remote
            .invoke_service(self.caller, function, params)
            .map_err(|e| InvokeError {
                function: function.to_owned(),
                message: e.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::Query;
    use axml_schema::{NoOracle, Schema};
    use axml_services::{Registry, ServiceDef};

    fn vocab() -> Schema {
        Schema::builder()
            .element("listings", "exhibit*")
            .element("exhibit", "title.date")
            .data_element("title")
            .data_element("date")
            .function("Get_Exhibits", "data", "exhibit*")
            .build()
            .unwrap()
    }

    fn provider() -> Arc<Peer> {
        let compiled = Arc::new(Compiled::new(vocab(), &NoOracle).unwrap());
        let peer = Arc::new(Peer::new(
            "listings.example.org",
            compiled,
            Arc::new(Registry::new()),
        ));
        peer.repository.store(
            "program",
            ITree::elem(
                "listings",
                vec![ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
                )],
            ),
        );
        peer.declare(
            ServiceDef::new("Get_Exhibits", "data", "exhibit*"),
            Query::Children("program".to_owned()),
        );
        peer
    }

    #[test]
    fn fault_mapping_roundtrips_code_and_retryable() {
        let busy = soap::Fault::new("Server.Busy", "queue full").retryable();
        let wf = wire_fault(&busy);
        assert_eq!(wf.code, FaultCode::Busy);
        assert!(wf.retryable);
        assert_eq!(soap_fault(&wf), busy);
        // Dotted sub-codes collapse to the base wire code.
        let no_such = soap::Fault::new("Client.NoSuchService", "no service 'X'");
        assert_eq!(wire_fault(&no_such).code, FaultCode::Client);
        assert!(!wire_fault(&no_such).retryable);
    }

    #[test]
    fn serve_and_invoke_over_loopback() {
        let peer = provider();
        let daemon = NetPeer::serve(Arc::clone(&peer), "127.0.0.1:0", ServerConfig::default())
            .unwrap();
        let remote = RemotePeer::connect(daemon.local_addr(), ClientConfig::default()).unwrap();
        let result = remote
            .invoke_service(&peer, "Get_Exhibits", &[ITree::text("all")])
            .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].name(), Some("exhibit"));
        // An undeclared service comes back as a typed SOAP fault.
        let err = remote
            .invoke_service(&peer, "Get_Nothing", &[])
            .unwrap_err();
        assert!(
            matches!(err, PeerError::Fault(ref f) if f.code == "Client" && !f.retryable),
            "{err}"
        );
        daemon.shutdown().unwrap();
    }

    #[test]
    fn receive_document_verifies_then_stores() {
        let peer = provider();
        let doc = ITree::elem(
            "exhibit",
            vec![ITree::data("title", "Rodin"), ITree::data("date", "Tue")],
        );
        let name = receive_document(
            &peer,
            &[ITree::text("inbox-exhibit"), doc.clone()],
        )
        .unwrap();
        assert_eq!(name, "inbox-exhibit");
        assert_eq!(peer.repository.load("inbox-exhibit").unwrap(), doc);
        // A document outside the receiver's schema is refused.
        let bad = ITree::elem("exhibit", vec![ITree::data("title", "No date")]);
        let err = receive_document(&peer, &[ITree::text("bad"), bad]).unwrap_err();
        assert!(matches!(err, PeerError::Enforcement(_)), "{err}");
        // Malformed parameter lists are refused, not panicked on.
        assert!(receive_document(&peer, &[]).is_err());
        assert!(receive_document(&peer, &[ITree::text(" "), ITree::text("x")]).is_err());
    }
}
