//! Active XML peers and the Schema Enforcement module (Sec. 7).
//!
//! A peer stores intensional documents, declares Web services over them,
//! and talks SOAP with the rest of the world. Its **Schema Enforcement
//! module** sits on both directions of every exchange:
//!
//! * outbound call parameters are (i) verified against the callee's
//!   WSDL_int description, (ii) rewritten into the required structure when
//!   they do not conform, and (iii) rejected with an error when rewriting
//!   fails;
//! * the data a declared service is about to return goes through the same
//!   three steps against the service's declared output type;
//! * inbound results can additionally be screened by a receiver
//!   [`InboundPolicy`] (the Sec. 1 capability/security considerations —
//!   e.g. a receiver that cannot or will not invoke embedded calls).

use crate::repository::Repository;
use axml_core::invoke::{InvokeError, Invoker};
use axml_core::rewrite::{RewriteError, RewriteReport, Rewriter};
use axml_core::solve_cache::SolveCache;
use axml_schema::{validate_output_instance, Compiled, ITree};
use axml_services::{soap, Registry, ServiceDef};
use axml_support::sync::channel::{bounded, unbounded, Receiver, Sender};
use axml_support::sync::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// What a declared service computes, over the peer's repository.
#[derive(Debug, Clone)]
pub enum Query {
    /// Return the stored document itself.
    Document(String),
    /// Return the children forest of the stored document's root.
    Children(String),
    /// Return a fixed forest.
    Const(Vec<ITree>),
    /// Evaluate a [`axml_schema::PathQuery`] over a stored document and
    /// return the matches.
    Path {
        /// Repository document name.
        doc: String,
        /// The path expression (see `axml_schema::path`).
        path: axml_schema::PathQuery,
    },
}

/// Receiver-side screening of exchanged data (Sec. 1: capabilities and
/// security).
#[derive(Debug, Clone, Default)]
pub enum InboundPolicy {
    /// Accept anything (a full Active XML peer).
    #[default]
    AcceptAll,
    /// Refuse documents containing *any* embedded call (a plain browser).
    RejectFunctions,
    /// Refuse calls to services outside this trusted list.
    AllowOnly(Vec<String>),
}

impl InboundPolicy {
    /// Checks a forest against the policy.
    pub fn check(&self, forest: &[ITree]) -> Result<(), PeerError> {
        let mut offending: Option<String> = None;
        for t in forest {
            t.visit(&mut |n| {
                if let ITree::Func(f) = n {
                    let ok = match self {
                        InboundPolicy::AcceptAll => true,
                        InboundPolicy::RejectFunctions => false,
                        InboundPolicy::AllowOnly(list) => list.contains(&f.name),
                    };
                    if !ok && offending.is_none() {
                        offending = Some(f.name.clone());
                    }
                }
            });
        }
        match offending {
            Some(name) => Err(PeerError::PolicyViolation { function: name }),
            None => Ok(()),
        }
    }
}

/// Errors raised by peer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerError {
    /// The requested service is not declared by the remote peer.
    NoSuchService(String),
    /// Schema enforcement failed.
    Enforcement(String),
    /// A service invocation failed.
    Invoke(InvokeError),
    /// The inbound policy refused the data.
    PolicyViolation {
        /// The offending embedded call.
        function: String,
    },
    /// The remote peer answered with a SOAP fault.
    Fault(soap::Fault),
    /// Transport failure (peer gone).
    Transport(String),
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::NoSuchService(s) => write!(f, "no declared service '{s}'"),
            PeerError::Enforcement(m) => write!(f, "schema enforcement failed: {m}"),
            PeerError::Invoke(e) => write!(f, "{e}"),
            PeerError::PolicyViolation { function } => {
                write!(f, "inbound policy refuses embedded call '{function}'")
            }
            PeerError::Fault(fault) => write!(f, "{fault}"),
            PeerError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for PeerError {}

impl From<RewriteError> for PeerError {
    fn from(e: RewriteError) -> Self {
        PeerError::Enforcement(e.to_string())
    }
}

impl PeerError {
    /// The typed SOAP fault this error is reported as to remote callers.
    /// Only transport-level conditions are flagged retryable — a request
    /// the enforcement module rejected will be rejected again.
    pub fn to_fault(&self) -> soap::Fault {
        match self {
            PeerError::NoSuchService(_) => soap::Fault::new("Client.NoSuchService", self.to_string()),
            PeerError::Enforcement(_) => soap::Fault::new("Client.Enforcement", self.to_string()),
            PeerError::PolicyViolation { .. } => soap::Fault::new("Client.Policy", self.to_string()),
            PeerError::Invoke(_) => soap::Fault::new("Server.Invoke", self.to_string()),
            PeerError::Fault(f) => f.clone(),
            PeerError::Transport(_) => {
                soap::Fault::new("Server.Transport", self.to_string()).retryable()
            }
        }
    }
}

struct Exported {
    def: ServiceDef,
    query: Query,
}

/// Which pipeline the enforcement module drives over a whole document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnforceMode {
    /// Drive enforcement off the pull parser: conforming regions stream
    /// straight to the output and only call-bearing subtrees are
    /// materialized (`axml_core::stream`). Falls back to the DOM pipeline
    /// on any anomaly, with byte-identical results — safe as a default.
    #[default]
    Streaming,
    /// Materialize the whole document before rewriting.
    Dom,
}

/// The Schema Enforcement module's tuning knobs, grouped in one struct
/// so a new knob extends this type instead of growing [`Peer`] another
/// parallel field (rewriting depth, subtree workers, solver cache).
#[derive(Clone)]
pub struct EnforceOptions {
    /// Rewriting depth used by the enforcement module (Sec. 5's `k`).
    pub k: u32,
    /// Worker threads used by [`Peer::send_document`] to rewrite
    /// independent root subtrees concurrently (1 = sequential).
    pub workers: usize,
    /// Streaming or DOM whole-document enforcement.
    pub mode: EnforceMode,
    /// The solver cache shared by every rewriter the peer creates.
    /// Cloning an [`EnforceOptions`] shares the cache (it is `Arc`ed).
    pub cache: SolveCache,
}

impl Default for EnforceOptions {
    fn default() -> Self {
        EnforceOptions {
            k: 2,
            workers: 1,
            mode: EnforceMode::default(),
            cache: SolveCache::default(),
        }
    }
}

impl std::fmt::Debug for EnforceOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnforceOptions")
            .field("k", &self.k)
            .field("workers", &self.workers)
            .field("mode", &self.mode)
            .finish()
    }
}

/// An Active XML peer.
pub struct Peer {
    /// The peer's name.
    pub name: String,
    /// Shared web vocabulary + WSDL_int of every known service, compiled.
    pub compiled: Arc<Compiled>,
    /// The services this peer can itself call.
    pub registry: Arc<Registry>,
    /// Its document repository.
    pub repository: Repository,
    /// Receiver-side screening policy.
    pub inbound: InboundPolicy,
    /// The Schema Enforcement module's knobs.
    pub enforce: EnforceOptions,
    exported: RwLock<HashMap<String, Exported>>,
}

impl Peer {
    /// Creates a peer over a shared compiled vocabulary and a registry of
    /// callable services.
    pub fn new(name: &str, compiled: Arc<Compiled>, registry: Arc<Registry>) -> Self {
        Peer {
            name: name.to_owned(),
            compiled,
            registry,
            repository: Repository::new(),
            inbound: InboundPolicy::AcceptAll,
            enforce: EnforceOptions::default(),
            exported: RwLock::new(HashMap::new()),
        }
    }

    /// Replaces the whole knob set at once.
    pub fn with_enforce(mut self, options: EnforceOptions) -> Self {
        self.enforce = options;
        self.enforce.workers = self.enforce.workers.max(1);
        self
    }

    /// Sets the enforcement module's rewriting depth.
    pub fn with_k(mut self, k: u32) -> Self {
        self.enforce.k = k;
        self
    }

    /// Replaces the enforcement module's solver cache (e.g. to bound its
    /// capacity differently, or to share one cache between peers).
    pub fn with_solve_cache(mut self, cache: SolveCache) -> Self {
        self.enforce.cache = cache;
        self
    }

    /// Sets the [`Peer::send_document`] worker count.
    pub fn with_enforce_workers(mut self, workers: usize) -> Self {
        self.enforce.workers = workers.max(1);
        self
    }

    /// Selects streaming or DOM whole-document enforcement.
    pub fn with_enforce_mode(mut self, mode: EnforceMode) -> Self {
        self.enforce.mode = mode;
        self
    }

    /// The solver cache shared by every rewriter this peer creates.
    pub fn solve_cache(&self) -> &SolveCache {
        &self.enforce.cache
    }

    /// Warm-starts the peer from a persistent [`Store`]: loads the
    /// solver-cache snapshot captured under this peer's schema
    /// fingerprint (if one is on disk and intact) into the enforcement
    /// module's cache. A missing, torn, or foreign-schema snapshot is a
    /// cold start, never an error.
    ///
    /// [`Store`]: axml_store::Store
    pub fn warm_start(&self, store: &axml_store::Store) -> axml_store::LoadReport {
        store.load_cache(&self.enforce.cache, self.compiled.fingerprint())
    }

    /// Persists the enforcement module's solver cache into `store`, so
    /// the next [`Peer::warm_start`] under the same schema resumes at
    /// warm hit-rates. Returns the snapshot size in bytes.
    pub fn persist_warm_state(&self, store: &axml_store::Store) -> std::io::Result<u64> {
        store.persist_cache(&self.enforce.cache, self.compiled.fingerprint())
    }

    /// Sets the inbound policy.
    pub fn with_inbound(mut self, policy: InboundPolicy) -> Self {
        self.inbound = policy;
        self
    }

    /// Declares a service over the repository. Its `def` must name a
    /// function known to the shared vocabulary (so both sides agree on the
    /// signature — the paper's common-definitions assumption).
    pub fn declare(&self, def: ServiceDef, query: Query) {
        self.exported
            .write()
            .insert(def.name.clone(), Exported { def, query });
    }

    /// Withdraws a previously declared service (registry churn: the
    /// provider stops serving mid-exchange). Later calls fail with the
    /// typed [`PeerError::NoSuchService`]; re-declaring restores it.
    /// Returns whether the service was declared.
    pub fn retract(&self, name: &str) -> bool {
        self.exported.write().remove(name).is_some()
    }

    /// WSDL_int descriptions of the peer's declared services.
    pub fn interface(&self) -> Vec<ServiceDef> {
        let mut out: Vec<ServiceDef> = self
            .exported
            .read()
            .values()
            .map(|e| e.def.clone())
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Handles one decoded request locally: evaluate the declared service
    /// and run the enforcement module on the result.
    pub fn handle(&self, method: &str, params: &[ITree]) -> Result<Vec<ITree>, PeerError> {
        let (query, def) = {
            let exported = self.exported.read();
            let e = exported
                .get(method)
                .ok_or_else(|| PeerError::NoSuchService(method.to_owned()))?;
            (e.query.clone(), e.def.clone())
        };
        // Inbound enforcement: parameters must be an input instance.
        let params = self.enforce_input(&def.name, params)?;
        let result = match query {
            Query::Document(name) => vec![self
                .repository
                .load(&name)
                .map_err(|e| PeerError::Enforcement(e.to_string()))?],
            Query::Children(name) => self
                .repository
                .load(&name)
                .map_err(|e| PeerError::Enforcement(e.to_string()))?
                .children()
                .to_vec(),
            Query::Const(forest) => forest,
            Query::Path { doc, path } => {
                let tree = self
                    .repository
                    .load(&doc)
                    .map_err(|e| PeerError::Enforcement(e.to_string()))?;
                path.select_cloned(&tree)
            }
        };
        let _ = params; // parameters select nothing in these simple queries
                        // Outbound enforcement on the returned data (Sec. 7 steps i–iii).
        self.enforce_output(&def.name, &result)
    }

    /// Enforcement of a forest against `τ_in(function)`: verify, else
    /// rewrite (materializing through this peer's registry), else error.
    pub fn enforce_input(&self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, PeerError> {
        let sig = self.compiled.sig_of(function);
        if validate_output_instance(params, &sig.input_dfa, &self.compiled).is_ok() {
            return Ok(params.to_vec());
        }
        let mut rewriter = Rewriter::new(&self.compiled)
            .with_k(self.enforce.k)
            .with_cache(&self.enforce.cache);
        let mut invoker = self.registry.invoker(None);
        let (out, _report) = rewriter.rewrite_to_input_type(function, params, &mut invoker)?;
        Ok(out)
    }

    /// Enforcement of a forest against `τ_out(function)`.
    pub fn enforce_output(
        &self,
        function: &str,
        result: &[ITree],
    ) -> Result<Vec<ITree>, PeerError> {
        let sig = self.compiled.sig_of(function);
        if validate_output_instance(result, &sig.output_dfa, &self.compiled).is_ok() {
            return Ok(result.to_vec());
        }
        let mut rewriter = Rewriter::new(&self.compiled)
            .with_k(self.enforce.k)
            .with_cache(&self.enforce.cache);
        let mut invoker = self.registry.invoker(None);
        let (out, _report) = rewriter.rewrite_to_output_type(function, result, &mut invoker)?;
        Ok(out)
    }

    /// Spawns a server thread speaking SOAP envelopes over channels.
    pub fn serve(self: &Arc<Self>) -> PeerServer {
        let (tx, rx): (Sender<(String, Sender<String>)>, Receiver<_>) = unbounded();
        let (done_tx, done_rx) = bounded(1);
        let peer = Arc::clone(self);
        let handle = std::thread::spawn(move || {
            while let Ok((request, reply)) = rx.recv() {
                let response = peer.handle_envelope(&request);
                // A gone client is not the server's problem.
                let _ = reply.send(response);
            }
            // Signals a clean exit; a panic drops the sender instead, which
            // shutdown() observes as a disconnect.
            let _ = done_tx.send(());
        });
        PeerServer {
            requests: tx,
            interface: self.interface(),
            handle: Some(handle),
            done: Mutex::new(done_rx),
        }
    }

    /// Handles one XML request envelope, returning the XML reply envelope
    /// (response or typed fault) — the server side of every transport.
    pub fn handle_envelope(&self, request: &str) -> String {
        let message = match soap::decode(request) {
            Ok(m) => m,
            Err(e) => return soap::fault("Client", &format!("bad envelope: {e}")).to_xml(),
        };
        match message {
            soap::Message::Request { method, params } => match self.handle(&method, &params) {
                Ok(result) => soap::response(&result).to_xml(),
                Err(e) => soap::fault_envelope(&e.to_fault()).to_xml(),
            },
            _ => soap::fault("Client", "expected a call request").to_xml(),
        }
    }

    /// Calls a service on a remote peer, with client-side enforcement:
    /// parameters are rewritten to the callee's input type before sending,
    /// and the response is screened by this peer's inbound policy and
    /// validated against the declared output type.
    pub fn call_remote(
        &self,
        server: &PeerServer,
        method: &str,
        params: &[ITree],
    ) -> Result<Vec<ITree>, PeerError> {
        if !server.interface.iter().any(|d| d.name == method) {
            return Err(PeerError::NoSuchService(method.to_owned()));
        }
        // Outbound enforcement of the parameters.
        let params = self.enforce_input(method, params)?;
        let envelope = soap::request(method, &params).to_xml();
        let (reply_tx, reply_rx) = bounded(1);
        server
            .requests
            .send((envelope, reply_tx))
            .map_err(|e| PeerError::Transport(e.to_string()))?;
        let response = reply_rx
            .recv()
            .map_err(|e| PeerError::Transport(e.to_string()))?;
        match soap::decode(&response).map_err(PeerError::Transport)? {
            soap::Message::Response { result } => {
                // Receiver-side checks: type and policy.
                let sig = self.compiled.sig_of(method);
                validate_output_instance(&result, &sig.output_dfa, &self.compiled)
                    .map_err(|e| PeerError::Enforcement(e.to_string()))?;
                self.inbound.check(&result)?;
                Ok(result)
            }
            soap::Message::Fault(fault) => Err(PeerError::Fault(fault)),
            soap::Message::Request { .. } => {
                Err(PeerError::Transport("unexpected request".to_owned()))
            }
        }
    }

    /// Sends a *document* to another peer under an agreed exchange schema:
    /// the Fig. 1 scenario. The sender materializes what the exchange
    /// compiled schema requires (safe rewriting), then ships the XML.
    pub fn send_document(
        &self,
        doc: &ITree,
        exchange: &Arc<Compiled>,
        receiver_policy: &InboundPolicy,
    ) -> Result<(ITree, RewriteReport), PeerError> {
        fn boxed(registry: &Registry) -> Box<dyn Invoker + Send + '_> {
            Box::new(registry.invoker(None))
        }
        let registry = &*self.registry;
        let mut make_invoker = move || boxed(registry);
        let (sent, report) = axml_core::rewrite::enforce_with(
            exchange,
            doc,
            self.enforce.k,
            &self.enforce.cache,
            self.enforce.workers,
            &mut make_invoker,
        )?;
        receiver_policy.check(std::slice::from_ref(&sent))?;
        Ok((sent, report))
    }
}

/// Handle to a running peer server.
pub struct PeerServer {
    requests: Sender<(String, Sender<String>)>,
    /// WSDL_int interface advertised by the serving peer.
    pub interface: Vec<ServiceDef>,
    handle: Option<JoinHandle<()>>,
    // Behind a Mutex only so `PeerServer` stays shareable (`Sync`).
    done: Mutex<Receiver<()>>,
}

/// How long [`PeerServer::shutdown`] waits for the server thread before
/// declaring it wedged instead of blocking forever.
const SHUTDOWN_WAIT: std::time::Duration = std::time::Duration::from_secs(10);

impl PeerServer {
    /// Stops the server thread *deterministically*: closes the request
    /// channel, waits (bounded) for the serve loop to drain, and joins the
    /// thread. A panic inside the server surfaces as
    /// [`PeerError::Transport`] instead of being swallowed; a thread that
    /// does not stop within the bound is reported (and detached) rather
    /// than hanging the caller.
    pub fn shutdown(mut self) -> Result<(), PeerError> {
        self.stop()
    }

    fn stop(&mut self) -> Result<(), PeerError> {
        let Some(handle) = self.handle.take() else {
            return Ok(());
        };
        // Closing the channel ends the serve loop.
        let (tx, _rx) = unbounded();
        drop(std::mem::replace(&mut self.requests, tx));
        // Bounded wait: the loop signals `done` on clean exit and drops
        // the sender on panic — either way recv_timeout returns promptly.
        use axml_support::sync::channel::RecvTimeoutError;
        match self.done.lock().recv_timeout(SHUTDOWN_WAIT) {
            Ok(()) | Err(RecvTimeoutError::Disconnected) => match handle.join() {
                Ok(()) => Ok(()),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_owned());
                    // A worker panic is an observable event, not just a
                    // join-error string: count it and emit an error span.
                    axml_obs::global().counter("peer.panics_total").inc();
                    axml_obs::span("peer.panic").fail(&msg);
                    Err(PeerError::Transport(format!(
                        "peer server thread panicked: {msg}"
                    )))
                }
            },
            Err(RecvTimeoutError::Timeout) => Err(PeerError::Transport(format!(
                "peer server thread did not stop within {SHUTDOWN_WAIT:?}"
            ))),
        }
    }
}

impl Drop for PeerServer {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

/// An [`Invoker`] that calls a remote peer's declared services (used when
/// one peer materializes calls that point at another peer).
pub struct RemoteInvoker<'a> {
    /// The calling peer (enforcement + policy side).
    pub caller: &'a Peer,
    /// The remote server handle.
    pub server: &'a PeerServer,
}

impl Invoker for RemoteInvoker<'_> {
    fn invoke(&mut self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        self.caller
            .call_remote(self.server, function, params)
            .map_err(|e| InvokeError {
                function: function.to_owned(),
                message: e.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_schema::{newspaper_example, validate, NoOracle, Schema};
    use axml_services::builtin::{GetDate, GetTemp, TimeOutGuide};
    use axml_services::ServiceDef as SDef;

    /// The shared web vocabulary: every element type + every WSDL_int.
    fn web_compiled() -> Arc<Compiled> {
        Arc::new(
            Compiled::new(
                Schema::builder()
                    .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                    .data_element("title")
                    .data_element("date")
                    .data_element("temp")
                    .data_element("city")
                    .element("exhibit", "title.(Get_Date|date)")
                    .data_element("performance")
                    .function("Get_Temp", "city", "temp")
                    .function("TimeOut", "data", "(exhibit|performance)*")
                    .function("Get_Date", "title", "date")
                    .function("Front_Page", "data", "newspaper")
                    .build()
                    .unwrap(),
                &NoOracle,
            )
            .unwrap(),
        )
    }

    fn web_registry() -> Arc<Registry> {
        let reg = Registry::new();
        reg.register(
            SDef::new("Get_Temp", "city", "temp"),
            Arc::new(GetTemp::with_defaults()),
        );
        reg.register(
            SDef::new("TimeOut", "data", "(exhibit|performance)*"),
            Arc::new(TimeOutGuide::exhibits_only()),
        );
        reg.register(
            SDef::new("Get_Date", "title", "date"),
            Arc::new(GetDate {
                table: vec![("Monet".to_owned(), "Mon".to_owned())],
            }),
        );
        Arc::new(reg)
    }

    fn newspaper_peer() -> Arc<Peer> {
        let peer = Peer::new("newspaper.example.org", web_compiled(), web_registry());
        peer.repository.store("front", newspaper_example());
        peer.declare(
            SDef::new("Front_Page", "data", "newspaper"),
            Query::Document("front".to_owned()),
        );
        Arc::new(peer)
    }

    #[test]
    fn retracted_service_fails_typed_and_redeclare_restores() {
        let peer = newspaper_peer();
        peer.handle("Front_Page", &[ITree::text("today")]).unwrap();
        assert!(peer.retract("Front_Page"));
        assert!(!peer.retract("Front_Page"), "second retract is a no-op");
        assert!(peer.interface().is_empty());
        match peer.handle("Front_Page", &[ITree::text("today")]) {
            Err(PeerError::NoSuchService(name)) => assert_eq!(name, "Front_Page"),
            other => panic!("expected NoSuchService, got {other:?}"),
        }
        peer.declare(
            SDef::new("Front_Page", "data", "newspaper"),
            Query::Document("front".to_owned()),
        );
        peer.handle("Front_Page", &[ITree::text("today")]).unwrap();
    }

    #[test]
    fn declared_service_served_over_soap() {
        let server_peer = newspaper_peer();
        let server = server_peer.serve();
        let client = Arc::new(Peer::new("reader", web_compiled(), web_registry()));
        let result = client
            .call_remote(&server, "Front_Page", &[ITree::text("today")])
            .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].name(), Some("newspaper"));
        // The intensional parts travelled intact.
        assert_eq!(result[0].num_funcs(), 2);
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_reports_server_panics() {
        // A server thread that dies mid-request drops the `done` sender
        // without signalling; shutdown must join it and surface the panic
        // payload instead of swallowing it or hanging.
        let (tx, rx): (Sender<(String, Sender<String>)>, _) = unbounded();
        let (done_tx, done_rx) = bounded(1);
        let handle = std::thread::spawn(move || {
            let _signals_by_drop = done_tx;
            let (request, _reply) = rx.recv().unwrap();
            panic!("enforcement invariant violated on {}", request.len());
        });
        let server = PeerServer {
            requests: tx,
            interface: Vec::new(),
            handle: Some(handle),
            done: Mutex::new(done_rx),
        };
        let (reply_tx, reply_rx) = bounded(1);
        server
            .requests
            .send(("<boom/>".to_owned(), reply_tx))
            .unwrap();
        // The reply channel closes without an answer.
        assert!(reply_rx.recv().is_err());
        let err = server.shutdown().unwrap_err();
        assert!(
            matches!(err, PeerError::Transport(ref m) if m.contains("panicked")
                && m.contains("enforcement invariant violated")),
            "{err}"
        );
    }

    #[test]
    fn shutdown_leaks_no_threads() {
        let count_threads = || -> usize {
            #[cfg(target_os = "linux")]
            {
                if let Ok(entries) = std::fs::read_dir("/proc/self/task") {
                    return entries.count();
                }
            }
            0
        };
        let baseline = count_threads();
        for _ in 0..32 {
            let server = newspaper_peer().serve();
            server.shutdown().unwrap();
        }
        let after = count_threads();
        // Other tests run concurrently, so allow slack — but 32 leaked
        // server threads would be unmistakable.
        assert!(
            after < baseline + 8,
            "thread count grew from {baseline} to {after}"
        );
    }

    #[test]
    fn unknown_service_faults() {
        let server_peer = newspaper_peer();
        let server = server_peer.serve();
        let client = Arc::new(Peer::new("reader", web_compiled(), web_registry()));
        let err = client.call_remote(&server, "Nope", &[]).unwrap_err();
        assert!(matches!(err, PeerError::NoSuchService(_)));
    }

    #[test]
    fn reject_functions_policy_blocks_intensional_answers() {
        // A browser-like receiver that cannot process embedded calls.
        let server_peer = newspaper_peer();
        let server = server_peer.serve();
        let client = Arc::new(
            Peer::new("browser", web_compiled(), web_registry())
                .with_inbound(InboundPolicy::RejectFunctions),
        );
        let err = client
            .call_remote(&server, "Front_Page", &[ITree::text("today")])
            .unwrap_err();
        assert!(matches!(err, PeerError::PolicyViolation { .. }), "{err}");
    }

    #[test]
    fn allow_only_policy() {
        let policy = InboundPolicy::AllowOnly(vec!["TimeOut".to_owned()]);
        let ok = vec![ITree::func("TimeOut", vec![ITree::text("x")])];
        policy.check(&ok).unwrap();
        let bad = vec![ITree::elem(
            "wrap",
            vec![ITree::func("Evil_Service", vec![])],
        )];
        let err = policy.check(&bad).unwrap_err();
        assert!(
            matches!(err, PeerError::PolicyViolation { ref function } if function == "Evil_Service")
        );
    }

    #[test]
    fn send_document_materializes_for_exchange_schema() {
        // Fig. 1: sender and receiver agreed on schema (**); the sender
        // materializes the temperature before shipping.
        let exchange = Arc::new(
            Compiled::new(
                Schema::builder()
                    .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
                    .data_element("title")
                    .data_element("date")
                    .data_element("temp")
                    .data_element("city")
                    .element("exhibit", "title.(Get_Date|date)")
                    .data_element("performance")
                    .function("Get_Temp", "city", "temp")
                    .function("TimeOut", "data", "(exhibit|performance)*")
                    .function("Get_Date", "title", "date")
                    .build()
                    .unwrap(),
                &NoOracle,
            )
            .unwrap(),
        );
        let sender = newspaper_peer();
        let (sent, report) = sender
            .send_document(&newspaper_example(), &exchange, &InboundPolicy::AcceptAll)
            .unwrap();
        assert_eq!(report.invoked, vec!["Get_Temp".to_owned()]);
        validate(&sent, &exchange).unwrap();
        // Receiver refusing all functions forces full materialization —
        // which this exchange schema cannot guarantee for TimeOut's
        // position; with a fully extensional exchange schema it works.
        let strict = Arc::new(
            Compiled::new(
                Schema::builder()
                    .element("newspaper", "title.date.temp.(exhibit|performance)*")
                    .data_element("title")
                    .data_element("date")
                    .data_element("temp")
                    .data_element("city")
                    .element("exhibit", "title.date")
                    .data_element("performance")
                    .function("Get_Temp", "city", "temp")
                    .function("TimeOut", "data", "(exhibit|performance)*")
                    .function("Get_Date", "title", "date")
                    .build()
                    .unwrap(),
                &NoOracle,
            )
            .unwrap(),
        );
        let (sent, report) = sender
            .send_document(
                &newspaper_example(),
                &strict,
                &InboundPolicy::RejectFunctions,
            )
            .unwrap();
        assert_eq!(sent.num_funcs(), 0, "fully materialized");
        assert!(report.invoked.len() >= 2);
        validate(&sent, &strict).unwrap();
    }

    #[test]
    fn enforce_input_rewrites_parameters() {
        // Calling Get_Date with an intensional title parameter is fine —
        // τ_in(Get_Date) = title accepts it only extensionally, so the
        // enforcement module must materialize nothing here (title is
        // already extensional); but an embedded call inside the parameter
        // must be resolved.
        let peer = newspaper_peer();
        let params = vec![ITree::data("title", "Monet")];
        let out = peer.enforce_input("Get_Date", &params).unwrap();
        assert_eq!(out, params);
    }

    #[test]
    fn remote_invoker_adapts_peers() {
        let server_peer = newspaper_peer();
        let server = server_peer.serve();
        let caller = Peer::new("caller", web_compiled(), web_registry());
        let mut inv = RemoteInvoker {
            caller: &caller,
            server: &server,
        };
        use axml_core::invoke::Invoker as _;
        let result = inv.invoke("Front_Page", &[ITree::text("x")]).unwrap();
        assert_eq!(result[0].name(), Some("newspaper"));
        assert!(inv.invoke("Ghost", &[]).is_err());
    }

    #[test]
    fn concurrent_clients_share_a_server() {
        let server_peer = newspaper_peer();
        let server = Arc::new(server_peer.serve());
        let mut handles = Vec::new();
        for i in 0..8 {
            let server = Arc::clone(&server);
            handles.push(std::thread::spawn(move || {
                let client = Peer::new(&format!("c{i}"), web_compiled(), web_registry());
                let result = client
                    .call_remote(&server, "Front_Page", &[ITree::text("t")])
                    .unwrap();
                assert_eq!(result[0].name(), Some("newspaper"));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

#[cfg(test)]
mod path_query_tests {
    use super::*;
    use axml_schema::{newspaper_example, NoOracle, PathQuery, Schema};

    #[test]
    fn declared_path_service() {
        let compiled = Arc::new(
            Compiled::new(
                Schema::builder()
                    .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                    .data_element("title")
                    .data_element("date")
                    .data_element("temp")
                    .data_element("city")
                    .element("exhibit", "title.(Get_Date|date)")
                    .data_element("performance")
                    .function("Get_Temp", "city", "temp")
                    .function("TimeOut", "data", "(exhibit|performance)*")
                    .function("Get_Date", "title", "date")
                    .function("Get_Title", "data", "title")
                    .build()
                    .unwrap(),
                &NoOracle,
            )
            .unwrap(),
        );
        let peer = Arc::new(Peer::new(
            "p",
            Arc::clone(&compiled),
            Arc::new(axml_services::Registry::new()),
        ));
        peer.repository.store("front", newspaper_example());
        peer.declare(
            ServiceDef::new("Get_Title", "data", "title"),
            Query::Path {
                doc: "front".to_owned(),
                path: PathQuery::parse("newspaper/title").unwrap(),
            },
        );
        let result = peer.handle("Get_Title", &[ITree::text("x")]).unwrap();
        assert_eq!(result, vec![ITree::data("title", "The Sun")]);
    }
}
