//! The peer's document repository with "active" features.
//!
//! Each Active XML peer stores intensional documents persistently and can
//! *enrich* them by triggering the embedded service calls (Sec. 7, "The
//! ActiveXML system"). The repository here is an in-memory store with the
//! same interface shape; enrichment materializes selected calls in place,
//! validating every answer against the service's declared output type.

use axml_core::invoke::{InvokeError, Invoker};
use axml_schema::{validate_output_instance, Compiled, ITree};
use axml_support::sync::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named store of intensional documents.
#[derive(Default)]
pub struct Repository {
    docs: RwLock<BTreeMap<String, ITree>>,
}

/// Errors from repository operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepoError {
    /// No document under that name.
    NotFound(String),
    /// Enrichment called a service that failed.
    Invoke(InvokeError),
    /// A service answer did not match its declared output type.
    IllTyped {
        /// The function whose answer was rejected.
        function: String,
        /// Validation message.
        message: String,
    },
}

impl std::fmt::Display for RepoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepoError::NotFound(n) => write!(f, "no document named '{n}'"),
            RepoError::Invoke(e) => write!(f, "{e}"),
            RepoError::IllTyped { function, message } => {
                write!(
                    f,
                    "enrichment of '{function}' returned ill-typed data: {message}"
                )
            }
        }
    }
}

impl std::error::Error for RepoError {}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or replaces) a document.
    pub fn store(&self, name: &str, doc: ITree) {
        self.docs.write().insert(name.to_owned(), doc);
    }

    /// Fetches a copy of a document.
    pub fn load(&self, name: &str) -> Result<ITree, RepoError> {
        self.docs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| RepoError::NotFound(name.to_owned()))
    }

    /// Removes a document; returns it if present.
    pub fn remove(&self, name: &str) -> Option<ITree> {
        self.docs.write().remove(name)
    }

    /// Names of all stored documents.
    pub fn names(&self) -> Vec<String> {
        self.docs.read().keys().cloned().collect()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.read().len()
    }

    /// True if the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.read().is_empty()
    }

    /// Enriches the named document: every embedded call accepted by
    /// `select` is invoked (one round; answers may contain further calls,
    /// re-run to chase them) and replaced by its validated result.
    ///
    /// Returns the number of calls materialized.
    pub fn enrich(
        &self,
        name: &str,
        compiled: &Arc<Compiled>,
        select: &dyn Fn(&str) -> bool,
        invoker: &mut dyn Invoker,
    ) -> Result<usize, RepoError> {
        let doc = self.load(name)?;
        let mut count = 0usize;
        let enriched = enrich_tree(&doc, compiled, select, invoker, &mut count)?;
        self.store(name, enriched);
        Ok(count)
    }
}

fn enrich_tree(
    tree: &ITree,
    compiled: &Arc<Compiled>,
    select: &dyn Fn(&str) -> bool,
    invoker: &mut dyn Invoker,
    count: &mut usize,
) -> Result<ITree, RepoError> {
    match tree {
        ITree::Text(_) => Ok(tree.clone()),
        ITree::Func(f) => {
            // Calls kept in place still get their parameters enriched.
            let params = enrich_forest(&f.params, compiled, select, invoker, count)?;
            Ok(ITree::Func(axml_schema::FuncNode {
                params,
                ..f.clone()
            }))
        }
        ITree::Elem { label, children } => {
            let mut out = Vec::with_capacity(children.len());
            for c in children {
                if let ITree::Func(f) = c {
                    if select(&f.name) {
                        let result = invoker
                            .invoke(&f.name, &f.params)
                            .map_err(RepoError::Invoke)?;
                        let sig = compiled.sig_of(&f.name);
                        validate_output_instance(&result, &sig.output_dfa, compiled).map_err(
                            |e| RepoError::IllTyped {
                                function: f.name.clone(),
                                message: e.to_string(),
                            },
                        )?;
                        *count += 1;
                        out.extend(result);
                        continue;
                    }
                }
                out.push(enrich_tree(c, compiled, select, invoker, count)?);
            }
            Ok(ITree::elem(label, out))
        }
    }
}

fn enrich_forest(
    items: &[ITree],
    compiled: &Arc<Compiled>,
    select: &dyn Fn(&str) -> bool,
    invoker: &mut dyn Invoker,
    count: &mut usize,
) -> Result<Vec<ITree>, RepoError> {
    items
        .iter()
        .map(|t| enrich_tree(t, compiled, select, invoker, count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::invoke::ScriptedInvoker;
    use axml_schema::{newspaper_example, NoOracle, Schema};

    fn compiled() -> Arc<Compiled> {
        Arc::new(
            Compiled::new(
                Schema::builder()
                    .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                    .data_element("title")
                    .data_element("date")
                    .data_element("temp")
                    .data_element("city")
                    .element("exhibit", "title.(Get_Date|date)")
                    .data_element("performance")
                    .function("Get_Temp", "city", "temp")
                    .function("TimeOut", "data", "(exhibit|performance)*")
                    .function("Get_Date", "title", "date")
                    .build()
                    .unwrap(),
                &NoOracle,
            )
            .unwrap(),
        )
    }

    #[test]
    fn store_load_remove() {
        let repo = Repository::new();
        assert!(repo.is_empty());
        repo.store("front", newspaper_example());
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.load("front").unwrap(), newspaper_example());
        assert!(matches!(repo.load("ghost"), Err(RepoError::NotFound(_))));
        assert!(repo.remove("front").is_some());
        assert!(repo.is_empty());
    }

    #[test]
    fn enrich_materializes_selected_calls() {
        let repo = Repository::new();
        repo.store("front", newspaper_example());
        let c = compiled();
        let mut inv = ScriptedInvoker::new().answer("Get_Temp", vec![ITree::data("temp", "15 C")]);
        let n = repo
            .enrich("front", &c, &|name| name == "Get_Temp", &mut inv)
            .unwrap();
        assert_eq!(n, 1);
        let doc = repo.load("front").unwrap();
        assert_eq!(doc.num_funcs(), 1, "TimeOut still intensional");
        assert_eq!(doc.children()[2], ITree::data("temp", "15 C"));
    }

    #[test]
    fn enrich_rejects_ill_typed_answers() {
        let repo = Repository::new();
        repo.store("front", newspaper_example());
        let c = compiled();
        let mut inv = ScriptedInvoker::new().answer("Get_Temp", vec![ITree::data("city", "nope")]);
        let err = repo
            .enrich("front", &c, &|n| n == "Get_Temp", &mut inv)
            .unwrap_err();
        assert!(matches!(err, RepoError::IllTyped { .. }));
    }
}

/// An update operation applied to the nodes matched by a path query.
#[derive(Debug, Clone)]
pub enum UpdateOp {
    /// Remove the matched nodes.
    Delete,
    /// Replace each matched node by the given forest.
    ReplaceWith(Vec<ITree>),
    /// Append the given children to each matched element/call node.
    AppendChildren(Vec<ITree>),
}

impl Repository {
    /// Applies `op` to every node of document `name` matched by `path`
    /// (descendant (`**`) steps are not supported for updates). Returns
    /// the number of nodes affected.
    pub fn update(
        &self,
        name: &str,
        path: &axml_schema::PathQuery,
        op: &UpdateOp,
    ) -> Result<usize, RepoError> {
        if path
            .steps()
            .iter()
            .any(|s| matches!(s, axml_schema::Step::Descendant))
        {
            return Err(RepoError::Invoke(InvokeError {
                function: "update".to_owned(),
                message: "descendant steps are not supported in updates".to_owned(),
            }));
        }
        let doc = self.load(name)?;
        let mut count = 0usize;
        // Align with PathQuery::select's absolute-head behaviour.
        let steps = path.steps();
        let updated = match steps.first() {
            Some(axml_schema::Step::Child(label))
                if doc.name() == Some(label) && !doc.is_func() =>
            {
                if steps.len() == 1 {
                    return Err(RepoError::Invoke(InvokeError {
                        function: "update".to_owned(),
                        message: "cannot update the document root itself".to_owned(),
                    }));
                }
                update_rec(&doc, &steps[1..], op, &mut count)
            }
            _ => update_rec(&doc, steps, op, &mut count),
        };
        self.store(name, updated);
        Ok(count)
    }
}

fn step_matches(step: &axml_schema::Step, node: &ITree) -> bool {
    use axml_schema::Step;
    match step {
        Step::Child(label) => !node.is_func() && node.name() == Some(label),
        Step::AnyChild => matches!(node, ITree::Elem { .. }),
        Step::Text => matches!(node, ITree::Text(_)),
        Step::Call(name) => match node {
            ITree::Func(f) => name.as_deref().is_none_or(|n| n == f.name),
            _ => false,
        },
        Step::Descendant => false, // rejected upfront
    }
}

fn update_rec(
    node: &ITree,
    steps: &[axml_schema::Step],
    op: &UpdateOp,
    count: &mut usize,
) -> ITree {
    let Some((head, rest)) = steps.split_first() else {
        return node.clone();
    };
    let mut transform_children = |children: &[ITree]| -> Vec<ITree> {
        let mut out = Vec::with_capacity(children.len());
        for c in children {
            if step_matches(head, c) {
                if rest.is_empty() {
                    *count += 1;
                    match op {
                        UpdateOp::Delete => {}
                        UpdateOp::ReplaceWith(forest) => out.extend(forest.iter().cloned()),
                        UpdateOp::AppendChildren(extra) => {
                            let mut updated = c.clone();
                            if let Some(cs) = updated.children_mut() {
                                cs.extend(extra.iter().cloned());
                            }
                            out.push(updated);
                        }
                    }
                } else {
                    out.push(update_rec(c, rest, op, count));
                }
            } else {
                out.push(c.clone());
            }
        }
        out
    };
    match node {
        ITree::Text(_) => node.clone(),
        ITree::Elem { label, children } => ITree::elem(label, transform_children(children)),
        ITree::Func(f) => ITree::Func(axml_schema::FuncNode {
            params: transform_children(&f.params),
            ..f.clone()
        }),
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;
    use axml_schema::{newspaper_example, PathQuery};

    #[test]
    fn delete_matched_nodes() {
        let repo = Repository::new();
        repo.store("front", newspaper_example());
        let path = PathQuery::parse("newspaper/call(*)").unwrap();
        let n = repo.update("front", &path, &UpdateOp::Delete).unwrap();
        assert_eq!(n, 2);
        let doc = repo.load("front").unwrap();
        assert_eq!(doc.num_funcs(), 0);
        assert_eq!(doc.children().len(), 2);
    }

    #[test]
    fn replace_matched_nodes() {
        let repo = Repository::new();
        repo.store("front", newspaper_example());
        let path = PathQuery::parse("newspaper/call(Get_Temp)").unwrap();
        let n = repo
            .update(
                "front",
                &path,
                &UpdateOp::ReplaceWith(vec![ITree::data("temp", "20 C")]),
            )
            .unwrap();
        assert_eq!(n, 1);
        let doc = repo.load("front").unwrap();
        assert_eq!(doc.children()[2], ITree::data("temp", "20 C"));
        assert_eq!(doc.num_funcs(), 1, "TimeOut untouched");
    }

    #[test]
    fn append_children() {
        let repo = Repository::new();
        repo.store("front", newspaper_example());
        let path = PathQuery::parse("newspaper/title").unwrap();
        let n = repo
            .update(
                "front",
                &path,
                &UpdateOp::AppendChildren(vec![ITree::text(" (late edition)")]),
            )
            .unwrap();
        assert_eq!(n, 1);
        let doc = repo.load("front").unwrap();
        assert_eq!(doc.children()[0].children().len(), 2);
    }

    #[test]
    fn update_restrictions() {
        let repo = Repository::new();
        repo.store("front", newspaper_example());
        let descendant = PathQuery::parse("**/title").unwrap();
        assert!(repo
            .update("front", &descendant, &UpdateOp::Delete)
            .is_err());
        let root = PathQuery::parse("newspaper").unwrap();
        assert!(repo.update("front", &root, &UpdateOp::Delete).is_err());
        assert!(repo
            .update(
                "ghost",
                &PathQuery::parse("a/b").unwrap(),
                &UpdateOp::Delete
            )
            .is_err());
    }
}

impl Repository {
    /// Persists every document as pretty-printed XML under `dir`
    /// (`<name>.xml`), creating the directory if needed. The paper's peers
    /// provide "persistent storage for intensional documents"; this is the
    /// storage format — plain Sec. 7 XML, readable by any peer.
    pub fn save_to_dir(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let docs = self.docs.read();
        for (name, doc) in docs.iter() {
            let path = dir.join(format!("{name}.xml"));
            std::fs::write(path, doc.to_xml().to_pretty_xml())?;
        }
        Ok(docs.len())
    }

    /// Loads every `*.xml` file under `dir` into the repository (file stem
    /// becomes the document name). Returns the number loaded.
    pub fn load_from_dir(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        let mut count = 0;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("xml") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let text = std::fs::read_to_string(&path)?;
            let parsed = axml_xml::parse_document(&text).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
            })?;
            let tree = ITree::from_xml(&parsed.root)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            self.store(name, tree);
            count += 1;
        }
        Ok(count)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use axml_schema::newspaper_example;

    #[test]
    fn save_and_reload_roundtrip() {
        let dir = std::env::temp_dir().join(format!("axml-repo-{}", std::process::id()));
        let repo = Repository::new();
        repo.store("front", newspaper_example());
        repo.store(
            "about",
            ITree::elem("about", vec![ITree::text("a newspaper")]),
        );
        assert_eq!(repo.save_to_dir(&dir).unwrap(), 2);

        let fresh = Repository::new();
        assert_eq!(fresh.load_from_dir(&dir).unwrap(), 2);
        assert_eq!(fresh.load("front").unwrap(), newspaper_example());
        assert_eq!(fresh.load("about").unwrap().name(), Some("about"));
        // The intensional parts survived the disk round trip.
        assert_eq!(fresh.load("front").unwrap().num_funcs(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_malformed_files() {
        let dir = std::env::temp_dir().join(format!("axml-repo-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.xml"), "<not closed").unwrap();
        let repo = Repository::new();
        assert!(repo.load_from_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
