//! Exchange-schema negotiation.
//!
//! The paper's conclusion sketches an extension where the enforcement
//! module "could speak to other peers to agree with them on the intensional
//! XML Schemas that should be used to exchange data". This module
//! implements that handshake:
//!
//! 1. the sender proposes exchange schemas in preference order (most
//!    intensional first — lazier is cheaper for the sender);
//! 2. the receiver filters them through its [`InboundPolicy`] (a browser
//!    rejects any schema that *permits* embedded calls; a cautious peer
//!    only accepts schemas whose calls are all in its trusted list);
//! 3. the sender keeps the first surviving proposal it can *guarantee*:
//!    its own schema must safely rewrite into it (Sec. 6 / Def. 6).

use crate::peer::InboundPolicy;
use axml_core::schema_rw::schema_safe_rewrites;
use axml_schema::{Compiled, Content, NameKind, PatternOracle, Schema, SchemaError};
use axml_store::CompatMatrix;

/// A named exchange-schema proposal.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// Human-readable name for the proposal.
    pub name: String,
    /// The proposed exchange schema.
    pub schema: Schema,
}

/// Outcome of a negotiation.
#[derive(Debug, Clone)]
pub enum Negotiation {
    /// Index of the agreed proposal.
    Agreed {
        /// Index into the proposal list.
        index: usize,
        /// Why earlier proposals were skipped.
        skipped: Vec<(usize, String)>,
    },
    /// No proposal survived both sides.
    Failed {
        /// Why each proposal was rejected.
        reasons: Vec<(usize, String)>,
    },
}

impl InboundPolicy {
    /// Checks whether this receiver policy can accept *documents of* the
    /// given schema — i.e. whether any instance could carry an embedded
    /// call the policy forbids. Conservative: a schema whose content
    /// models mention a forbidden function (or any pattern/wildcard, whose
    /// members are open-ended) is rejected.
    pub fn accepts_schema(&self, schema: &Schema) -> Result<(), String> {
        let forbidden = |name: &str| -> Option<String> {
            match schema.kind_of(name) {
                Some(NameKind::Function) => match self {
                    InboundPolicy::AcceptAll => None,
                    InboundPolicy::RejectFunctions => {
                        Some(format!("schema permits embedded call '{name}'"))
                    }
                    InboundPolicy::AllowOnly(list) => {
                        if list.iter().any(|f| f == name) {
                            None
                        } else {
                            Some(format!("'{name}' is not in the trusted list"))
                        }
                    }
                },
                Some(NameKind::Pattern) | Some(NameKind::AnyFunction) => match self {
                    InboundPolicy::AcceptAll => None,
                    _ => Some(format!("schema permits open-ended calls via '{name}'")),
                },
                _ => None,
            }
        };
        for def in schema.elements.values() {
            if let Content::Model(re) = &def.content {
                for sym in re.symbols() {
                    if let Some(reason) = forbidden(schema.alphabet.name(sym)) {
                        return Err(format!("in content of '{}': {reason}", def.name));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Runs the negotiation. `sender_schema`/`root` describe what the sender
/// will actually ship (Def. 6 check); `receiver` is the receiver's policy;
/// `k` is the rewriting depth the sender is willing to spend.
pub fn negotiate(
    sender_schema: &Schema,
    root: &str,
    proposals: &[Proposal],
    receiver: &InboundPolicy,
    k: u32,
    oracle: &dyn PatternOracle,
) -> Result<Negotiation, SchemaError> {
    let mut reasons = Vec::new();
    for (i, p) in proposals.iter().enumerate() {
        if let Err(reason) = receiver.accepts_schema(&p.schema) {
            reasons.push((i, format!("receiver refuses: {reason}")));
            continue;
        }
        let report = schema_safe_rewrites(sender_schema, root, &p.schema, k, oracle)?;
        if !report.compatible() {
            let detail = report
                .failures
                .first()
                .map(|f| f.to_string())
                .unwrap_or_else(|| "incompatible".to_owned());
            reasons.push((i, format!("sender cannot guarantee it: {detail}")));
            continue;
        }
        return Ok(Negotiation::Agreed {
            index: i,
            skipped: reasons,
        });
    }
    Ok(Negotiation::Failed { reasons })
}

/// How a [`negotiate_with_matrix`] run split its Sec. 6 checks between
/// the precomputed [`CompatMatrix`] and live game solving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatrixUse {
    /// Proposals answered from the matrix (no games solved).
    pub matrix_hits: usize,
    /// Proposals that fell back to a live `schema_safe_rewrites` run
    /// (not in the matrix, stale fingerprint, or wrong `k`/root).
    pub live_checks: usize,
}

/// [`negotiate`], but consulting a precomputed schema compatibility
/// matrix before solving any game: when the matrix was built for the
/// same `root` and `k` and pins both `sender_name` and the proposal's
/// name to their *current* compiled fingerprints, its verdict is used
/// verbatim — the hot path costs a table lookup. Anything the matrix
/// cannot vouch for (unknown name, drifted schema, different `k`)
/// falls back to the live Sec. 6 check, so a stale matrix can slow a
/// negotiation down but never change its outcome.
///
/// Proposal names are matched against matrix member names, so build
/// the matrix over the same named portfolio the proposals come from.
#[allow(clippy::too_many_arguments)]
pub fn negotiate_with_matrix(
    sender_schema: &Schema,
    sender_name: &str,
    root: &str,
    proposals: &[Proposal],
    receiver: &InboundPolicy,
    k: u32,
    oracle: &dyn PatternOracle,
    matrix: &CompatMatrix,
) -> Result<(Negotiation, MatrixUse), SchemaError> {
    let mut usage = MatrixUse::default();
    // The matrix is only authoritative for the same game: same root
    // element, same rewriting depth, and a sender it still pins.
    let sender_fp = if matrix.root() == root && matrix.k() == k {
        Some(Compiled::new(sender_schema.clone(), oracle)?.fingerprint())
    } else {
        None
    };
    let mut reasons = Vec::new();
    for (i, p) in proposals.iter().enumerate() {
        if let Err(reason) = receiver.accepts_schema(&p.schema) {
            reasons.push((i, format!("receiver refuses: {reason}")));
            continue;
        }
        let precomputed = match sender_fp {
            Some(fp) if matrix.fingerprint_of(&p.name).is_some() => {
                let to_fp = Compiled::new(p.schema.clone(), oracle)?.fingerprint();
                matrix.can_send_pinned(sender_name, fp, &p.name, to_fp)
            }
            _ => None,
        };
        let verdict = match precomputed {
            Some(ok) => {
                usage.matrix_hits += 1;
                if ok {
                    None
                } else {
                    Some(
                        matrix
                            .reason(sender_name, &p.name)
                            .unwrap_or("incompatible")
                            .to_owned(),
                    )
                }
            }
            None => {
                usage.live_checks += 1;
                let report = schema_safe_rewrites(sender_schema, root, &p.schema, k, oracle)?;
                if report.compatible() {
                    None
                } else {
                    Some(
                        report
                            .failures
                            .first()
                            .map(|f| f.to_string())
                            .unwrap_or_else(|| "incompatible".to_owned()),
                    )
                }
            }
        };
        match verdict {
            Some(detail) => reasons.push((i, format!("sender cannot guarantee it: {detail}"))),
            None => {
                return Ok((
                    Negotiation::Agreed {
                        index: i,
                        skipped: reasons,
                    },
                    usage,
                ))
            }
        }
    }
    Ok((Negotiation::Failed { reasons }, usage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_schema::NoOracle;

    fn newspaper_schema(model: &str) -> Schema {
        Schema::builder()
            .element("newspaper", model)
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.date")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .root("newspaper")
            .build()
            .unwrap()
    }

    fn proposals() -> Vec<Proposal> {
        vec![
            Proposal {
                name: "fully intensional".to_owned(),
                schema: newspaper_schema("title.date.(Get_Temp|temp).(TimeOut|exhibit*)"),
            },
            Proposal {
                name: "temp materialized".to_owned(),
                schema: newspaper_schema("title.date.temp.(TimeOut|exhibit*)"),
            },
            Proposal {
                name: "fully extensional".to_owned(),
                schema: newspaper_schema("title.date.temp.(exhibit|performance)*"),
            },
        ]
    }

    #[test]
    fn axml_receiver_gets_the_laziest_schema() {
        let sender = newspaper_schema("title.date.(Get_Temp|temp).(TimeOut|exhibit*)");
        let n = negotiate(
            &sender,
            "newspaper",
            &proposals(),
            &InboundPolicy::AcceptAll,
            1,
            &NoOracle,
        )
        .unwrap();
        match n {
            Negotiation::Agreed { index, skipped } => {
                assert_eq!(index, 0, "the first (laziest) proposal wins");
                assert!(skipped.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn browser_receiver_forces_the_extensional_schema() {
        let sender = newspaper_schema("title.date.(Get_Temp|temp).(TimeOut|exhibit*)");
        let n = negotiate(
            &sender,
            "newspaper",
            &proposals(),
            &InboundPolicy::RejectFunctions,
            1,
            &NoOracle,
        )
        .unwrap();
        match n {
            Negotiation::Agreed { index, skipped } => {
                assert_eq!(index, 2, "only the extensional schema survives");
                assert_eq!(skipped.len(), 2);
                assert!(skipped[0].1.contains("receiver refuses"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn allow_only_receiver_accepts_trusted_calls() {
        let sender = newspaper_schema("title.date.(Get_Temp|temp).(TimeOut|exhibit*)");
        // The receiver trusts TimeOut but not Get_Temp: proposal 0 (which
        // permits Get_Temp) is refused, proposal 1 (only TimeOut) is fine.
        let n = negotiate(
            &sender,
            "newspaper",
            &proposals(),
            &InboundPolicy::AllowOnly(vec!["TimeOut".to_owned()]),
            1,
            &NoOracle,
        )
        .unwrap();
        match n {
            Negotiation::Agreed { index, .. } => assert_eq!(index, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negotiation_fails_when_sender_cannot_guarantee() {
        // The sender's TimeOut may return performances, so it cannot
        // guarantee the exhibits-only schema; with a receiver that rejects
        // functions and only that proposal on the table, negotiation fails.
        let sender = newspaper_schema("title.date.(Get_Temp|temp).(TimeOut|exhibit*)");
        let only_exhibits = vec![Proposal {
            name: "exhibits only".to_owned(),
            schema: newspaper_schema("title.date.temp.exhibit*"),
        }];
        let n = negotiate(
            &sender,
            "newspaper",
            &only_exhibits,
            &InboundPolicy::RejectFunctions,
            1,
            &NoOracle,
        )
        .unwrap();
        match n {
            Negotiation::Failed { reasons } => {
                assert_eq!(reasons.len(), 1);
                assert!(reasons[0].1.contains("sender cannot guarantee"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn matrix_negotiation_matches_live_and_skips_games() {
        let sender = newspaper_schema("title.date.(Get_Temp|temp).(TimeOut|exhibit*)");
        let proposals = proposals();
        // A portfolio covering the sender and every proposal, keyed by
        // the same names the proposals carry.
        let mut portfolio = vec![("sender".to_owned(), sender.clone())];
        portfolio.extend(proposals.iter().map(|p| (p.name.clone(), p.schema.clone())));
        let matrix = CompatMatrix::build(&portfolio, "newspaper", 1, &NoOracle).unwrap();
        for policy in [
            InboundPolicy::AcceptAll,
            InboundPolicy::RejectFunctions,
            InboundPolicy::AllowOnly(vec!["TimeOut".to_owned()]),
        ] {
            let live = negotiate(&sender, "newspaper", &proposals, &policy, 1, &NoOracle).unwrap();
            let (fast, usage) = negotiate_with_matrix(
                &sender,
                "sender",
                "newspaper",
                &proposals,
                &policy,
                1,
                &NoOracle,
                &matrix,
            )
            .unwrap();
            // Same outcome, and every Sec. 6 check the receiver let
            // through was answered from the matrix, not a game.
            match (&live, &fast) {
                (
                    Negotiation::Agreed { index: a, .. },
                    Negotiation::Agreed { index: b, .. },
                ) => assert_eq!(a, b),
                (Negotiation::Failed { .. }, Negotiation::Failed { .. }) => {}
                other => panic!("outcomes diverge: {other:?}"),
            }
            assert_eq!(usage.live_checks, 0, "matrix should answer everything");
            assert!(usage.matrix_hits >= 1);
        }
    }

    #[test]
    fn matrix_with_wrong_k_falls_back_to_live_checks() {
        let sender = newspaper_schema("title.date.(Get_Temp|temp).(TimeOut|exhibit*)");
        let proposals = proposals();
        let mut portfolio = vec![("sender".to_owned(), sender.clone())];
        portfolio.extend(proposals.iter().map(|p| (p.name.clone(), p.schema.clone())));
        // Built at k = 2, consulted at k = 1: not authoritative.
        let matrix = CompatMatrix::build(&portfolio, "newspaper", 2, &NoOracle).unwrap();
        let (fast, usage) = negotiate_with_matrix(
            &sender,
            "sender",
            "newspaper",
            &proposals,
            &InboundPolicy::AcceptAll,
            1,
            &NoOracle,
            &matrix,
        )
        .unwrap();
        assert_eq!(usage.matrix_hits, 0);
        assert!(usage.live_checks >= 1);
        assert!(matches!(fast, Negotiation::Agreed { index: 0, .. }));
    }

    #[test]
    fn patterns_are_open_ended_for_strict_receivers() {
        let with_pattern = Schema::builder()
            .element("newspaper", "title.date.(Forecast|temp).exhibit*")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.date")
            .data_element("performance")
            .pattern(
                "Forecast",
                axml_schema::Predicate::NamePrefix("Get_".to_owned()),
                "city",
                "temp",
            )
            .function("Get_Temp", "city", "temp")
            .root("newspaper")
            .build()
            .unwrap();
        assert!(InboundPolicy::AcceptAll
            .accepts_schema(&with_pattern)
            .is_ok());
        assert!(InboundPolicy::AllowOnly(vec!["Get_Temp".to_owned()])
            .accepts_schema(&with_pattern)
            .is_err());
        assert!(InboundPolicy::RejectFunctions
            .accepts_schema(&with_pattern)
            .is_err());
    }
}
