//! Active XML peers (Sec. 7 of *Exchanging Intensional XML Data*).
//!
//! A peer is a node of the simulated Web-service world: it persists
//! intensional documents ([`Repository`]), enriches them by triggering
//! embedded calls, declares services over them, and exchanges SOAP
//! envelopes with other peers — every exchange passing through the
//! **Schema Enforcement module** that this reproduction is about:
//! verify the data against the agreed type, rewrite (materialize) it when
//! it does not conform, report an error when rewriting is impossible.
//!
//! [`Peer::send_document`] implements the Fig. 1 scenario directly: a
//! sender holding an intensional document materializes exactly what the
//! agreed exchange schema requires before shipping it.

#![warn(missing_docs)]

mod negotiate;
pub mod net;
mod peer;
mod repository;

pub use negotiate::{negotiate, negotiate_with_matrix, MatrixUse, Negotiation, Proposal};
pub use net::{envelope_handler, NetInvoker, NetPeer, RemotePeer, RECEIVE_METHOD};
pub use peer::{
    EnforceMode, EnforceOptions, InboundPolicy, Peer, PeerError, PeerServer, Query, RemoteInvoker,
};
pub use repository::{RepoError, Repository, UpdateOp};
