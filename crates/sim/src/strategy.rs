//! Pluggable answer strategies for simulated service providers.
//!
//! The paper's Def. 4 adversary may answer a call with *any* instance of
//! the declared output type. The scenarios make that adversary a
//! first-class, swappable policy: a [`Strategy`] decides what one
//! provider answers for one decoded call, and [`strategy_provider`]
//! adapts any strategy into a sim server handler with a per-provider
//! seeded RNG stream. Three opponents ship here, interchangeable per
//! seed:
//!
//! * [`RandomStrategy`] — random type-correct answers with seeded fault
//!   injection; draw-for-draw identical to the original hard-coded
//!   adversarial provider, so existing golden transcripts are unchanged;
//! * [`CrashingStrategy`] — serves normally for a while, then answers
//!   every call with a retryable service fault (a daemon that died and
//!   never comes back — the client's retry/deadline path does the rest);
//! * [`StrategicStrategy`] — the game-playing opponent: it solves the
//!   same [`PossibleGame`] the rewriter will solve and answers with
//!   [`worst_answer`]'s trapping word when one exists, forcing the
//!   worst type-correct outcome instead of stumbling into a good one.

use axml_core::adversary::{worst_answer, WorstAnswer};
use axml_core::awk::{Awk, AwkLimits};
use axml_core::possible::{target_of, PossibleGame};
use axml_net::wire::{FaultCode, WireFault};
use axml_schema::{
    generate_output_instance, generate_word_instance, Compiled, GenConfig, ITree,
};
use axml_services::soap;
use axml_support::rng::{RngExt, SeedableRng, StdRng};
use axml_support::sync::Mutex;
use axml_automata::Symbol;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One provider's answer policy. Implementations must be deterministic
/// given the call sequence and the `rng` stream they are handed.
pub trait Strategy: Send + Sync {
    /// Short name for transcripts and logs.
    fn name(&self) -> &'static str;

    /// Answers one decoded call: either a result forest (encoded as a
    /// SOAP response by the adapter) or a service fault.
    fn answer(
        &self,
        compiled: &Compiled,
        method: &str,
        params: &[ITree],
        rng: &mut StdRng,
    ) -> Result<Vec<ITree>, WireFault>;
}

/// Adapts a [`Strategy`] into a sim server handler: decodes the SOAP
/// envelope, hands the call to the strategy under a per-provider RNG
/// seeded from `seed` (same derivation the original adversarial provider
/// used), and encodes the answer.
pub fn strategy_provider(
    compiled: Arc<Compiled>,
    seed: u64,
    strategy: Arc<dyn Strategy>,
) -> Arc<dyn axml_net::Handler> {
    let rng = Mutex::new(StdRng::seed_from_u64(seed ^ 0xad7e_25a1));
    Arc::new(move |_id: u64, envelope: &str| -> Result<String, WireFault> {
        let message = soap::decode(envelope)
            .map_err(|e| WireFault::new(FaultCode::Client, format!("bad envelope: {e}")))?;
        let soap::Message::Request { method, params } = message else {
            return Err(WireFault::new(FaultCode::Client, "expected a call request"));
        };
        let mut rng = rng.lock();
        let result = strategy.answer(&compiled, &method, &params, &mut rng)?;
        Ok(soap::response(&result).to_xml())
    })
}

/// Random type-correct answers with seeded fault injection. The draw
/// order per request — fault?, retryable?, then the instance — is the
/// contract the golden transcripts pin; do not reorder.
#[derive(Debug, Clone)]
pub struct RandomStrategy {
    /// Probability a call is answered with an injected service fault
    /// (half of them retryable) instead of data.
    pub fault_prob: f64,
}

impl Strategy for RandomStrategy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn answer(
        &self,
        compiled: &Compiled,
        method: &str,
        _params: &[ITree],
        rng: &mut StdRng,
    ) -> Result<Vec<ITree>, WireFault> {
        if rng.random_bool(self.fault_prob) {
            let f = WireFault::new(FaultCode::Server, "injected service failure");
            return Err(if rng.random_bool(0.5) { f.retryable() } else { f });
        }
        let output = sig_output(compiled, method)?;
        generate_output_instance(compiled, &output, rng, &GenConfig::default())
            .map_err(|e| WireFault::new(FaultCode::Server, e.to_string()))
    }
}

/// Serves like [`RandomStrategy`] (without injected faults) for the first
/// `up_for` calls, then answers everything with a retryable service
/// fault: a daemon that crashed and never restarts. Clients burn their
/// retry budget against it and must fail *typed* within their bounds.
#[derive(Debug)]
pub struct CrashingStrategy {
    /// Calls served before the crash.
    pub up_for: u64,
    served: AtomicU64,
}

impl CrashingStrategy {
    /// A provider that crashes after `up_for` served calls.
    pub fn after(up_for: u64) -> CrashingStrategy {
        CrashingStrategy {
            up_for,
            served: AtomicU64::new(0),
        }
    }
}

impl Strategy for CrashingStrategy {
    fn name(&self) -> &'static str {
        "crashing"
    }

    fn answer(
        &self,
        compiled: &Compiled,
        method: &str,
        _params: &[ITree],
        rng: &mut StdRng,
    ) -> Result<Vec<ITree>, WireFault> {
        if self.served.fetch_add(1, Ordering::Relaxed) >= self.up_for {
            return Err(
                WireFault::new(FaultCode::Server, "service crashed and will not recover")
                    .retryable(),
            );
        }
        let output = sig_output(compiled, method)?;
        generate_output_instance(compiled, &output, rng, &GenConfig::default())
            .map_err(|e| WireFault::new(FaultCode::Server, e.to_string()))
    }
}

/// The game-playing opponent. It is built over the same invocation
/// context the rewriter faces (the word containing the call and the
/// target content model) and solves the [`PossibleGame`] once; per
/// method it then answers with [`worst_answer`]'s word — the trapping
/// answer when the graph admits one — realized as a concrete instance.
/// Methods without a fork in the context (the game never consults the
/// adversary about them) fall back to random type-correct answers.
pub struct StrategicStrategy {
    game: PossibleGame,
    answers: Mutex<BTreeMap<Symbol, Option<WorstAnswer>>>,
}

impl StrategicStrategy {
    /// Builds the opponent for one invocation context: `context` is the
    /// word the rewriter rewrites (e.g. `["title", "Get_Quote"]`),
    /// `target` the content model it must reach (e.g. `"title.price"`),
    /// `k` the expansion depth. Fails if the context or target does not
    /// compile over the schema's alphabet.
    pub fn new(
        compiled: &Compiled,
        context: &[&str],
        target: &str,
        k: u32,
    ) -> Result<StrategicStrategy, String> {
        let word = context
            .iter()
            .map(|n| {
                compiled
                    .alphabet()
                    .lookup(n)
                    .ok_or_else(|| format!("unknown context symbol '{n}'"))
            })
            .collect::<Result<Vec<Symbol>, String>>()?;
        let awk = Awk::build(&word, compiled, k, &AwkLimits::default())
            .map_err(|e| format!("context expansion failed: {e}"))?;
        let mut alphabet = compiled.alphabet().clone();
        let regex = axml_automata::Regex::parse(target, &mut alphabet)
            .map_err(|e| format!("bad target '{target}': {e}"))?;
        if alphabet.len() != compiled.alphabet().len() {
            return Err(format!("target '{target}' uses symbols outside the schema"));
        }
        let game = PossibleGame::solve(awk, target_of(&regex, compiled.alphabet().len()));
        Ok(StrategicStrategy {
            game,
            answers: Mutex::new(BTreeMap::new()),
        })
    }

    /// The memoized worst answer for one function symbol.
    fn worst_for(&self, func: Symbol) -> Option<WorstAnswer> {
        self.answers
            .lock()
            .entry(func)
            .or_insert_with(|| worst_answer(&self.game, func))
            .clone()
    }
}

impl Strategy for StrategicStrategy {
    fn name(&self) -> &'static str {
        "strategic"
    }

    fn answer(
        &self,
        compiled: &Compiled,
        method: &str,
        _params: &[ITree],
        rng: &mut StdRng,
    ) -> Result<Vec<ITree>, WireFault> {
        let func = compiled
            .alphabet()
            .lookup(method)
            .ok_or_else(|| WireFault::new(FaultCode::Client, format!("unknown method '{method}'")))?;
        match self.worst_for(func) {
            Some(worst) => generate_word_instance(compiled, &worst.word, rng, &GenConfig::default())
                .map_err(|e| WireFault::new(FaultCode::Server, e.to_string())),
            None => {
                let output = sig_output(compiled, method)?;
                generate_output_instance(compiled, &output, rng, &GenConfig::default())
                    .map_err(|e| WireFault::new(FaultCode::Server, e.to_string()))
            }
        }
    }
}

/// The declared output type of `method`, as a typed fault when absent.
fn sig_output(
    compiled: &Compiled,
    method: &str,
) -> Result<axml_automata::Regex, WireFault> {
    let sym = compiled
        .alphabet()
        .lookup(method)
        .ok_or_else(|| WireFault::new(FaultCode::Client, format!("unknown method '{method}'")))?;
    compiled
        .sig(sym)
        .map(|s| s.output.clone())
        .ok_or_else(|| WireFault::new(FaultCode::Client, format!("'{method}' is not a function")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_schema::{validate_output_instance, NoOracle, Schema};

    fn marketplace_compiled() -> Arc<Compiled> {
        Arc::new(
            Compiled::new(
                Schema::builder()
                    .element("offer", "title.price")
                    .data_element("title")
                    .data_element("price")
                    .data_element("apology")
                    .function("Get_Quote", "title", "price|apology|Get_Quote")
                    .build()
                    .unwrap(),
                &NoOracle,
            )
            .unwrap(),
        )
    }

    fn call(compiled: &Compiled, strategy: &dyn Strategy, seed: u64) -> Result<Vec<ITree>, WireFault> {
        let mut rng = StdRng::seed_from_u64(seed);
        strategy.answer(compiled, "Get_Quote", &[ITree::text("x")], &mut rng)
    }

    #[test]
    fn random_answers_are_type_correct_and_deterministic() {
        let c = marketplace_compiled();
        let s = RandomStrategy { fault_prob: 0.0 };
        let a = call(&c, &s, 5).unwrap();
        let b = call(&c, &s, 5).unwrap();
        assert_eq!(a, b);
        let dfa = &c.sig_of("Get_Quote").output_dfa;
        validate_output_instance(&a, dfa, &c).unwrap();
    }

    #[test]
    fn crashing_strategy_flips_to_retryable_faults() {
        let c = marketplace_compiled();
        let s = CrashingStrategy::after(2);
        assert!(call(&c, &s, 1).is_ok());
        assert!(call(&c, &s, 2).is_ok());
        let fault = call(&c, &s, 3).unwrap_err();
        assert!(fault.retryable, "a crashed daemon's fault invites retries");
        assert!(call(&c, &s, 4).is_err(), "it never recovers");
    }

    #[test]
    fn strategic_strategy_answers_the_trapping_word() {
        let c = marketplace_compiled();
        let s = StrategicStrategy::new(&c, &["title", "Get_Quote"], "title.price", 1).unwrap();
        let forest = call(&c, &s, 7).unwrap();
        // The trapping answer for this game is the single `apology`.
        assert_eq!(forest.len(), 1);
        assert!(forest[0].to_xml().to_xml().contains("apology"));
        // Still a word of the output type — the adversary is type-correct.
        validate_output_instance(&forest, &c.sig_of("Get_Quote").output_dfa, &c).unwrap();
    }

    #[test]
    fn strategic_strategy_falls_back_for_unforked_methods() {
        let c = Arc::new(
            Compiled::new(
                Schema::builder()
                    .element("exhibit", "title.date")
                    .data_element("title")
                    .data_element("date")
                    .function("Get_Date", "title", "date")
                    .build()
                    .unwrap(),
                &NoOracle,
            )
            .unwrap(),
        );
        // Context without any call: the game never consults the adversary,
        // so the strategy answers randomly (here: the only word, `date`).
        let s = StrategicStrategy::new(&c, &["title", "date"], "title.date", 1).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let forest = s.answer(&c, "Get_Date", &[], &mut rng).unwrap();
        validate_output_instance(&forest, &c.sig_of("Get_Date").output_dfa, &c).unwrap();
    }

    #[test]
    fn provider_adapter_serves_soap_roundtrips() {
        let c = marketplace_compiled();
        let handler = strategy_provider(
            Arc::clone(&c),
            11,
            Arc::new(RandomStrategy { fault_prob: 0.0 }),
        );
        let envelope = soap::request("Get_Quote", &[ITree::text("x")]).to_xml();
        let a = handler.handle(1, &envelope).unwrap();
        // Same seed, fresh adapter: byte-identical stream.
        let handler2 = strategy_provider(
            Arc::clone(&c),
            11,
            Arc::new(RandomStrategy { fault_prob: 0.0 }),
        );
        assert_eq!(a, handler2.handle(1, &envelope).unwrap());
        assert!(a.contains("result"));
    }
}
