//! Declarative construction of multi-peer sim topologies.
//!
//! Every scenario used to wire its cast by hand: build a [`Peer`], wrap
//! it in [`envelope_handler`], register it with the world under a
//! metrics registry, then build one pooled client stack per edge. A
//! [`Topology`] factors that wiring out so the Fig. 1 exchange, the
//! marketplace chain, and the soak fleet all assemble the same way:
//!
//! ```ignore
//! let topo = Topology::new(&world, compiled).with_client_template(base);
//! let receiver = topo.peer("receiver.example.org");     // listening peer
//! let provider = topo.serve("provider.example.org", h); // custom handler
//! let sender   = topo.local_peer("sender.example.org"); // client-only
//! let link     = topo.remote("sender.example.org", "receiver.example.org");
//! ```
//!
//! Construction draws nothing from the world RNG, so assembling a cast
//! through a topology is transcript-identical to hand wiring with the
//! same configurations.

use crate::world::{SimServerConfig, SimWorld};
use axml_net::{ClientConfig, NetClient};
use axml_peer::{envelope_handler, Peer, RemotePeer};
use axml_schema::Compiled;
use std::sync::Arc;

/// A listening peer node: the real enforcement pipeline served as a sim
/// actor, plus the registry its `server.*` metrics land in.
pub struct PeerNode {
    /// The endpoint the node listens on (also its peer name).
    pub endpoint: String,
    /// The peer behind the endpoint (repository, declared services).
    pub peer: Arc<Peer>,
    /// Server-side metrics registry (accounting identity checks read it).
    pub metrics: axml_obs::Registry,
}

/// One client edge: a pooled [`RemotePeer`] stack from a named caller to
/// an endpoint, plus the registry its `client.*` metrics land in.
pub struct Link {
    /// The remote peer the edge calls into.
    pub remote: RemotePeer,
    /// Client-side metrics registry (retry-bound checks read it).
    pub metrics: axml_obs::Registry,
}

/// Builds peers, custom services, and client edges over one [`SimWorld`]
/// and one shared vocabulary.
pub struct Topology<'w> {
    world: &'w SimWorld,
    compiled: Arc<Compiled>,
    client_template: ClientConfig,
}

impl<'w> Topology<'w> {
    /// A topology over `world` with the given shared vocabulary and
    /// default client settings.
    pub fn new(world: &'w SimWorld, compiled: Arc<Compiled>) -> Topology<'w> {
        Topology {
            world,
            compiled,
            client_template: ClientConfig::default(),
        }
    }

    /// Sets the client configuration template every [`Topology::remote`]
    /// edge starts from (its `name` and `metrics` are overridden per
    /// edge).
    pub fn with_client_template(mut self, template: ClientConfig) -> Topology<'w> {
        self.client_template = template;
        self
    }

    /// The shared vocabulary.
    pub fn compiled(&self) -> &Arc<Compiled> {
        &self.compiled
    }

    /// A peer that exists only as a caller: it has a repository and can
    /// enforce, but listens on no endpoint.
    pub fn local_peer(&self, name: &str) -> Arc<Peer> {
        self.local_peer_with(name, Arc::new(axml_services::Registry::new()))
    }

    /// Like [`Topology::local_peer`] but over a caller-supplied service
    /// registry (e.g. local services under ACLs, subject to churn).
    pub fn local_peer_with(
        &self,
        name: &str,
        services: Arc<axml_services::Registry>,
    ) -> Arc<Peer> {
        Arc::new(Peer::new(name, Arc::clone(&self.compiled), services))
    }

    /// A listening peer: the real [`envelope_handler`] pipeline behind
    /// `endpoint`, with a fresh service registry and metrics registry.
    pub fn peer(&self, endpoint: &str) -> PeerNode {
        self.peer_with(endpoint, Arc::new(axml_services::Registry::new()))
    }

    /// Like [`Topology::peer`] but over a caller-supplied service
    /// registry (e.g. pre-populated with declared services and ACLs).
    pub fn peer_with(&self, endpoint: &str, services: Arc<axml_services::Registry>) -> PeerNode {
        let peer = Arc::new(Peer::new(endpoint, Arc::clone(&self.compiled), services));
        let metrics = self.serve(endpoint, envelope_handler(Arc::clone(&peer)));
        PeerNode {
            endpoint: endpoint.to_owned(),
            peer,
            metrics,
        }
    }

    /// Registers an arbitrary handler (e.g. a [`crate::strategy`]
    /// provider) at `endpoint` and returns its server metrics registry.
    pub fn serve(&self, endpoint: &str, handler: Arc<dyn axml_net::Handler>) -> axml_obs::Registry {
        let metrics = axml_obs::Registry::new();
        self.world.listen(
            endpoint,
            handler,
            SimServerConfig {
                name: endpoint.to_owned(),
                metrics: metrics.clone(),
                ..SimServerConfig::default()
            },
        );
        metrics
    }

    /// A pooled client edge from the named caller to `endpoint`, built
    /// from the client template.
    pub fn remote(&self, from: &str, endpoint: &str) -> Link {
        let metrics = axml_obs::Registry::new();
        let config = ClientConfig {
            name: from.to_owned(),
            metrics: metrics.clone(),
            ..self.client_template.clone()
        };
        let remote = RemotePeer::from_client(NetClient::with_transport(
            endpoint,
            self.world.transport(from),
            self.world.clock(),
            config,
        ));
        Link { remote, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::exchange_schema;
    use crate::world::FaultPlan;
    use axml_peer::Query;
    use axml_schema::ITree;
    use axml_services::ServiceDef;

    #[test]
    fn topology_wires_a_roundtrip_exchange() {
        let world = SimWorld::new(3, FaultPlan::default());
        let topo = Topology::new(&world, exchange_schema());
        let receiver = topo.peer("r.example.org");
        let sender = topo.local_peer("s.example.org");
        let link = topo.remote("s.example.org", "r.example.org");
        let doc = ITree::elem(
            "r",
            vec![ITree::elem(
                "exhibit",
                vec![ITree::data("title", "monet"), ITree::data("date", "mon")],
            )],
        );
        link.remote
            .send_document(&sender, "program", &doc, topo.compiled())
            .unwrap();
        assert_eq!(receiver.peer.repository.load("program").unwrap(), doc);
        let snap = receiver.metrics.snapshot();
        assert_eq!(
            snap.counter("server.requests_total"),
            snap.counter("server.responses_ok_total") + snap.counter("server.faults_total"),
        );
        assert!(link.metrics.snapshot().counter("client.calls_total") >= 1);
    }

    #[test]
    fn declared_services_survive_the_peer_with_path() {
        let world = SimWorld::new(4, FaultPlan::default());
        let topo = Topology::new(&world, exchange_schema());
        let node = topo.peer("dates.example.org");
        node.peer.declare(
            ServiceDef::new("Get_Date", "title", "date"),
            Query::Const(vec![ITree::data("date", "mon")]),
        );
        let caller = topo.local_peer("caller.example.org");
        let link = topo.remote("caller.example.org", "dates.example.org");
        let out = link
            .remote
            .invoke_service(&caller, "Get_Date", &[ITree::data("title", "x")])
            .unwrap();
        assert!(!out.is_empty());
    }
}
