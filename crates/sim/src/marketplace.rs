//! The marketplace scenario: continuation-style quote chains across a
//! fleet of seeded peers, with registry churn mid-exchange.
//!
//! A shopper holds a `catalog` whose offers may leave the price
//! intensional in two ways:
//!
//! * `Get_Quote` — a *search-engine style* service whose output type is
//!   `price|apology|Get_Quote`: a provider may answer with a price, an
//!   apology (type-correct, but nothing downstream can repair it), or a
//!   **continuation** — another `Get_Quote` call. The shopper's
//!   [`RoutingInvoker`] routes each successive hop to the next provider
//!   round-robin, so a chain of continuations walks across the fleet
//!   until some peer answers extensionally or the expansion depth `k`
//!   runs out;
//! * `Get_Appraisal` — a *local* service resolved through the shopper's
//!   own UDDI/ACL [`axml_services::Registry`] under a principal. This is
//!   the churn target: mid-exchange, the scenario may deregister the
//!   listing or revoke the principal's grant, and every later appraisal
//!   must fail with the registry's typed error.
//!
//! Each provider answers through a pluggable [`Strategy`]: random
//! type-correct data, a crash-after-N daemon, or the strategic
//! game-graph opponent that picks the worst type-correct answer
//! (`apology`) wherever the graph admits one. Everything — topology
//! size, document shape, fault schedule (including one-direction
//! partitions), churn point, per-peer strategies — derives from one
//! seed, and the run serializes to a byte-reproducible transcript
//! checked against the same invariants as the Fig. 1 scenario.

use crate::scenario::{Mode, Outcome, ScenarioReport};
use crate::strategy::{
    strategy_provider, CrashingStrategy, RandomStrategy, StrategicStrategy, Strategy,
};
use crate::topology::{Link, Topology};
use crate::world::{Crash, FaultPlan, Partition, SimWorld};
use axml_core::invoke::{InvokeError, Invoker};
use axml_core::rewrite::{RewriteReport, Rewriter};
use axml_core::solve_cache::SolveCache;
use axml_net::ClientConfig;
use axml_peer::{NetInvoker, Peer, PeerError};
use axml_schema::{validate, Compiled, ITree, NoOracle, Schema};
use axml_support::rng::{RngExt, SeedableRng, StdRng};
use std::sync::Arc;
use std::time::Duration;

/// The shopper (sender) client name.
pub const SHOPPER: &str = "shopper.example.org";
/// The buyer daemon that receives the enforced catalog.
pub const BUYER: &str = "buyer.example.org";
/// The principal the shopper presents to its local registry.
pub const PRINCIPAL: &str = "shopper";

/// Endpoint of the `i`-th marketplace provider.
pub fn market_endpoint(i: usize) -> String {
    format!("market{i}.example.org")
}

/// What one provider peer answers with.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyKind {
    /// Random type-correct answers with seeded fault injection.
    Random {
        /// Probability a call is answered with an injected fault.
        fault_prob: f64,
    },
    /// Serves `up_for` calls, then faults forever.
    Crashing {
        /// Calls served before the crash.
        up_for: u64,
    },
    /// The game-graph opponent: worst type-correct answers.
    Strategic,
}

impl StrategyKind {
    /// Builds the concrete strategy for this kind.
    pub fn build(&self, compiled: &Compiled) -> Arc<dyn Strategy> {
        match self {
            StrategyKind::Random { fault_prob } => Arc::new(RandomStrategy {
                fault_prob: *fault_prob,
            }),
            StrategyKind::Crashing { up_for } => Arc::new(CrashingStrategy::after(*up_for)),
            StrategyKind::Strategic => Arc::new(
                StrategicStrategy::new(compiled, &["title", "Get_Quote"], "title.price", 1)
                    .expect("marketplace strategic context compiles"),
            ),
        }
    }

    /// Short name for transcripts.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Random { .. } => "random",
            StrategyKind::Crashing { .. } => "crashing",
            StrategyKind::Strategic => "strategic",
        }
    }
}

/// How the shopper's local registry is churned mid-exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// The provider withdraws its UDDI listing.
    Deregister,
    /// The ACL grant for the shopper's principal is revoked.
    Revoke,
}

/// Registry churn schedule: after `after_calls` dispatched invocations,
/// apply `kind` to the local `Get_Appraisal` listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Invocations dispatched before the churn fires.
    pub after_calls: u64,
    /// What the churn does.
    pub kind: ChurnKind,
}

/// Everything one marketplace run depends on; derive it wholesale from a
/// seed with [`MarketplaceConfig::from_seed`], or pin fields.
#[derive(Debug, Clone)]
pub struct MarketplaceConfig {
    /// Seed for the world, document, and providers.
    pub seed: u64,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Safe or possible enforcement.
    pub mode: Mode,
    /// Document to ship; `None` generates one from the seed.
    pub doc: Option<ITree>,
    /// Number of offers when generating the document.
    pub offers: usize,
    /// Per-provider answer strategies (also fixes the fleet size).
    pub strategies: Vec<StrategyKind>,
    /// Expansion depth (bounds continuation-chain length).
    pub k: u32,
    /// Registry churn, if any.
    pub churn: Option<ChurnPlan>,
    /// Client attempts per call.
    pub attempts: u32,
    /// Client total per-call deadline.
    pub deadline: Duration,
}

impl MarketplaceConfig {
    /// Derives a full marketplace run from one seed: fleet size and
    /// strategies, document shape, fault schedule (with one-direction
    /// partitions), churn point — the distribution the property batch
    /// explores.
    pub fn from_seed(seed: u64) -> MarketplaceConfig {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3a9c_e77e_ba2a);
        let peers = rng.random_range(2..=5usize);
        let offers = rng.random_range(0..8usize);
        let k = rng.random_range(1..=3u32);
        let mut plan = FaultPlan {
            jitter_ns: rng.random_range(0..2_000_000),
            drop_prob: rng.random_unit() * 0.05,
            dup_prob: rng.random_unit() * 0.05,
            delay_prob: rng.random_unit() * 0.2,
            extra_delay_ns: rng.random_range(0..50_000_000),
            reset_prob: rng.random_unit() * 0.02,
            busy_prob: rng.random_unit() * 0.10,
            ..FaultPlan::default()
        };
        if rng.random_bool(0.3) {
            let from_ns = rng.random_range(0..1_000_000_000);
            plan.partitions.push(Partition {
                a: SHOPPER.to_owned(),
                b: market_endpoint(rng.random_range(0..peers)),
                from_ns,
                until_ns: from_ns + rng.random_range(0..300_000_000),
                oneway: rng.random_bool(0.5),
            });
        }
        if rng.random_bool(0.25) {
            plan.crashes.push(Crash {
                endpoint: if rng.random_bool(0.5) {
                    market_endpoint(rng.random_range(0..peers))
                } else {
                    BUYER.to_owned()
                },
                at_ns: rng.random_range(0..1_500_000_000),
                down_ns: rng.random_range(0..400_000_000),
            });
        }
        let mode = if rng.random_bool(0.3) { Mode::Safe } else { Mode::Possible };
        let churn = if rng.random_bool(0.5) {
            Some(ChurnPlan {
                after_calls: rng.random_range(0..6),
                kind: if rng.random_bool(0.5) { ChurnKind::Deregister } else { ChurnKind::Revoke },
            })
        } else {
            None
        };
        let strategies = (0..peers)
            .map(|_| {
                let u = rng.random_unit();
                if u < 0.7 {
                    StrategyKind::Random {
                        fault_prob: rng.random_unit() * 0.15,
                    }
                } else if u < 0.85 {
                    StrategyKind::Crashing {
                        up_for: rng.random_range(0..5),
                    }
                } else {
                    StrategyKind::Strategic
                }
            })
            .collect();
        MarketplaceConfig {
            seed,
            plan,
            mode,
            doc: None,
            offers,
            strategies,
            k,
            churn,
            attempts: 4,
            deadline: Duration::from_secs(5),
        }
    }
}

/// The marketplace vocabulary: a catalog of offers whose prices may be
/// left as `Get_Quote` continuations or local `Get_Appraisal` calls.
pub fn marketplace_schema() -> Arc<Compiled> {
    static SCHEMA: std::sync::OnceLock<Arc<Compiled>> = std::sync::OnceLock::new();
    SCHEMA
        .get_or_init(|| {
            Arc::new(
                Compiled::new(
                    Schema::builder()
                        .element("catalog", "offer*")
                        .element("offer", "title.price")
                        .data_element("title")
                        .data_element("price")
                        .data_element("apology")
                        .function("Get_Quote", "title", "price|apology|Get_Quote")
                        .function("Get_Appraisal", "title", "price")
                        .build()
                        .expect("static marketplace schema"),
                    &NoOracle,
                )
                .expect("static marketplace schema compiles"),
            )
        })
        .clone()
}

/// One offer with its price materialized, or left as a call to `func`.
pub fn offer(title: &str, func: Option<&str>) -> ITree {
    let price = match func {
        None => ITree::data("price", "100"),
        Some(f) => ITree::func(f, vec![ITree::data("title", title)]),
    };
    ITree::elem("offer", vec![ITree::data("title", title), price])
}

pub(crate) fn generated_catalog(rng: &mut StdRng, offers: usize, allow_quotes: bool) -> ITree {
    let children = (0..offers)
        .map(|_| {
            let len = rng.random_range(1..=5usize);
            let title: String = (0..len).map(|_| rng.random_range('a'..='z')).collect();
            let kinds: &[Option<&str>] = if allow_quotes {
                &[None, Some("Get_Appraisal"), Some("Get_Quote")]
            } else {
                &[None, Some("Get_Appraisal")]
            };
            offer(&title, kinds[rng.random_range(0..kinds.len())])
        })
        .collect();
    ITree::elem("catalog", children)
}

/// The shopper's invoker: `Get_Quote` hops round-robin across the
/// provider fleet (each continuation lands on the next peer), everything
/// else resolves through the local UDDI/ACL registry under the shopper's
/// principal — with the churn plan applied mid-exchange.
pub struct RoutingInvoker<'a> {
    caller: &'a Arc<Peer>,
    links: &'a [Link],
    registry: &'a axml_services::Registry,
    churn: Option<ChurnPlan>,
    dispatched: u64,
    hop: usize,
    churned: bool,
}

impl<'a> RoutingInvoker<'a> {
    /// A fresh routing invoker over the provider fleet and the local
    /// registry.
    pub fn new(
        caller: &'a Arc<Peer>,
        links: &'a [Link],
        registry: &'a axml_services::Registry,
        churn: Option<ChurnPlan>,
    ) -> RoutingInvoker<'a> {
        RoutingInvoker {
            caller,
            links,
            registry,
            churn,
            dispatched: 0,
            hop: 0,
            churned: false,
        }
    }

    /// Network hops made so far (continuation-chain length across peers).
    pub fn hops(&self) -> usize {
        self.hop
    }
}

impl Invoker for RoutingInvoker<'_> {
    fn invoke(&mut self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        if let Some(churn) = self.churn {
            if !self.churned && self.dispatched >= churn.after_calls {
                self.churned = true;
                match churn.kind {
                    ChurnKind::Deregister => {
                        self.registry.deregister("Get_Appraisal");
                    }
                    ChurnKind::Revoke => self.registry.revoke(PRINCIPAL, "Get_Appraisal"),
                }
            }
        }
        self.dispatched += 1;
        if function == "Get_Quote" {
            let link = &self.links[self.hop % self.links.len()];
            self.hop += 1;
            NetInvoker {
                caller: self.caller,
                remote: &link.remote,
            }
            .invoke(function, params)
        } else {
            self.registry.call(Some(PRINCIPAL), function, params)
        }
    }
}

fn client_template(config: &MarketplaceConfig) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(100),
        read_timeout: Duration::from_millis(200),
        attempts: config.attempts,
        backoff: Duration::from_millis(10),
        deadline: config.deadline,
        seed: config.seed,
        ..ClientConfig::default()
    }
}

/// Runs one seeded marketplace exchange and checks every invariant.
pub fn run_marketplace(config: &MarketplaceConfig) -> ScenarioReport {
    let world = SimWorld::new(config.seed, config.plan.clone());
    let topo =
        Topology::new(&world, marketplace_schema()).with_client_template(client_template(config));
    let compiled = Arc::clone(topo.compiled());

    // Buyer: the real peer pipeline, stores the enforced catalog.
    let buyer = topo.peer(BUYER);

    // Provider fleet: one strategy daemon per configured peer.
    let provider_metrics: Vec<axml_obs::Registry> = config
        .strategies
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            let seed = config.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1);
            topo.serve(
                &market_endpoint(i),
                strategy_provider(Arc::clone(&compiled), seed, kind.build(&compiled)),
            )
        })
        .collect();
    let provider_links: Vec<Link> = (0..config.strategies.len())
        .map(|i| topo.remote(SHOPPER, &market_endpoint(i)))
        .collect();

    // Shopper: local registry serving Get_Appraisal under an ACL (the
    // churn target), plus the pooled client edges.
    let registry = Arc::new(axml_services::Registry::new());
    registry.register_fn(
        axml_services::ServiceDef::new("Get_Appraisal", "title", "price"),
        |_params| Ok(vec![ITree::data("price", "100")]),
    );
    registry.grant(PRINCIPAL, "Get_Appraisal");
    let shopper = topo.local_peer_with(SHOPPER, Arc::clone(&registry));
    let buyer_link = topo.remote(SHOPPER, BUYER);

    let doc = match &config.doc {
        Some(doc) => doc.clone(),
        None => {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0xca7a_106d);
            generated_catalog(&mut rng, config.offers, config.mode == Mode::Possible)
        }
    };
    let cache_metrics = axml_obs::Registry::new();
    let cache = SolveCache::with_registry(64, &cache_metrics);
    let exchange = || -> Result<(ITree, RewriteReport), PeerError> {
        let mut invoker =
            RoutingInvoker::new(&shopper, &provider_links, &registry, config.churn);
        let mut rewriter = Rewriter::new(&compiled).with_k(config.k).with_cache(&cache);
        let (sent, report) = if validate(&doc, &compiled).is_ok() {
            (doc.clone(), RewriteReport::default())
        } else {
            match config.mode {
                Mode::Safe => rewriter.rewrite_safe(&doc, &mut invoker)?,
                Mode::Possible => rewriter.rewrite_possible(&doc, &mut invoker)?,
            }
        };
        buyer_link
            .remote
            .send_document(&shopper, "market", &sent, &compiled)?;
        Ok((sent, report))
    };
    let outcome = match exchange() {
        Ok((sent, report)) => Outcome::Delivered { sent, report },
        Err(e) => Outcome::Failed {
            error: e.to_string(),
        },
    };
    world.run_until_idle();

    // ---- Invariants --------------------------------------------------
    let mut violations = Vec::new();
    match &outcome {
        Outcome::Delivered { sent, .. } => {
            if let Err(e) = validate(sent, &compiled) {
                violations.push(format!(
                    "delivered catalog does not conform to the marketplace schema: {e}"
                ));
            }
            match buyer.peer.repository.load("market") {
                Ok(stored) if &stored == sent => {}
                Ok(_) => violations
                    .push("buyer stored a catalog different from the one sent".to_owned()),
                Err(_) => violations
                    .push("exchange reported delivered but the buyer stored nothing".to_owned()),
            }
        }
        Outcome::Failed { error } => {
            if error.trim().is_empty() {
                violations.push("exchange failed without a typed error".to_owned());
            }
        }
    }
    let mut client_edges: Vec<(String, &axml_obs::Registry)> = provider_links
        .iter()
        .enumerate()
        .map(|(i, l)| (format!("client.market{i}"), &l.metrics))
        .collect();
    client_edges.push(("client.buyer".to_owned(), &buyer_link.metrics));
    for (who, m) in &client_edges {
        let snap = m.snapshot();
        let calls = snap.counter("client.calls_total");
        let attempts = snap.counter("client.attempts_total");
        let retries = snap.counter("client.retries_total");
        if attempts > calls * config.attempts as u64 {
            violations.push(format!(
                "{who}: {attempts} attempts exceed the bound of {} ({calls} calls × {} attempts)",
                calls * config.attempts as u64,
                config.attempts
            ));
        }
        if retries > calls * (config.attempts as u64 - 1) {
            violations.push(format!(
                "{who}: {retries} retries exceed the bound of {} ({calls} calls × {})",
                calls * (config.attempts as u64 - 1),
                config.attempts - 1
            ));
        }
    }
    let mut servers: Vec<(String, &axml_obs::Registry)> = provider_metrics
        .iter()
        .enumerate()
        .map(|(i, m)| (format!("server.market{i}"), m))
        .collect();
    servers.push(("server.buyer".to_owned(), &buyer.metrics));
    for (who, m) in &servers {
        let snap = m.snapshot();
        let requests = snap.counter("server.requests_total");
        let ok = snap.counter("server.responses_ok_total");
        let faults = snap.counter("server.faults_total");
        if requests != ok + faults {
            violations.push(format!(
                "{who}: accounting identity broken: {requests} requests != {ok} ok + {faults} faults"
            ));
        }
    }
    {
        let snap = cache_metrics.snapshot();
        let lookups = snap.counter("solve_cache.lookups_total");
        let hits = snap.counter("solve_cache.hits_total");
        let misses = snap.counter("solve_cache.misses_total");
        if lookups != hits + misses {
            violations.push(format!(
                "solver cache identity broken: {lookups} lookups != {hits} hits + {misses} misses"
            ));
        }
    }

    // ---- Transcript --------------------------------------------------
    let mut t = String::new();
    t.push_str(&format!(
        "marketplace seed={} mode={:?} offers={} k={} churn={:?} strategies=[{}]\n",
        config.seed,
        config.mode,
        config.offers,
        config.k,
        config.churn,
        config
            .strategies
            .iter()
            .map(StrategyKind::name)
            .collect::<Vec<_>>()
            .join(","),
    ));
    t.push_str("=== events ===\n");
    t.push_str(&world.event_log());
    t.push_str("\n=== outcome ===\n");
    match &outcome {
        Outcome::Delivered { sent, report } => {
            t.push_str(&format!("delivered {}\n", sent.to_xml().to_xml()));
            t.push_str(&format!(
                "report invoked={:?} wasted_calls={} games={}\n",
                report.invoked, report.wasted_calls, report.games
            ));
        }
        Outcome::Failed { error } => {
            t.push_str(&format!("failed: {error}\n"));
        }
    }
    t.push_str("=== metrics ===\n");
    for (who, m) in client_edges.iter().chain(servers.iter()) {
        t.push_str(&format!("{who}: {}\n", m.snapshot().to_json()));
    }
    {
        let snap = cache_metrics.snapshot();
        t.push_str(&format!(
            "cache: lookups={} hits={} misses={} insertions={} evictions={} entries={}\n",
            snap.counter("solve_cache.lookups_total"),
            snap.counter("solve_cache.hits_total"),
            snap.counter("solve_cache.misses_total"),
            snap.counter("solve_cache.insertions_total"),
            snap.counter("solve_cache.evictions_total"),
            snap.gauge("solve_cache.entries"),
        ));
    }
    for v in &violations {
        t.push_str(&format!("VIOLATION: {v}\n"));
    }

    ScenarioReport {
        outcome,
        violations,
        transcript: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pinned(seed: u64, mode: Mode, doc: ITree, strategies: Vec<StrategyKind>) -> MarketplaceConfig {
        MarketplaceConfig {
            seed,
            plan: FaultPlan::default(),
            mode,
            doc: Some(doc),
            offers: 0,
            strategies,
            k: 3,
            churn: None,
            attempts: 4,
            deadline: Duration::from_secs(5),
        }
    }

    #[test]
    fn clean_possible_run_with_random_fleet_delivers() {
        let doc = ITree::elem(
            "catalog",
            vec![offer("laptop", Some("Get_Quote")), offer("phone", None)],
        );
        let config = pinned(
            21,
            Mode::Possible,
            doc,
            vec![
                StrategyKind::Random { fault_prob: 0.0 },
                StrategyKind::Random { fault_prob: 0.0 },
            ],
        );
        let report = run_marketplace(&config);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // Random fleets may answer apology (typed failure) or price; this
        // pinned seed happens to deliver — if it ever flips, the transcript
        // is still deterministic, which is what matters here.
        match &report.outcome {
            Outcome::Delivered { sent, .. } => validate(sent, &marketplace_schema()).unwrap(),
            Outcome::Failed { error } => assert!(!error.is_empty()),
        }
    }

    #[test]
    fn strategic_fleet_forces_a_typed_possible_failure() {
        let doc = ITree::elem("catalog", vec![offer("laptop", Some("Get_Quote"))]);
        let config = pinned(21, Mode::Possible, doc, vec![StrategyKind::Strategic]);
        let report = run_marketplace(&config);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        match &report.outcome {
            Outcome::Failed { error } => {
                assert!(
                    error.contains("all rewriting branches failed"),
                    "strategic apology must exhaust the rewriter, got: {error}"
                );
            }
            Outcome::Delivered { sent, .. } => {
                panic!("strategic opponent must not let this deliver: {}", sent.to_xml().to_xml())
            }
        }
    }

    #[test]
    fn safe_mode_serves_appraisals_from_the_local_registry() {
        let doc = ITree::elem(
            "catalog",
            vec![offer("laptop", Some("Get_Appraisal")), offer("phone", None)],
        );
        let config = pinned(
            22,
            Mode::Safe,
            doc,
            vec![StrategyKind::Random { fault_prob: 0.0 }],
        );
        let report = run_marketplace(&config);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        match &report.outcome {
            Outcome::Delivered { sent, report } => {
                validate(sent, &marketplace_schema()).unwrap();
                assert_eq!(report.invoked, vec!["Get_Appraisal".to_owned()]);
            }
            Outcome::Failed { error } => panic!("local appraisal failed: {error}"),
        }
    }

    #[test]
    fn churn_fails_later_appraisals_typed() {
        let doc = ITree::elem(
            "catalog",
            vec![
                offer("laptop", Some("Get_Appraisal")),
                offer("phone", Some("Get_Appraisal")),
            ],
        );
        for kind in [ChurnKind::Deregister, ChurnKind::Revoke] {
            let mut config = pinned(
                23,
                Mode::Safe,
                doc.clone(),
                vec![StrategyKind::Random { fault_prob: 0.0 }],
            );
            config.churn = Some(ChurnPlan {
                after_calls: 1,
                kind,
            });
            let report = run_marketplace(&config);
            assert!(report.violations.is_empty(), "{:?}", report.violations);
            match &report.outcome {
                Outcome::Failed { error } => assert!(
                    error.contains("not registered") || error.contains("ACL"),
                    "churn {kind:?} must surface the registry's typed error, got: {error}"
                ),
                Outcome::Delivered { .. } => {
                    panic!("churn {kind:?} after 1 call must fail the second appraisal")
                }
            }
        }
    }

    #[test]
    fn continuation_chains_hop_across_the_fleet() {
        // One provider always answers with a continuation-style hop is
        // impossible to pin with the random strategy, so drive the
        // RoutingInvoker directly: every Get_Quote goes to the next link.
        let world = SimWorld::new(31, FaultPlan::default());
        let topo = Topology::new(&world, marketplace_schema());
        let compiled = Arc::clone(topo.compiled());
        let metrics: Vec<axml_obs::Registry> = (0..3)
            .map(|i| {
                topo.serve(
                    &market_endpoint(i),
                    strategy_provider(
                        Arc::clone(&compiled),
                        31 + i as u64,
                        Arc::new(RandomStrategy { fault_prob: 0.0 }),
                    ),
                )
            })
            .collect();
        let links: Vec<Link> = (0..3).map(|i| topo.remote(SHOPPER, &market_endpoint(i))).collect();
        let registry = Arc::new(axml_services::Registry::new());
        let shopper = topo.local_peer_with(SHOPPER, Arc::clone(&registry));
        let mut invoker = RoutingInvoker::new(&shopper, &links, &registry, None);
        let params = [ITree::data("title", "x")];
        for _ in 0..4 {
            invoker.invoke("Get_Quote", &params).unwrap();
        }
        assert_eq!(invoker.hops(), 4);
        // Round-robin: 4 hops over 3 peers — peer 0 served twice.
        assert!(metrics[0].snapshot().counter("server.requests_total") >= 2);
        assert!(metrics[1].snapshot().counter("server.requests_total") >= 1);
        assert!(metrics[2].snapshot().counter("server.requests_total") >= 1);
    }

    #[test]
    fn seeded_marketplace_runs_are_byte_identical() {
        let config = MarketplaceConfig::from_seed(99);
        let a = run_marketplace(&config);
        let b = run_marketplace(&config);
        assert_eq!(a.transcript, b.transcript);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }
}
