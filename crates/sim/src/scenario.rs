//! The Fig. 1 scenario under simulation: a three-party intensional
//! exchange with seeded faults, checked against the exchange invariants.
//!
//! The cast mirrors the paper's opening example:
//!
//! * a **sender** holds an intensional document (`exhibit` dates left as
//!   embedded `Get_Date` calls) and must ship it under an agreed
//!   exchange schema that requires materialized dates;
//! * a **provider** daemon serves `Get_Date` — here *adversarially*: it
//!   answers with random but type-correct data, or injects service
//!   faults (retryable and not), all drawn from the scenario seed;
//! * a **receiver** daemon runs the real peer enforcement pipeline
//!   ([`axml_peer::envelope_handler`]) and stores what arrives.
//!
//! The sender enforces the exchange schema through the real rewriter
//! (safe mode per Fig. 3, or possible mode per Fig. 9), materializing
//! calls over the simulated network via the real `NetClient`, then ships
//! the result — while the world drops, delays, duplicates, reorders and
//! cuts frames, partitions links, and crash-restarts daemons.
//!
//! [`run_scenario`] executes one such exchange and checks the
//! **invariants** that must hold under *any* fault schedule:
//!
//! 1. a delivered document conforms to the exchange schema and is stored
//!    intact at the receiver — faults may fail an exchange, never corrupt
//!    one (safe rewritings conform regardless of the injected answers);
//! 2. a failed exchange reports a *typed* error (a [`PeerError`]
//!    variant) — never a hang (the world's horizon converts a would-hang
//!    into a panic), never a silent drop;
//! 3. client retries stay within the configured attempt bound;
//! 4. each daemon's accounting identity holds:
//!    `server.requests_total = responses_ok_total + faults_total`;
//! 5. the solver cache's identity holds:
//!    `lookups = hits + misses`.
//!
//! Everything the run observes is serialized into a transcript —
//! event log, rewrite decisions, outcome, metric snapshots — that is
//! byte-identical across runs of the same seed.

use crate::strategy::{strategy_provider, RandomStrategy};
use crate::topology::Topology;
use crate::world::{Crash, FaultPlan, Partition, SimWorld};
use axml_core::rewrite::{RewriteReport, Rewriter};
use axml_core::solve_cache::SolveCache;
use axml_net::ClientConfig;
use axml_peer::{NetInvoker, PeerError};
use axml_schema::{validate, Compiled, ITree, NoOracle, Schema};
use axml_support::rng::{RngExt, SeedableRng, StdRng};
use std::sync::Arc;
use std::time::Duration;

/// Which rewriting the sender's enforcement step runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Safe rewriting (Sec. 4, Fig. 3): guaranteed before any call.
    Safe,
    /// Possible rewriting (Sec. 5, Fig. 9): speculative, may backtrack.
    Possible,
}

/// Everything one scenario run depends on. Derive it wholesale from a
/// seed with [`ScenarioConfig::from_seed`], or pin fields for a fixed
/// (e.g. golden) scenario.
#[derive(Clone)]
pub struct ScenarioConfig {
    /// Seed for the world RNG, the document, and the provider's answers.
    pub seed: u64,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Safe or possible enforcement.
    pub mode: Mode,
    /// Document to ship; `None` generates one from the seed.
    pub doc: Option<ITree>,
    /// Number of `exhibit` subtrees when generating the document.
    pub exhibits: usize,
    /// Probability the provider answers a call with an injected service
    /// fault instead of data.
    pub provider_fault_prob: f64,
    /// Client attempts per call.
    pub attempts: u32,
    /// Client total per-call deadline.
    pub deadline: Duration,
}

/// The endpoint names the scenario registers in the world.
pub const SENDER: &str = "sender.example.org";
/// Provider daemon endpoint (serves `Get_Date`).
pub const PROVIDER: &str = "provider.example.org";
/// Receiver daemon endpoint (stores shipped documents).
pub const RECEIVER: &str = "receiver.example.org";

impl ScenarioConfig {
    /// Derives a full scenario — fault schedule, document shape, provider
    /// behavior — from one seed. This is the distribution the CI seed
    /// batch and the property harness explore.
    pub fn from_seed(seed: u64) -> ScenarioConfig {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce0_a11a_5eed);
        let mut plan = FaultPlan {
            jitter_ns: rng.random_range(0..2_000_000),
            drop_prob: rng.random_unit() * 0.05,
            dup_prob: rng.random_unit() * 0.05,
            delay_prob: rng.random_unit() * 0.2,
            extra_delay_ns: rng.random_range(0..50_000_000),
            reset_prob: rng.random_unit() * 0.02,
            busy_prob: rng.random_unit() * 0.10,
            ..FaultPlan::default()
        };
        if rng.random_bool(0.25) {
            let from_ns = rng.random_range(0..1_000_000_000);
            plan.partitions.push(Partition {
                a: SENDER.to_owned(),
                b: if rng.random_bool(0.5) { PROVIDER } else { RECEIVER }.to_owned(),
                from_ns,
                until_ns: from_ns + rng.random_range(0..300_000_000),
                oneway: false,
            });
        }
        if rng.random_bool(0.25) {
            plan.crashes.push(Crash {
                endpoint: if rng.random_bool(0.5) { PROVIDER } else { RECEIVER }.to_owned(),
                at_ns: rng.random_range(0..1_500_000_000),
                down_ns: rng.random_range(0..400_000_000),
            });
        }
        ScenarioConfig {
            seed,
            plan,
            mode: if seed % 2 == 0 { Mode::Safe } else { Mode::Possible },
            doc: None,
            exhibits: rng.random_range(0..6usize),
            provider_fault_prob: rng.random_unit() * 0.15,
            attempts: 4,
            deadline: Duration::from_secs(5),
        }
    }
}

/// The seed-derived fault schedule alone (handy for tests composing
/// their own scenarios).
pub fn scenario_plan(seed: u64) -> FaultPlan {
    ScenarioConfig::from_seed(seed).plan
}

/// How one exchange ended.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The enforced document was shipped and accepted.
    Delivered {
        /// The materialized document as sent.
        sent: ITree,
        /// The sender's rewrite decisions.
        report: RewriteReport,
    },
    /// The exchange failed with a typed error.
    Failed {
        /// The error, rendered (always a [`PeerError`] variant).
        error: String,
    },
}

/// Everything one run produced.
pub struct ScenarioReport {
    /// How the exchange ended.
    pub outcome: Outcome,
    /// Invariant violations — empty means the run passed. Each entry is a
    /// self-contained description.
    pub violations: Vec<String>,
    /// The full deterministic transcript: event log, outcome, rewrite
    /// decisions, metric snapshots. Byte-identical for equal seeds.
    pub transcript: String,
}

/// The shared vocabulary (the Fig. 1 exchange schema): listings of
/// exhibits whose dates may be left intensional as `Get_Date` calls,
/// while the exchange type demands materialized `title.date` pairs.
pub fn exchange_schema() -> Arc<Compiled> {
    static SCHEMA: std::sync::OnceLock<Arc<Compiled>> = std::sync::OnceLock::new();
    SCHEMA
        .get_or_init(|| {
            Arc::new(
                Compiled::new(
                    Schema::builder()
                        .element("r", "exhibit*")
                        .element("exhibit", "title.date")
                        .data_element("title")
                        .data_element("date")
                        .function("Get_Date", "title", "date")
                        .build()
                        .expect("static exchange schema"),
                    &NoOracle,
                )
                .expect("static exchange schema compiles"),
            )
        })
        .clone()
}

/// One exhibit: the date either materialized or left as an embedded call.
pub fn exhibit(title: &str, intensional: bool) -> ITree {
    let date = if intensional {
        ITree::func("Get_Date", vec![ITree::data("title", title)])
    } else {
        ITree::data("date", "mon")
    };
    ITree::elem("exhibit", vec![ITree::data("title", title), date])
}

fn generated_doc(rng: &mut StdRng, exhibits: usize) -> ITree {
    let children = (0..exhibits)
        .map(|_| {
            let len = rng.random_range(1..=5usize);
            let title: String = (0..len).map(|_| rng.random_range('a'..='z')).collect();
            let intensional = rng.random_bool(0.5);
            exhibit(&title, intensional)
        })
        .collect();
    ITree::elem("r", children)
}

/// The adversarial provider: answers `Get_Date` with *random but
/// type-correct* data, or an injected fault (half of them retryable) —
/// all drawn deterministically from the scenario seed. Now a thin alias
/// for [`RandomStrategy`] under the strategy adapter; the RNG draws are
/// identical, so transcripts are unchanged.
fn adversarial_provider(
    compiled: Arc<Compiled>,
    seed: u64,
    fault_prob: f64,
) -> Arc<dyn axml_net::Handler> {
    strategy_provider(compiled, seed, Arc::new(RandomStrategy { fault_prob }))
}

/// The client template every scenario edge starts from (the topology
/// overrides `name` and `metrics` per edge).
fn client_template(config: &ScenarioConfig) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(100),
        read_timeout: Duration::from_millis(200),
        attempts: config.attempts,
        backoff: Duration::from_millis(10),
        deadline: config.deadline,
        seed: config.seed,
        ..ClientConfig::default()
    }
}

/// Runs one seeded Fig. 1 exchange and checks every invariant.
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioReport {
    let world = SimWorld::new(config.seed, config.plan.clone());
    let topo = Topology::new(&world, exchange_schema()).with_client_template(client_template(config));
    let compiled = Arc::clone(topo.compiled());

    // Receiver: the real peer pipeline served as a sim actor.
    let receiver = topo.peer(RECEIVER);
    let receiver_peer = Arc::clone(&receiver.peer);
    let receiver_metrics = receiver.metrics.clone();

    // Provider: adversarial Get_Date daemon.
    let provider_metrics = topo.serve(
        PROVIDER,
        adversarial_provider(Arc::clone(&compiled), config.seed, config.provider_fault_prob),
    );

    // Sender: the real pooled client stack over the sim transport.
    let sender_peer = topo.local_peer(SENDER);
    let provider_link = topo.remote(SENDER, PROVIDER);
    let receiver_link = topo.remote(SENDER, RECEIVER);
    let (provider_remote, receiver_remote) = (&provider_link.remote, &receiver_link.remote);
    let provider_client_metrics = provider_link.metrics.clone();
    let receiver_client_metrics = receiver_link.metrics.clone();

    // Enforce the exchange schema through the real rewriter, materializing
    // embedded calls over the simulated network; then ship the result.
    let doc = match &config.doc {
        Some(doc) => doc.clone(),
        None => {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0xd0c5_eed);
            generated_doc(&mut rng, config.exhibits)
        }
    };
    let cache_metrics = axml_obs::Registry::new();
    let cache = SolveCache::with_registry(64, &cache_metrics);
    let exchange = || -> Result<(ITree, RewriteReport), PeerError> {
        let mut invoker = NetInvoker {
            caller: &sender_peer,
            remote: provider_remote,
        };
        let mut rewriter = Rewriter::new(&compiled).with_k(1).with_cache(&cache);
        let (sent, report) = if validate(&doc, &compiled).is_ok() {
            (doc.clone(), RewriteReport::default())
        } else {
            match config.mode {
                Mode::Safe => rewriter.rewrite_safe(&doc, &mut invoker)?,
                Mode::Possible => rewriter.rewrite_possible(&doc, &mut invoker)?,
            }
        };
        receiver_remote.send_document(&sender_peer, "program", &sent, &compiled)?;
        Ok((sent, report))
    };
    let outcome = match exchange() {
        Ok((sent, report)) => Outcome::Delivered { sent, report },
        Err(e) => Outcome::Failed {
            error: e.to_string(),
        },
    };
    world.run_until_idle();

    // ---- Invariants --------------------------------------------------
    let mut violations = Vec::new();
    match &outcome {
        Outcome::Delivered { sent, .. } => {
            if let Err(e) = validate(sent, &compiled) {
                violations.push(format!(
                    "delivered document does not conform to the exchange schema: {e}"
                ));
            }
            match receiver_peer.repository.load("program") {
                Ok(stored) if &stored == sent => {}
                Ok(_) => violations.push(
                    "receiver stored a document different from the one sent".to_owned(),
                ),
                Err(_) => violations.push(
                    "exchange reported delivered but the receiver stored nothing".to_owned(),
                ),
            }
        }
        Outcome::Failed { error } => {
            if error.trim().is_empty() {
                violations.push("exchange failed without a typed error".to_owned());
            }
        }
    }
    for (who, m) in [
        ("provider-client", &provider_client_metrics),
        ("receiver-client", &receiver_client_metrics),
    ] {
        let snap = m.snapshot();
        let calls = snap.counter("client.calls_total");
        let attempts = snap.counter("client.attempts_total");
        let retries = snap.counter("client.retries_total");
        if attempts > calls * config.attempts as u64 {
            violations.push(format!(
                "{who}: {attempts} attempts exceed the bound of {} ({calls} calls × {} attempts)",
                calls * config.attempts as u64,
                config.attempts
            ));
        }
        if retries > calls * (config.attempts as u64 - 1) {
            violations.push(format!(
                "{who}: {retries} retries exceed the bound of {} ({calls} calls × {})",
                calls * (config.attempts as u64 - 1),
                config.attempts - 1
            ));
        }
    }
    for (who, m) in [("provider", &provider_metrics), ("receiver", &receiver_metrics)] {
        let snap = m.snapshot();
        let requests = snap.counter("server.requests_total");
        let ok = snap.counter("server.responses_ok_total");
        let faults = snap.counter("server.faults_total");
        if requests != ok + faults {
            violations.push(format!(
                "{who}: accounting identity broken: {requests} requests != {ok} ok + {faults} faults"
            ));
        }
    }
    {
        let snap = cache_metrics.snapshot();
        let lookups = snap.counter("solve_cache.lookups_total");
        let hits = snap.counter("solve_cache.hits_total");
        let misses = snap.counter("solve_cache.misses_total");
        if lookups != hits + misses {
            violations.push(format!(
                "solver cache identity broken: {lookups} lookups != {hits} hits + {misses} misses"
            ));
        }
    }

    // ---- Transcript --------------------------------------------------
    let mut t = String::new();
    t.push_str(&format!(
        "scenario seed={} mode={:?} exhibits={}\n",
        config.seed, config.mode, config.exhibits
    ));
    t.push_str("=== events ===\n");
    t.push_str(&world.event_log());
    t.push_str("\n=== outcome ===\n");
    match &outcome {
        Outcome::Delivered { sent, report } => {
            t.push_str(&format!("delivered {}\n", sent.to_xml().to_xml()));
            t.push_str(&format!(
                "report invoked={:?} wasted_calls={} games={}\n",
                report.invoked, report.wasted_calls, report.games
            ));
        }
        Outcome::Failed { error } => {
            t.push_str(&format!("failed: {error}\n"));
        }
    }
    t.push_str("=== metrics ===\n");
    for (who, m) in [
        ("client.provider", &provider_client_metrics),
        ("client.receiver", &receiver_client_metrics),
        ("server.provider", &provider_metrics),
        ("server.receiver", &receiver_metrics),
    ] {
        t.push_str(&format!("{who}: {}\n", m.snapshot().to_json()));
    }
    {
        // The cache's `*_ns` histograms measure real wall time inside the
        // solver — the one place the sim clock cannot reach — so the
        // transcript carries only its (deterministic) counters.
        let snap = cache_metrics.snapshot();
        t.push_str(&format!(
            "cache: lookups={} hits={} misses={} insertions={} evictions={} entries={}\n",
            snap.counter("solve_cache.lookups_total"),
            snap.counter("solve_cache.hits_total"),
            snap.counter("solve_cache.misses_total"),
            snap.counter("solve_cache.insertions_total"),
            snap.counter("solve_cache.evictions_total"),
            snap.gauge("solve_cache.entries"),
        ));
    }
    for v in &violations {
        t.push_str(&format!("VIOLATION: {v}\n"));
    }

    ScenarioReport {
        outcome,
        violations,
        transcript: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_scenario_delivers_and_passes_invariants() {
        let config = ScenarioConfig {
            seed: 7,
            plan: FaultPlan::default(),
            mode: Mode::Safe,
            doc: Some(ITree::elem(
                "r",
                vec![exhibit("monet", true), exhibit("rodin", false)],
            )),
            exhibits: 0,
            provider_fault_prob: 0.0,
            attempts: 4,
            deadline: Duration::from_secs(5),
        };
        let report = run_scenario(&config);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        match &report.outcome {
            Outcome::Delivered { sent, report } => {
                validate(sent, &exchange_schema()).unwrap();
                assert_eq!(report.invoked, vec!["Get_Date".to_owned()]);
            }
            Outcome::Failed { error } => panic!("fault-free run failed: {error}"),
        }
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let config = ScenarioConfig::from_seed(42);
        let a = run_scenario(&config);
        let b = run_scenario(&config);
        assert_eq!(a.transcript, b.transcript);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn virtual_time_advances_without_wall_time() {
        let world = SimWorld::new(1, FaultPlan::default());
        let clock = world.clock();
        let wall = std::time::Instant::now();
        clock.sleep(Duration::from_secs(60));
        assert_eq!(world.now_ns(), 60 * 1_000_000_000);
        assert!(wall.elapsed() < Duration::from_secs(1));
    }
}
