//! Fleet-scale soak: a hundred peers, a thousand exchanges, one seed.
//!
//! [`run_soak`] builds a fleet of N marketplace peers in **one**
//! simulated world. Every peer both *serves* — `Get_Quote` answered by a
//! seed-assigned [`Strategy`](crate::strategy::Strategy) (random,
//! crashing, or the strategic game-graph opponent), every other envelope
//! (service calls, document receipt) through the real
//! [`axml_peer::envelope_handler`] pipeline — and *initiates*: each
//! exchange picks a sender and a receiver, generates a catalog, enforces
//! it through the real rewriter (continuation-style `Get_Quote` chains
//! hop across the fleet; local `Get_Appraisal` calls resolve through the
//! sender's own UDDI/ACL registry, which churn toggles between and
//! during exchanges), and ships it — all under the full fault taxonomy:
//! drops, duplicates, delays, resets, busy pushback, symmetric *and*
//! one-direction partitions, and crash-restarts, in virtual time.
//!
//! Invariants asserted fleet-wide on every run:
//!
//! * each delivered catalog conforms to the schema and is stored intact
//!   at its receiver; each failed exchange carries a typed error;
//! * every client edge stays within its retry/attempt bounds;
//! * every peer's `server.requests = ok + faults` identity holds, and so
//!   does the fleet-wide aggregate sum;
//! * the shared solver cache's `lookups = hits + misses` identity holds
//!   across all exchanges (one cache serves every sender, so this is a
//!   cross-exchange, fleet-wide identity);
//! * `delivered + failed = exchanges`;
//! * the run is byte-reproducible: one `u64` seed determines the whole
//!   transcript, down to the event-log digest.
//!
//! The transcript is compact on purpose — one line per exchange,
//! aggregate metrics, and an FNV-64 digest of the event log instead of
//! the log itself — so a 100-peer, 1000-exchange soak still diffs
//! cleanly when a seed regresses.

use crate::marketplace::{
    generated_catalog, marketplace_schema, ChurnKind, ChurnPlan, RoutingInvoker, StrategyKind,
    PRINCIPAL,
};
use crate::scenario::Mode;
use crate::strategy::strategy_provider;
use crate::topology::{Link, Topology};
use crate::world::{Crash, FaultPlan, Partition, SimWorld};
use axml_core::rewrite::Rewriter;
use axml_core::solve_cache::SolveCache;
use axml_net::ClientConfig;
use axml_peer::{envelope_handler, Peer, PeerError};
use axml_schema::{validate, ITree};
use axml_services::{soap, Registry, ServiceDef};
use axml_support::hash::fnv64;
use axml_support::rng::{RngExt, SeedableRng, StdRng};
use std::sync::Arc;
use std::time::Duration;

/// Endpoint of the `i`-th fleet peer.
pub fn fleet_endpoint(i: usize) -> String {
    format!("peer{i:03}.fleet.example.org")
}

/// Everything one soak run depends on.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// The one seed: fault schedule, fleet strategies, every document.
    pub seed: u64,
    /// Fleet size (every peer both serves and initiates).
    pub peers: usize,
    /// Exchanges driven through the fleet.
    pub exchanges: usize,
    /// Client attempts per call.
    pub attempts: u32,
    /// Client total per-call deadline.
    pub deadline: Duration,
}

impl SoakConfig {
    /// The full fleet gate: 100 peers, 1000 exchanges.
    pub fn fleet(seed: u64) -> SoakConfig {
        SoakConfig {
            seed,
            peers: 100,
            exchanges: 1000,
            attempts: 4,
            deadline: Duration::from_secs(5),
        }
    }

    /// A reduced soak for tight CI budgets: same machinery, smaller
    /// fleet.
    pub fn reduced(seed: u64) -> SoakConfig {
        SoakConfig {
            seed,
            peers: 16,
            exchanges: 120,
            attempts: 4,
            deadline: Duration::from_secs(5),
        }
    }
}

/// Everything one soak run produced.
pub struct SoakReport {
    /// Exchanges that delivered.
    pub delivered: usize,
    /// Exchanges that failed (with a typed error).
    pub failed: usize,
    /// Per-peer strategies the seed assigned (fleet composition).
    pub strategies: Vec<StrategyKind>,
    /// Invariant violations — empty means the soak passed.
    pub violations: Vec<String>,
    /// Compact deterministic transcript (byte-identical per seed).
    pub transcript: String,
}

/// Derives the soak's fault schedule from the seed: mild per-frame fault
/// probabilities (most exchanges should complete), several partitions —
/// half of them one-direction — and several crash-restarts spread over
/// the first virtual minutes. The horizon is raised far beyond the
/// default: a soak legitimately simulates hours.
fn soak_plan(rng: &mut StdRng, peers: usize) -> FaultPlan {
    let mut plan = FaultPlan {
        jitter_ns: rng.random_range(0..2_000_000),
        drop_prob: rng.random_unit() * 0.02,
        dup_prob: rng.random_unit() * 0.02,
        delay_prob: rng.random_unit() * 0.1,
        extra_delay_ns: rng.random_range(0..20_000_000),
        reset_prob: rng.random_unit() * 0.01,
        busy_prob: rng.random_unit() * 0.05,
        horizon_ns: 36_000_000_000_000, // 10 virtual hours
        ..FaultPlan::default()
    };
    for _ in 0..(peers / 8).max(1) {
        let from_ns = rng.random_range(0..600_000_000_000);
        plan.partitions.push(Partition {
            a: fleet_endpoint(rng.random_range(0..peers)),
            b: fleet_endpoint(rng.random_range(0..peers)),
            from_ns,
            until_ns: from_ns + rng.random_range(0..2_000_000_000),
            oneway: rng.random_bool(0.5),
        });
    }
    for _ in 0..(peers / 10).max(1) {
        plan.crashes.push(Crash {
            endpoint: fleet_endpoint(rng.random_range(0..peers)),
            at_ns: rng.random_range(0..600_000_000_000),
            down_ns: rng.random_range(0..3_000_000_000),
        });
    }
    plan
}

/// A fleet peer's handler: `Get_Quote` requests go to the strategy
/// daemon, every other envelope (declared-service calls, `axml.receive`
/// shipments, undecodable junk) to the real peer pipeline.
fn fleet_handler(
    peer: Arc<Peer>,
    strategy: Arc<dyn axml_net::Handler>,
) -> Arc<dyn axml_net::Handler> {
    let pipeline = envelope_handler(peer);
    Arc::new(move |id: u64, envelope: &str| match soap::decode(envelope) {
        Ok(soap::Message::Request { ref method, .. }) if method == "Get_Quote" => {
            strategy.handle(id, envelope)
        }
        _ => pipeline.handle(id, envelope),
    })
}

fn register_appraisal(registry: &Registry) {
    registry.register_fn(ServiceDef::new("Get_Appraisal", "title", "price"), |_| {
        Ok(vec![ITree::data("price", "100")])
    });
}

/// Runs one seeded fleet soak and checks every invariant.
pub fn run_soak(config: &SoakConfig) -> SoakReport {
    assert!(config.peers >= 2, "a soak needs at least two peers");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xf1ee_750a_c0de);
    let plan = soak_plan(&mut rng, config.peers);
    let world = SimWorld::new(config.seed, plan);
    let topo = Topology::new(&world, marketplace_schema()).with_client_template(ClientConfig {
        connect_timeout: Duration::from_millis(100),
        read_timeout: Duration::from_millis(200),
        attempts: config.attempts,
        backoff: Duration::from_millis(10),
        deadline: config.deadline,
        seed: config.seed,
        ..ClientConfig::default()
    });
    let compiled = Arc::clone(topo.compiled());

    // ---- The fleet ---------------------------------------------------
    // Every peer: a UDDI/ACL registry listing Get_Appraisal (the churn
    // target), the real enforcement pipeline, and a seed-assigned
    // Get_Quote strategy.
    let mut strategies = Vec::with_capacity(config.peers);
    let mut registries = Vec::with_capacity(config.peers);
    let mut peers = Vec::with_capacity(config.peers);
    let mut server_metrics = Vec::with_capacity(config.peers);
    for i in 0..config.peers {
        let kind = {
            let u = rng.random_unit();
            if u < 0.7 {
                StrategyKind::Random {
                    fault_prob: rng.random_unit() * 0.1,
                }
            } else if u < 0.85 {
                StrategyKind::Crashing {
                    up_for: rng.random_range(0..20),
                }
            } else {
                StrategyKind::Strategic
            }
        };
        let registry = Arc::new(Registry::new());
        register_appraisal(&registry);
        registry.grant(PRINCIPAL, "Get_Appraisal");
        let endpoint = fleet_endpoint(i);
        let peer = topo.local_peer_with(&endpoint, Arc::clone(&registry));
        let provider_seed = config.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1);
        let metrics = topo.serve(
            &endpoint,
            fleet_handler(
                Arc::clone(&peer),
                strategy_provider(Arc::clone(&compiled), provider_seed, kind.build(&compiled)),
            ),
        );
        strategies.push(kind);
        registries.push(registry);
        peers.push(peer);
        server_metrics.push(metrics);
    }

    // One solver cache shared by every sender: the fleet-wide
    // lookups = hits + misses identity spans all exchanges.
    let cache_metrics = axml_obs::Registry::new();
    let cache = SolveCache::with_registry(256, &cache_metrics);

    // ---- The exchanges -----------------------------------------------
    let mut violations: Vec<String> = Vec::new();
    let mut lines: Vec<String> = Vec::with_capacity(config.exchanges);
    let mut delivered = 0usize;
    let mut failed = 0usize;
    for e in 0..config.exchanges {
        let sender = rng.random_range(0..config.peers);
        let receiver = {
            let r = rng.random_range(0..config.peers - 1);
            if r >= sender { r + 1 } else { r }
        };
        let mode = if rng.random_bool(0.3) { Mode::Safe } else { Mode::Possible };
        let offers = rng.random_range(0..4usize);
        let k = rng.random_range(1..=2u32);
        let doc = generated_catalog(&mut rng, offers, mode == Mode::Possible);
        // UDDI churn *between* exchanges: occasionally toggle the
        // sender's Get_Appraisal listing — withdraw it, or restore it
        // (re-granting, since a mid-exchange Revoke may have stripped
        // the ACL entry).
        let churned = if rng.random_bool(0.1) {
            let reg = &registries[sender];
            if reg.is_registered("Get_Appraisal") {
                reg.deregister("Get_Appraisal");
                "withdraw"
            } else {
                register_appraisal(reg);
                reg.grant(PRINCIPAL, "Get_Appraisal");
                "restore"
            }
        } else {
            "-"
        };
        // Churn *during* the exchange, inside the routing invoker, as in
        // the marketplace scenario.
        let churn = if rng.random_bool(0.1) {
            Some(ChurnPlan {
                after_calls: rng.random_range(0..4),
                kind: if rng.random_bool(0.5) { ChurnKind::Deregister } else { ChurnKind::Revoke },
            })
        } else {
            None
        };
        // The continuation fan-out: three provider edges; successive
        // Get_Quote hops rotate across them.
        let fanout: Vec<usize> = (0..3)
            .map(|_| {
                let p = rng.random_range(0..config.peers - 1);
                if p >= sender { p + 1 } else { p }
            })
            .collect();
        let sender_name = fleet_endpoint(sender);
        let fan_links: Vec<Link> = fanout
            .iter()
            .map(|&p| topo.remote(&sender_name, &fleet_endpoint(p)))
            .collect();
        let ship_link = topo.remote(&sender_name, &fleet_endpoint(receiver));

        let doc_name = format!("soak{e}");
        let result = (|| -> Result<ITree, PeerError> {
            let sender_peer = &peers[sender];
            let mut invoker =
                RoutingInvoker::new(sender_peer, &fan_links, &registries[sender], churn);
            let mut rewriter = Rewriter::new(&compiled).with_k(k).with_cache(&cache);
            let sent = if validate(&doc, &compiled).is_ok() {
                doc.clone()
            } else {
                match mode {
                    Mode::Safe => rewriter.rewrite_safe(&doc, &mut invoker)?.0,
                    Mode::Possible => rewriter.rewrite_possible(&doc, &mut invoker)?.0,
                }
            };
            ship_link
                .remote
                .send_document(sender_peer, &doc_name, &sent, &compiled)?;
            Ok(sent)
        })();
        world.run_until_idle();
        match result {
            Ok(sent) => {
                delivered += 1;
                if let Err(err) = validate(&sent, &compiled) {
                    violations.push(format!("x{e}: delivered catalog does not conform: {err}"));
                }
                match peers[receiver].repository.load(&doc_name) {
                    Ok(stored) if stored == sent => {}
                    Ok(_) => {
                        violations.push(format!("x{e}: receiver stored a different catalog"))
                    }
                    Err(_) => {
                        violations.push(format!("x{e}: delivered but receiver stored nothing"))
                    }
                }
                lines.push(format!(
                    "x{e} s={sender} r={receiver} mode={mode:?} k={k} offers={offers} churn={churned} outcome=delivered"
                ));
            }
            Err(error) => {
                failed += 1;
                let error = error.to_string();
                if error.trim().is_empty() {
                    violations.push(format!("x{e}: exchange failed without a typed error"));
                }
                lines.push(format!(
                    "x{e} s={sender} r={receiver} mode={mode:?} k={k} offers={offers} churn={churned} outcome=failed: {error}"
                ));
            }
        }
        // Per-edge retry/attempt bounds, checked while this exchange's
        // client edges are still alive.
        for (label, link) in fan_links
            .iter()
            .enumerate()
            .map(|(i, l)| (format!("x{e}.quote{i}"), l))
            .chain(std::iter::once((format!("x{e}.ship"), &ship_link)))
        {
            let snap = link.metrics.snapshot();
            let calls = snap.counter("client.calls_total");
            let attempts = snap.counter("client.attempts_total");
            let retries = snap.counter("client.retries_total");
            if attempts > calls * config.attempts as u64 {
                violations.push(format!(
                    "{label}: {attempts} attempts exceed bound {} ({calls} calls)",
                    calls * config.attempts as u64
                ));
            }
            if retries > calls * (config.attempts as u64 - 1) {
                violations.push(format!(
                    "{label}: {retries} retries exceed bound {}",
                    calls * (config.attempts as u64 - 1)
                ));
            }
        }
    }

    // ---- Fleet-wide invariants ---------------------------------------
    let (mut sum_requests, mut sum_ok, mut sum_faults) = (0u64, 0u64, 0u64);
    for (i, m) in server_metrics.iter().enumerate() {
        let snap = m.snapshot();
        let requests = snap.counter("server.requests_total");
        let ok = snap.counter("server.responses_ok_total");
        let faults = snap.counter("server.faults_total");
        if requests != ok + faults {
            violations.push(format!(
                "peer{i}: accounting identity broken: {requests} != {ok} + {faults}"
            ));
        }
        sum_requests += requests;
        sum_ok += ok;
        sum_faults += faults;
    }
    if sum_requests != sum_ok + sum_faults {
        violations.push(format!(
            "fleet: aggregate accounting identity broken: {sum_requests} != {sum_ok} + {sum_faults}"
        ));
    }
    let cache_snap = cache_metrics.snapshot();
    let lookups = cache_snap.counter("solve_cache.lookups_total");
    let hits = cache_snap.counter("solve_cache.hits_total");
    let misses = cache_snap.counter("solve_cache.misses_total");
    if lookups != hits + misses {
        violations.push(format!(
            "fleet solver cache identity broken: {lookups} != {hits} + {misses}"
        ));
    }
    if delivered + failed != config.exchanges {
        violations.push(format!(
            "exchange accounting broken: {delivered} delivered + {failed} failed != {}",
            config.exchanges
        ));
    }

    // ---- Transcript --------------------------------------------------
    let events = world.event_log();
    let mut t = String::new();
    t.push_str(&format!(
        "soak seed={} peers={} exchanges={} strategies=[{}]\n",
        config.seed,
        config.peers,
        config.exchanges,
        strategies.iter().map(StrategyKind::name).collect::<Vec<_>>().join(","),
    ));
    t.push_str("=== exchanges ===\n");
    for line in &lines {
        t.push_str(line);
        t.push('\n');
    }
    t.push_str("=== aggregate ===\n");
    t.push_str(&format!("delivered={delivered} failed={failed}\n"));
    t.push_str(&format!(
        "servers: requests={sum_requests} ok={sum_ok} faults={sum_faults}\n"
    ));
    t.push_str(&format!(
        "cache: lookups={lookups} hits={hits} misses={misses}\n"
    ));
    t.push_str(&format!(
        "events: count={} fnv64=0x{:016x}\n",
        events.lines().count(),
        fnv64(events.as_bytes())
    ));
    t.push_str(&format!("virtual_ns={}\n", world.now_ns()));
    for v in &violations {
        t.push_str(&format!("VIOLATION: {v}\n"));
    }

    SoakReport {
        delivered,
        failed,
        strategies,
        violations,
        transcript: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_soak_is_clean_and_reproducible() {
        let config = SoakConfig::reduced(7);
        let a = run_soak(&config);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.delivered + a.failed, config.exchanges);
        assert!(a.delivered > 0, "a mild fault schedule must deliver something");
        let b = run_soak(&config);
        assert_eq!(a.transcript, b.transcript);
    }

    #[test]
    fn tiny_soak_exercises_both_modes_and_churn() {
        let config = SoakConfig {
            seed: 11,
            peers: 4,
            exchanges: 60,
            attempts: 4,
            deadline: Duration::from_secs(5),
        };
        let report = run_soak(&config);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.transcript.contains("mode=Safe"));
        assert!(report.transcript.contains("mode=Possible"));
        assert!(
            report.transcript.contains("churn=withdraw")
                || report.transcript.contains("churn=restore"),
            "60 exchanges at 10% churn should toggle at least once"
        );
    }
}
