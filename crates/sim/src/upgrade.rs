//! Rolling-schema-upgrade scenario: persistent warm state under fleet
//! churn (DESIGN.md §11).
//!
//! A fleet of receiver daemons starts on one exchange-schema version
//! and upgrades peer-by-peer while a sender keeps shipping documents.
//! Before every send the sender consults the precomputed Sec. 6
//! [`CompatMatrix`] — persisted to and reloaded from an on-disk
//! [`Store`] — instead of solving schema games on the hot path:
//!
//! * a receiver on a *compatible* version gets the document, enforced
//!   into that version through the real rewriter (materializing
//!   `Get_Date` calls against a provider daemon over the simulated
//!   network);
//! * a receiver that upgraded to an *incompatible* version is vetoed
//!   by the matrix — the send is skipped, never attempted and failed.
//!
//! Halfway through, the sender "restarts": its solver cache is
//! persisted to the store, thrown away, and reloaded. The scenario
//! then asserts the warm restart is *exact*: zero cache misses after
//! the restart (every game the stable fleet needs was snapshotted),
//! and a static analysis through the reloaded cache is
//! statistic-identical to one through a cold cache (loaded games are
//! bit-equivalent to fresh solves).
//!
//! Invariants checked on every run:
//!
//! 1. **zero failed exchanges** — every attempted send is delivered
//!    and stored intact; incompatibilities surface as matrix vetoes,
//!    not runtime faults;
//! 2. every compatibility consult is answered by the matrix
//!    (`live_checks == 0` — no games on the hot path);
//! 3. vetoes happen exactly for the incompatible version, nowhere
//!    else;
//! 4. the restart resumes warm: snapshot entries reload without
//!    corruption and the post-restart rounds take zero cache misses;
//! 5. per-daemon accounting identities hold.
//!
//! The whole run is a pure function of its seed: the transcript —
//! upgrade schedule, per-send verdicts, event log, cache and store
//! counters — is byte-identical across runs and pinned by a golden
//! file.
//!
//! [`CompatMatrix`]: axml_store::CompatMatrix
//! [`Store`]: axml_store::Store

use crate::topology::Topology;
use crate::world::{FaultPlan, SimWorld};
use axml_core::rewrite::Rewriter;
use axml_core::solve_cache::SolveCache;
use axml_net::ClientConfig;
use axml_peer::{
    envelope_handler, negotiate_with_matrix, InboundPolicy, NetInvoker, Peer, Proposal,
};
use axml_schema::{validate, Compiled, ITree, NoOracle, Schema};
use axml_services::Registry as ServiceRegistry;
use axml_store::{CompatMatrix, Store};
use axml_support::hash::fnv64;
use axml_support::rng::{RngExt, SeedableRng, StdRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Sender endpoint.
pub const UPGRADE_SENDER: &str = "sender.upgrade.example.org";
/// Provider daemon endpoint (serves `Get_Date`).
pub const UPGRADE_PROVIDER: &str = "dates.upgrade.example.org";

/// Receiver endpoint for fleet slot `i`.
pub fn upgrade_endpoint(i: usize) -> String {
    format!("peer{i}.upgrade.example.org")
}

/// The versioned schema portfolio the fleet rolls through. All
/// versions share one vocabulary; they differ in how intensional an
/// `exhibit` may stay:
///
/// * `v1` — dates may be left as embedded `Get_Date` calls;
/// * `v2` — dates must be materialized (safe to upgrade to: `v1`
///   documents rewrite into it by invoking `Get_Date`);
/// * `v3` — additionally requires a `room` element no rewriting can
///   produce (incompatible: the matrix must veto sends to it).
pub fn upgrade_portfolio() -> Vec<(String, Schema)> {
    let version = |exhibit_model: &str| -> Schema {
        Schema::builder()
            .element("r", "exhibit*")
            .element("exhibit", exhibit_model)
            .data_element("title")
            .data_element("date")
            .data_element("room")
            .function("Get_Date", "title", "date")
            .build()
            .expect("static upgrade schema")
    };
    vec![
        ("v1".to_owned(), version("title.(Get_Date|date)")),
        ("v2".to_owned(), version("title.date")),
        ("v3".to_owned(), version("title.date.room")),
    ]
}

/// Everything one rolling-upgrade run depends on.
#[derive(Debug, Clone)]
pub struct UpgradeConfig {
    /// Seed for the world RNG, document shapes, and provider answers.
    pub seed: u64,
    /// Fleet size (receiver daemons).
    pub receivers: usize,
    /// Exchange rounds; every round ships one document to every
    /// receiver the matrix approves. Must leave room for the schedule:
    /// `receivers + 1` upgrade rounds plus at least one stable round
    /// before and after the restart.
    pub rounds: usize,
    /// Store directory; `None` uses (and removes) a unique temp dir.
    pub store_dir: Option<PathBuf>,
}

impl UpgradeConfig {
    /// The default fleet: 3 receivers, 8 rounds, ephemeral store.
    pub fn from_seed(seed: u64) -> UpgradeConfig {
        UpgradeConfig {
            seed,
            receivers: 3,
            rounds: 8,
            store_dir: None,
        }
    }
}

/// Everything one run produced.
pub struct UpgradeReport {
    /// Sends the matrix approved and the fleet delivered.
    pub delivered: usize,
    /// Sends the matrix vetoed (incompatible upgrade target).
    pub vetoed: usize,
    /// Invariant violations — empty means the run passed.
    pub violations: Vec<String>,
    /// Deterministic transcript, byte-identical for equal seeds.
    pub transcript: String,
}

/// One fleet slot: the daemon currently listening on the endpoint and
/// the version it runs.
struct FleetNode {
    endpoint: String,
    peer: Arc<Peer>,
    metrics: axml_obs::Registry,
    version: usize,
}

fn upgrade_doc(rng: &mut StdRng, exhibits: usize) -> ITree {
    let children = (0..exhibits)
        .map(|i| {
            let len = rng.random_range(1..=5usize);
            let title: String = (0..len).map(|_| rng.random_range('a'..='z')).collect();
            // Exhibit 0 is always intensional so every document forces
            // at least one materializing rewrite; the rest alternate,
            // keeping the set of children words small and recurring
            // (which is what makes the post-restart zero-miss
            // invariant provable).
            crate::scenario::exhibit(&title, i % 2 == 0)
        })
        .collect();
    ITree::elem("r", children)
}

/// Runs one seeded rolling-schema-upgrade and checks every invariant.
pub fn run_upgrade(config: &UpgradeConfig) -> UpgradeReport {
    assert!(
        config.rounds >= config.receivers + 3,
        "schedule needs receivers+1 upgrade rounds plus stable rounds around the restart"
    );
    let (dir, ephemeral) = match &config.store_dir {
        Some(d) => (d.clone(), false),
        None => (
            std::env::temp_dir().join(format!(
                "axml-upgrade-{}-{}",
                std::process::id(),
                config.seed
            )),
            true,
        ),
    };
    let store_metrics = axml_obs::Registry::new();
    let store = Store::open_with(&dir, &store_metrics).expect("store directory");

    let portfolio = upgrade_portfolio();
    let compiled: Vec<Arc<Compiled>> = portfolio
        .iter()
        .map(|(_, s)| Arc::new(Compiled::new(s.clone(), &NoOracle).expect("version compiles")))
        .collect();
    let sender_schema = &portfolio[0].1;
    let sender_fp = compiled[0].fingerprint();

    // The compatibility relation is computed offline, persisted, and —
    // crucially — *reloaded from disk* before the exchange loop: every
    // hot-path verdict below comes from the on-disk artifact.
    let matrix = CompatMatrix::build(&portfolio, "r", 1, &NoOracle).expect("matrix builds");
    store.persist_matrix(&matrix).expect("matrix persists");
    let matrix = store.load_matrix().expect("persisted matrix reloads");

    let world = SimWorld::new(config.seed, FaultPlan::default());
    let client_template = ClientConfig {
        connect_timeout: Duration::from_millis(100),
        read_timeout: Duration::from_millis(200),
        attempts: 4,
        backoff: Duration::from_millis(10),
        deadline: Duration::from_secs(5),
        seed: config.seed,
        ..ClientConfig::default()
    };
    let topo = Topology::new(&world, Arc::clone(&compiled[0])).with_client_template(client_template);
    let provider_metrics = topo.serve(
        UPGRADE_PROVIDER,
        crate::strategy::strategy_provider(
            Arc::clone(&compiled[0]),
            config.seed,
            Arc::new(crate::strategy::RandomStrategy { fault_prob: 0.0 }),
        ),
    );
    let sender = topo.local_peer(UPGRADE_SENDER);
    let provider_link = topo.remote(UPGRADE_SENDER, UPGRADE_PROVIDER);

    // Boot the fleet on v1. Receivers are wired by hand (not via
    // `Topology::peer`) because each runs its *own* schema version.
    let boot = |endpoint: &str, version: usize| -> (Arc<Peer>, axml_obs::Registry) {
        let peer = Arc::new(Peer::new(
            endpoint,
            Arc::clone(&compiled[version]),
            Arc::new(ServiceRegistry::new()),
        ));
        let metrics = topo.serve(endpoint, envelope_handler(Arc::clone(&peer)));
        (peer, metrics)
    };
    let mut fleet: Vec<FleetNode> = (0..config.receivers)
        .map(|i| {
            let endpoint = upgrade_endpoint(i);
            let (peer, metrics) = boot(&endpoint, 0);
            FleetNode {
                endpoint,
                peer,
                metrics,
                version: 0,
            }
        })
        .collect();

    // The sender's warm state: one solver cache shared across every
    // enforcement, swapped for a reloaded one at the restart round.
    let pre_metrics = axml_obs::Registry::new();
    let post_metrics = axml_obs::Registry::new();
    let mut cache = SolveCache::with_registry(64, &pre_metrics);
    let restart_round = config.receivers + 2;

    let mut t = String::new();
    t.push_str(&format!(
        "upgrade seed={} receivers={} rounds={}\n",
        config.seed, config.receivers, config.rounds
    ));
    t.push_str("=== matrix ===\n");
    t.push_str(&format!("k={} root={}\n", matrix.k(), matrix.root()));
    for from in matrix.names() {
        for to in matrix.names() {
            t.push_str(&format!(
                "{from}->{to}: {}\n",
                match matrix.can_send(from, to) {
                    Some(true) => "ok".to_owned(),
                    Some(false) => format!(
                        "no ({})",
                        matrix.reason(from, to).unwrap_or("unspecified")
                    ),
                    None => "unknown".to_owned(),
                }
            ));
        }
    }
    t.push_str("=== rounds ===\n");

    let mut violations = Vec::new();
    let mut delivered = 0usize;
    let mut vetoed = 0usize;
    let mut restart_loaded = 0usize;

    for round in 0..config.rounds {
        // Rolling upgrades: one daemon per round steps to v2, then the
        // first daemon steps again to the incompatible v3 — all before
        // the restart, so the post-restart fleet is stable.
        let upgrade_to = if round < config.receivers {
            Some((round, 1))
        } else if round == config.receivers {
            Some((0, 2))
        } else {
            None
        };
        if let Some((slot, version)) = upgrade_to {
            let endpoint = fleet[slot].endpoint.clone();
            let (peer, metrics) = boot(&endpoint, version);
            fleet[slot].peer = peer;
            fleet[slot].metrics = metrics;
            fleet[slot].version = version;
            t.push_str(&format!(
                "round {round}: upgrade {endpoint} -> {}\n",
                portfolio[version].0
            ));
        }

        // Sender restart: snapshot the cache, throw it away, reload.
        if round == restart_round {
            store
                .persist_cache(&cache, sender_fp)
                .expect("cache persists");
            cache = SolveCache::with_registry(64, &post_metrics);
            let report = store.load_cache(&cache, sender_fp);
            restart_loaded = report.entries;
            if report.entries == 0 {
                violations.push("restart loaded zero cache entries".to_owned());
            }
            if report.discarded {
                violations.push("restart discarded the snapshot as corrupt".to_owned());
            }
            t.push_str(&format!(
                "round {round}: sender restart, reloaded {} cached solves ({} bytes)\n",
                report.entries, report.bytes
            ));
        }

        let mut rng = StdRng::seed_from_u64(config.seed ^ (round as u64).wrapping_mul(0x9e37_79b9));
        let doc = upgrade_doc(&mut rng, 1 + round % 3);
        let doc_name = format!("program-r{round}");

        for slot in 0..fleet.len() {
            let version = fleet[slot].version;
            let (version_name, version_schema) = &portfolio[version];
            let proposal = [Proposal {
                name: version_name.clone(),
                schema: version_schema.clone(),
            }];
            let (outcome, usage) = negotiate_with_matrix(
                sender_schema,
                "v1",
                "r",
                &proposal,
                &InboundPolicy::AcceptAll,
                1,
                &NoOracle,
                &matrix,
            )
            .expect("negotiation runs");
            if usage.live_checks != 0 {
                violations.push(format!(
                    "round {round} {}: {} live schema checks on the hot path",
                    fleet[slot].endpoint, usage.live_checks
                ));
            }
            let agreed = matches!(outcome, axml_peer::Negotiation::Agreed { .. });
            if agreed != (version != 2) {
                violations.push(format!(
                    "round {round} {}: matrix verdict {agreed} for version {version_name}",
                    fleet[slot].endpoint
                ));
            }
            if !agreed {
                vetoed += 1;
                t.push_str(&format!(
                    "round {round}: {} [{version_name}] vetoed by matrix\n",
                    fleet[slot].endpoint
                ));
                continue;
            }

            // Enforce into the receiver's version (materializing over
            // the simulated network), then ship. Exactly the Fig. 1
            // pipeline, warmed by the shared cache.
            let target = &compiled[version];
            let send = || -> Result<(ITree, usize), axml_peer::PeerError> {
                let mut invoker = NetInvoker {
                    caller: &sender,
                    remote: &provider_link.remote,
                };
                let (sent, invoked) = if validate(&doc, target).is_ok() {
                    (doc.clone(), 0)
                } else {
                    let mut rewriter = Rewriter::new(target).with_k(1).with_cache(&cache);
                    let (sent, report) = rewriter.rewrite_safe(&doc, &mut invoker)?;
                    (sent, report.invoked.len())
                };
                let link = topo.remote(UPGRADE_SENDER, &fleet[slot].endpoint);
                link.remote.send_document(&sender, &doc_name, &sent, target)?;
                Ok((sent, invoked))
            };
            match send() {
                Ok((sent, invoked)) => {
                    delivered += 1;
                    t.push_str(&format!(
                        "round {round}: {} [{version_name}] delivered exhibits={} invoked={}\n",
                        fleet[slot].endpoint,
                        1 + round % 3,
                        invoked
                    ));
                    match fleet[slot].peer.repository.load(&doc_name) {
                        Ok(stored) if stored == sent => {}
                        Ok(_) => violations.push(format!(
                            "round {round} {}: stored document differs from the one sent",
                            fleet[slot].endpoint
                        )),
                        Err(e) => violations.push(format!(
                            "round {round} {}: delivered but not stored: {e}",
                            fleet[slot].endpoint
                        )),
                    }
                    if let Err(e) = validate(&sent, target) {
                        violations.push(format!(
                            "round {round} {}: delivered document breaks {version_name}: {e}",
                            fleet[slot].endpoint
                        ));
                    }
                }
                Err(e) => {
                    violations.push(format!(
                        "round {round} {}: FAILED exchange (matrix approved it): {e}",
                        fleet[slot].endpoint
                    ));
                }
            }
        }

        // The round right after the restart also proves the reloaded
        // entries are bit-equivalent to fresh solves: a static safety
        // analysis through the warm cache must report the same game
        // statistics as one through a cold cache.
        if round == restart_round {
            let target = &compiled[1];
            let warm = Rewriter::new(target)
                .with_k(1)
                .with_cache(&cache)
                .analyze_safe(&doc);
            let cold_cache = SolveCache::unpublished(64);
            let cold = Rewriter::new(target)
                .with_k(1)
                .with_cache(&cold_cache)
                .analyze_safe(&doc);
            match (warm, cold) {
                (Ok(w), Ok(c)) => {
                    if (w.games, w.product_nodes) != (c.games, c.product_nodes) {
                        violations.push(format!(
                            "warm analysis ({} games, {} nodes) != cold analysis ({} games, {} nodes)",
                            w.games, w.product_nodes, c.games, c.product_nodes
                        ));
                    }
                    t.push_str(&format!(
                        "round {round}: warm/cold analysis agree: games={} product_nodes={}\n",
                        w.games, w.product_nodes
                    ));
                }
                (w, c) => violations.push(format!(
                    "warm/cold analysis diverged: warm={:?} cold={:?}",
                    w.is_ok(),
                    c.is_ok()
                )),
            }
        }
    }
    world.run_until_idle();

    // ---- Invariants ----------------------------------------------------
    let post = post_metrics.snapshot();
    let post_misses = post.counter("solve_cache.misses_total");
    if post_misses != 0 {
        violations.push(format!(
            "warm restart was not exact: {post_misses} cache misses after reload"
        ));
    }
    for node in &fleet {
        let snap = node.metrics.snapshot();
        let requests = snap.counter("server.requests_total");
        let ok = snap.counter("server.responses_ok_total");
        let faults = snap.counter("server.faults_total");
        if requests != ok + faults {
            violations.push(format!(
                "{}: accounting identity broken: {requests} != {ok} + {faults}",
                node.endpoint
            ));
        }
    }
    {
        let snap = provider_metrics.snapshot();
        let requests = snap.counter("server.requests_total");
        let ok = snap.counter("server.responses_ok_total");
        let faults = snap.counter("server.faults_total");
        if requests != ok + faults {
            violations.push(format!(
                "provider: accounting identity broken: {requests} != {ok} + {faults}"
            ));
        }
    }
    let store_snap = store_metrics.snapshot();
    if store_snap.counter("store.corrupt_discarded_total") != 0 {
        violations.push("store discarded an artifact as corrupt in a clean run".to_owned());
    }

    // ---- Transcript tail ----------------------------------------------
    t.push_str("=== cache ===\n");
    for (phase, m) in [("pre-restart", &pre_metrics), ("post-restart", &post_metrics)] {
        let snap = m.snapshot();
        t.push_str(&format!(
            "{phase}: lookups={} hits={} misses={} insertions={} entries={}\n",
            snap.counter("solve_cache.lookups_total"),
            snap.counter("solve_cache.hits_total"),
            snap.counter("solve_cache.misses_total"),
            snap.counter("solve_cache.insertions_total"),
            snap.gauge("solve_cache.entries"),
        ));
    }
    t.push_str("=== store ===\n");
    t.push_str(&format!(
        "loads={} persists={} entries_loaded={} corrupt_discarded={}\n",
        store_snap.counter("store.load_total"),
        store_snap.counter("store.persist_total"),
        store_snap.counter("store.entries_loaded_total"),
        store_snap.counter("store.corrupt_discarded_total"),
    ));
    t.push_str(&format!(
        "summary delivered={delivered} vetoed={vetoed} restart_loaded={restart_loaded}\n"
    ));
    t.push_str("=== events ===\n");
    let events = world.event_log();
    t.push_str(&format!(
        "events: count={} fnv64=0x{:016x}\n",
        events.lines().count(),
        fnv64(events.as_bytes())
    ));
    for v in &violations {
        t.push_str(&format!("VIOLATION: {v}\n"));
    }

    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }

    UpgradeReport {
        delivered,
        vetoed,
        violations,
        transcript: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_upgrade_passes_every_invariant() {
        let report = run_upgrade(&UpgradeConfig::from_seed(11));
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
        assert!(report.delivered > 0);
        // The v3 upgrade happens at round `receivers`, so every later
        // round vetoes exactly one send.
        assert!(report.vetoed > 0, "the incompatible version never vetoed");
    }

    #[test]
    fn same_seed_upgrades_are_byte_identical() {
        let a = run_upgrade(&UpgradeConfig::from_seed(23));
        let b = run_upgrade(&UpgradeConfig::from_seed(23));
        assert_eq!(a.transcript, b.transcript);
        assert!(a.violations.is_empty(), "{:#?}", a.violations);
    }

    #[test]
    fn incompatibility_is_vetoed_not_failed() {
        let report = run_upgrade(&UpgradeConfig::from_seed(5));
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
        assert!(
            report.transcript.contains("vetoed by matrix"),
            "v3 sends should be vetoed:\n{}",
            report.transcript
        );
        assert!(!report.transcript.contains("FAILED"));
    }
}
