//! Deterministic simulation harness for the Active XML peer network.
//!
//! Everything nondeterministic about a real multi-peer exchange — socket
//! latency, message loss, connection resets, server backpressure, peer
//! crashes, even the answers services return — is replaced here by draws
//! from **one seeded RNG** advancing **virtual time** through a
//! discrete-event queue. A scenario run is a pure function of its seed:
//! run it twice and the event logs, exchange transcripts, and metrics
//! snapshots are byte-identical. Thousands of seeds explore thousands of
//! distinct fault interleavings per CI run in seconds of wall time, and
//! a failing seed shrinks (via the `axml-support` property harness) and
//! replays exactly.
//!
//! The stack under test is the *production* stack: the real pooled
//! [`axml_net::NetClient`] with its retry/deadline logic, the real wire
//! codecs, the real peer enforcement pipeline
//! ([`axml_peer::envelope_handler`]) — only the [`Transport`] and
//! [`Clock`] capabilities are swapped for simulated ones.
//!
//! * [`world`] — the event queue, virtual clock, in-memory transport,
//!   fault pipeline, and server actors;
//! * [`scenario`] — the Fig. 1 three-party exchange scenario, its
//!   invariant checks, and the transcript serializer;
//! * [`marketplace`] — continuation-style quote chains across a provider
//!   fleet, with UDDI/ACL registry churn mid-exchange;
//! * [`soak`] — the fleet-scale soak: ≥100 peers, ≥1000 exchanges in
//!   one world, every invariant checked fleet-wide;
//! * [`upgrade`] — rolling-schema-upgrade fleet: the persisted
//!   compatibility matrix gates sends while daemons change versions,
//!   and a mid-run sender restart resumes from a warm cache snapshot;
//! * [`strategy`] — pluggable provider answer policies: random,
//!   crashing, and the strategic game-graph opponent;
//! * [`topology`] — declarative construction of multi-peer casts
//!   (listening peers, custom services, client edges).
//!
//! [`Transport`]: axml_net::Transport
//! [`Clock`]: axml_support::clock::Clock

#![warn(missing_docs)]

pub mod marketplace;
pub mod scenario;
pub mod soak;
pub mod strategy;
pub mod topology;
pub mod upgrade;
pub mod world;

pub use marketplace::{
    market_endpoint, marketplace_schema, offer, run_marketplace, ChurnKind, ChurnPlan,
    MarketplaceConfig, RoutingInvoker, StrategyKind, BUYER, PRINCIPAL, SHOPPER,
};
pub use scenario::{
    exchange_schema, exhibit, run_scenario, scenario_plan, Mode, Outcome, ScenarioConfig,
    ScenarioReport, PROVIDER, RECEIVER, SENDER,
};
pub use soak::{fleet_endpoint, run_soak, SoakConfig, SoakReport};
pub use strategy::{
    strategy_provider, CrashingStrategy, RandomStrategy, StrategicStrategy, Strategy,
};
pub use topology::{Link, PeerNode, Topology};
pub use upgrade::{
    run_upgrade, upgrade_endpoint, upgrade_portfolio, UpgradeConfig, UpgradeReport,
    UPGRADE_PROVIDER, UPGRADE_SENDER,
};
pub use world::{Crash, FaultPlan, Partition, SimServerConfig, SimWorld};
