//! The deterministic world: virtual time, an in-memory network speaking
//! the exact `axml-net` frame protocol, and seeded fault injection.
//!
//! A [`SimWorld`] owns everything that can vary between runs — the event
//! queue, the fault schedule, every connection buffer, and one
//! `axml_support` RNG seeded once — so a scenario driven against it is a
//! pure function of its seed. There is **no scheduler thread**: the world
//! runs cooperatively on the single thread driving it. Whenever client
//! code blocks (a socket read, a retry backoff sleep), the blocking call
//! *pumps* the event queue inline, advancing virtual time event by event
//! until the wait is satisfiable or times out. Seconds of configured
//! timeouts therefore cost microseconds of wall time, and two runs with
//! the same seed replay byte-identically.
//!
//! The pieces, and where they plug into the production stack:
//!
//! * [`SimClock`] implements [`axml_support::clock::Clock`]: `now_ns` is
//!   virtual time, `sleep` advances it through the queue — injected into
//!   `NetClient` so its backoff and total-deadline logic run unmodified;
//! * [`SimTransport`] implements [`axml_net::Transport`]: `connect`
//!   yields an in-memory [`Duplex`] whose reads pump the world — the real
//!   pooled `NetClient` dials it exactly like TCP;
//! * server endpoints are **event-driven actors** (see
//!   [`listen`](SimWorld::listen)): frames delivered to them are parsed
//!   and answered inline during event processing, reusing the
//!   [`wire`] codecs and the application [`Handler`] unchanged.
//!
//! **Fault model.** Frames in flight are subject to drop, extra delay,
//! duplication, reordering (independent latency draws; delivery is not
//! FIFO) and connection reset mid-frame (a prefix of the frame arrives,
//! then the connection dies). Links can be partitioned for time windows,
//! and endpoints can crash (every connection resets, in-flight requests
//! are lost) and later restart. All decisions are drawn from the single
//! world RNG in deterministic order.
//!
//! **Discipline for handlers**: server handlers run inside event
//! processing and must not call back into the sim network (the driving
//! thread's own nested calls — e.g. an invoker making client calls from
//! inside `enforce` — are fine). The world enforces a virtual-time
//! horizon: a scenario that would hang trips a panic carrying the event
//! log instead of wedging the test run.

use axml_net::transport::{Acceptor, Duplex, Transport};
use axml_net::wire::{self, FaultCode, Frame, FrameType, WireError, WireFault};
use axml_net::{ChunkAssembler, ChunkProgress, Handler};
use axml_support::clock::Clock;
use axml_support::rng::{RngExt, SeedableRng, StdRng};
use axml_support::sync::Mutex;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// One scheduled link partition: frames between `a` and `b` sent inside
/// `[from_ns, until_ns)` are silently lost — in both directions by
/// default, or only `a → b` when `oneway` is set (an asymmetric cut: a
/// request can still land while its response vanishes, or vice versa,
/// which is what drives the client's retry-until-deadline path).
#[derive(Debug, Clone)]
pub struct Partition {
    /// One side of the link (an endpoint or client name); the sending
    /// side when `oneway`.
    pub a: String,
    /// The other side; the receiving side when `oneway`.
    pub b: String,
    /// Virtual time the partition starts.
    pub from_ns: u64,
    /// Virtual time the link heals.
    pub until_ns: u64,
    /// Cut only the `a → b` direction; `b → a` frames still flow.
    pub oneway: bool,
}

impl Partition {
    /// A symmetric partition: both directions cut during the window.
    pub fn symmetric(a: &str, b: &str, from_ns: u64, until_ns: u64) -> Partition {
        Partition {
            a: a.to_owned(),
            b: b.to_owned(),
            from_ns,
            until_ns,
            oneway: false,
        }
    }

    /// An asymmetric partition: only frames from `from` to `to` are lost.
    pub fn oneway(from: &str, to: &str, from_ns: u64, until_ns: u64) -> Partition {
        Partition {
            a: from.to_owned(),
            b: to.to_owned(),
            from_ns,
            until_ns,
            oneway: true,
        }
    }
}

/// One scheduled crash: at `at_ns` the endpoint loses every connection
/// and all in-flight state; it accepts again `down_ns` later.
#[derive(Debug, Clone)]
pub struct Crash {
    /// The endpoint that crashes.
    pub endpoint: String,
    /// Virtual time of the crash.
    pub at_ns: u64,
    /// How long the endpoint stays down.
    pub down_ns: u64,
}

/// The seeded fault schedule for one run. Probabilities are per frame.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Baseline one-way frame latency.
    pub base_latency_ns: u64,
    /// Uniform extra latency in `[0, jitter_ns]` per frame (this is what
    /// reorders frames: delivery is by arrival time, not send order).
    pub jitter_ns: u64,
    /// Probability a frame is silently dropped.
    pub drop_prob: f64,
    /// Probability a frame is delivered twice.
    pub dup_prob: f64,
    /// Probability a frame is held for an extra `[0, extra_delay_ns]`.
    pub delay_prob: f64,
    /// Extra delay bound for held frames.
    pub extra_delay_ns: u64,
    /// Probability the connection resets mid-frame: a prefix of the
    /// frame arrives, then both directions die.
    pub reset_prob: f64,
    /// Probability a server answers a request with a retryable `Busy`
    /// fault instead of handling it (models a saturated worker queue).
    pub busy_prob: f64,
    /// Extra drop probability applied only to chunk frames
    /// (`DocChunkStart`/`DocChunk`/`DocChunkEnd`) — lets a scenario
    /// target the chunked transfer path while the control frames around
    /// it stay reliable. Combined with `drop_prob` by maximum.
    pub chunk_drop_prob: f64,
    /// Extra duplication probability for chunk frames (max with
    /// `dup_prob`).
    pub chunk_dup_prob: f64,
    /// Extra mid-frame reset probability for chunk frames (max with
    /// `reset_prob`).
    pub chunk_reset_prob: f64,
    /// Scheduled link partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled crash-restarts.
    pub crashes: Vec<Crash>,
    /// Hard virtual-time cap: exceeding it means the scenario would
    /// hang, and the world panics with the event log (a *typed* hang
    /// diagnosis for the property harness to shrink, instead of a wedged
    /// test process).
    pub horizon_ns: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            base_latency_ns: 1_000_000, // 1 ms
            jitter_ns: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            extra_delay_ns: 0,
            reset_prob: 0.0,
            busy_prob: 0.0,
            chunk_drop_prob: 0.0,
            chunk_dup_prob: 0.0,
            chunk_reset_prob: 0.0,
            partitions: Vec::new(),
            crashes: Vec::new(),
            horizon_ns: 600_000_000_000, // 10 virtual minutes
        }
    }
}

/// Tuning for one simulated server endpoint.
#[derive(Clone)]
pub struct SimServerConfig {
    /// Name announced in `Welcome` frames.
    pub name: String,
    /// Maximum accepted frame payload, in bytes.
    pub max_frame: usize,
    /// Maximum cumulative size of one chunked document transfer.
    pub max_doc: usize,
    /// How long a partial frame may sit before the server faults the
    /// connection with `Timeout` (the real server's mid-frame stall cap).
    pub read_timeout: Duration,
    /// Registry this endpoint publishes `server.*` metrics into and
    /// serves over `StatsRequest` frames.
    pub metrics: axml_obs::Registry,
}

impl Default for SimServerConfig {
    fn default() -> Self {
        SimServerConfig {
            name: "axml-peer".to_owned(),
            max_frame: wire::DEFAULT_MAX_FRAME,
            max_doc: wire::DEFAULT_MAX_DOC,
            read_timeout: Duration::from_millis(200),
            metrics: axml_obs::Registry::new(),
        }
    }
}

/// Pre-resolved `server.*` handles, mirroring the real server's
/// accounting: every request ends in exactly one `ok()` or `fault()`.
struct SrvMetrics {
    connections: axml_obs::Counter,
    requests: axml_obs::Counter,
    responses_ok: axml_obs::Counter,
    faults: axml_obs::Counter,
    busy: axml_obs::Counter,
    timeouts: axml_obs::Counter,
    too_large: axml_obs::Counter,
    frame_bytes: axml_obs::Histogram,
    chunk_frames: axml_obs::Counter,
    chunk_bytes: axml_obs::Counter,
    chunk_aborts: axml_obs::Counter,
    chunk_reassembly: axml_obs::Gauge,
}

impl SrvMetrics {
    fn new(r: &axml_obs::Registry) -> Self {
        SrvMetrics {
            connections: r.counter("server.connections_total"),
            requests: r.counter("server.requests_total"),
            responses_ok: r.counter("server.responses_ok_total"),
            faults: r.counter("server.faults_total"),
            busy: r.counter("server.busy_total"),
            timeouts: r.counter("server.timeouts_total"),
            too_large: r.counter("server.frame_too_large_total"),
            frame_bytes: r.histogram("server.frame_bytes", axml_obs::BYTES_BOUNDS),
            chunk_frames: r.counter("net.chunk.frames_total"),
            chunk_bytes: r.counter("net.chunk.bytes_total"),
            chunk_aborts: r.counter("net.chunk.aborts_total"),
            chunk_reassembly: r.gauge("net.chunk.reassembly_bytes"),
        }
    }

    fn ok(&self) {
        self.requests.inc();
        self.responses_ok.inc();
    }

    fn fault(&self) {
        self.requests.inc();
        self.faults.inc();
    }
}

/// A connection's server-side parse state.
struct SrvConn {
    inbox: Vec<u8>,
    shaken: bool,
    /// Chunked-transfer reassembly state, mirroring the real server's
    /// per-connection assembler.
    assembler: ChunkAssembler,
    /// Reassembly bytes last published into the gauge for this conn.
    reported: i64,
    /// Chunk frames accepted so far — the stall probe's progress witness
    /// for idleness *between* chunk frames (the inbox is empty then).
    chunk_seen: u64,
}

impl SrvConn {
    fn new(max_doc: usize) -> SrvConn {
        SrvConn {
            inbox: Vec::new(),
            shaken: false,
            assembler: ChunkAssembler::new(max_doc),
            reported: 0,
            chunk_seen: 0,
        }
    }
}

/// Work extracted from a frame in Phase A and dispatched to the
/// application handler unlocked in Phase B — the sim analogue of the
/// real server's `Work`.
enum SrvWork {
    Envelope(String),
    Document { name: String, text: String },
}

struct ServerEntry {
    handler: Arc<dyn Handler>,
    config: SimServerConfig,
    metrics: SrvMetrics,
    up: bool,
    conns: BTreeMap<u64, SrvConn>,
}

impl ServerEntry {
    /// Removes a connection's server-side state, giving back its
    /// reassembly gauge bytes and accounting an abandoned transfer —
    /// every removal path must come through here or the gauge leaks.
    fn drop_conn(&mut self, conn_id: u64) {
        if let Some(sc) = self.conns.remove(&conn_id) {
            self.metrics.chunk_reassembly.add(-sc.reported);
            if sc.assembler.active() {
                self.metrics.chunk_aborts.inc();
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Open,
    /// Reset by a fault, a crash, or a mid-frame cut.
    Reset,
    /// Closed in an orderly way (server fault-and-close path).
    Closed,
}

struct Conn {
    client_name: String,
    server: String,
    state: ConnState,
    /// Bytes delivered toward the client, not yet consumed by a read.
    client_inbox: VecDeque<u8>,
    /// Partial frame bytes written by the client, awaiting completion.
    to_server_pending: Vec<u8>,
}

enum Event {
    /// Bytes (one frame, or a raw flushed segment) arrive at one side.
    Deliver {
        conn: u64,
        to_server: bool,
        bytes: Vec<u8>,
        reset_after: bool,
    },
    /// Server-side stall probe: fires when a partial frame sits
    /// unfinished, or a chunk transfer has gone quiet between frames
    /// (`len` is the inbox size when armed, `chunks` the chunk frames
    /// accepted so far — either advancing means progress).
    StallCheck { conn: u64, len: usize, chunks: u64 },
    /// Orderly server-side close (the FIN after a fault-and-close):
    /// scheduled at the fault frame's own delivery time so the client
    /// reads the fault first and EOF second, like TCP data-before-FIN.
    Close { conn: u64 },
    Crash { endpoint: String },
    Restart { endpoint: String },
}

struct Scheduled {
    at_ns: u64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ns, self.seq) == (other.at_ns, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at_ns, other.seq).cmp(&(self.at_ns, self.seq))
    }
}

struct WorldState {
    now_ns: u64,
    seq: u64,
    rng: StdRng,
    plan: FaultPlan,
    queue: BinaryHeap<Scheduled>,
    conns: BTreeMap<u64, Conn>,
    next_conn: u64,
    servers: BTreeMap<String, ServerEntry>,
    log: Vec<String>,
    /// First-appearance normalization of wire request ids, so event logs
    /// and transcripts compare byte-identically across runs even though
    /// ids come from a process-global counter.
    id_norm: HashMap<u64, u64>,
}

pub(crate) struct WorldInner {
    state: Mutex<WorldState>,
}

/// Handle on one deterministic world. Cloning shares the world.
#[derive(Clone)]
pub struct SimWorld {
    inner: Arc<WorldInner>,
}

impl WorldState {
    fn log(&mut self, msg: String) {
        self.log.push(format!("@{:>12} {}", self.now_ns, msg));
    }

    fn norm_id(&mut self, id: u64) -> u64 {
        if id == 0 {
            return 0;
        }
        let next = self.id_norm.len() as u64 + 1;
        *self.id_norm.entry(id).or_insert(next)
    }

    fn schedule(&mut self, at_ns: u64, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at_ns, seq, event });
    }

    fn partitioned(&self, from: &str, to: &str) -> bool {
        self.plan.partitions.iter().any(|p| {
            ((p.a == from && p.b == to) || (!p.oneway && p.a == to && p.b == from))
                && self.now_ns >= p.from_ns
                && self.now_ns < p.until_ns
        })
    }

    /// Describes frame bytes for the log: `Request id=R3 len=120`, or a
    /// raw segment when the bytes are not a whole header.
    fn describe(&mut self, bytes: &[u8]) -> String {
        if bytes.len() < wire::HEADER_LEN {
            return format!("segment len={}", bytes.len());
        }
        let kind = match FrameType::from_byte(bytes[0]) {
            Ok(k) => format!("{k:?}"),
            Err(_) => format!("type=0x{:02x}", bytes[0]),
        };
        let id = u64::from_be_bytes(bytes[1..9].try_into().expect("8 id bytes"));
        let len = u32::from_be_bytes(bytes[9..13].try_into().expect("4 len bytes"));
        format!("{kind} id=R{} len={len}", self.norm_id(id))
    }

    /// Applies the fault pipeline to one outbound frame (or flushed raw
    /// segment) and schedules its delivery. Returns the virtual time at
    /// which the (primary copy of the) frame lands, so callers that close
    /// the connection afterwards can order the close behind the data;
    /// dropped or partitioned frames report the current time.
    fn transmit(&mut self, conn_id: u64, to_server: bool, bytes: Vec<u8>) -> u64 {
        let Some(conn) = self.conns.get(&conn_id) else {
            return self.now_ns;
        };
        if conn.state != ConnState::Open {
            return self.now_ns;
        }
        let (from, to) = if to_server {
            (conn.client_name.clone(), conn.server.clone())
        } else {
            (conn.server.clone(), conn.client_name.clone())
        };
        let what = self.describe(&bytes);
        let dir = format!("{from}->{to} conn={conn_id}");
        if self.partitioned(&from, &to) {
            self.log(format!("PARTITIONED {dir} {what}"));
            return self.now_ns;
        }
        let plan = self.plan.clone();
        // Chunk frames can carry their own (usually higher) fault rates,
        // so a scenario can batter the transfer path while the handshake
        // and reply frames stay deliverable.
        let is_chunk = bytes.len() >= wire::HEADER_LEN
            && FrameType::from_byte(bytes[0]).is_ok_and(|k| {
                matches!(
                    k,
                    FrameType::DocChunkStart | FrameType::DocChunk | FrameType::DocChunkEnd
                )
            });
        let drop_prob = if is_chunk {
            plan.drop_prob.max(plan.chunk_drop_prob)
        } else {
            plan.drop_prob
        };
        let dup_prob = if is_chunk {
            plan.dup_prob.max(plan.chunk_dup_prob)
        } else {
            plan.dup_prob
        };
        let reset_prob = if is_chunk {
            plan.reset_prob.max(plan.chunk_reset_prob)
        } else {
            plan.reset_prob
        };
        if self.rng.random_bool(drop_prob) {
            self.log(format!("DROP {dir} {what}"));
            return self.now_ns;
        }
        if bytes.len() > 1 && self.rng.random_bool(reset_prob) {
            let cut = self.rng.random_range(1..bytes.len() as u64) as usize;
            let at = self.now_ns + self.latency(&plan);
            self.log(format!("RESET-MID-FRAME {dir} {what} cut={cut}"));
            self.schedule(
                at,
                Event::Deliver {
                    conn: conn_id,
                    to_server,
                    bytes: bytes[..cut].to_vec(),
                    reset_after: true,
                },
            );
            return at;
        }
        let mut latency = self.latency(&plan);
        if self.rng.random_bool(plan.delay_prob) && plan.extra_delay_ns > 0 {
            let extra = self.rng.random_range(0..plan.extra_delay_ns);
            latency += extra;
            self.log(format!("DELAY {dir} {what} extra={extra}ns"));
        }
        self.log(format!("SEND {dir} {what}"));
        let at = self.now_ns + latency;
        self.schedule(
            at,
            Event::Deliver {
                conn: conn_id,
                to_server,
                bytes: bytes.clone(),
                reset_after: false,
            },
        );
        if self.rng.random_bool(dup_prob) {
            let at = self.now_ns + self.latency(&plan);
            self.log(format!("DUPLICATE {dir} {what}"));
            self.schedule(
                at,
                Event::Deliver {
                    conn: conn_id,
                    to_server,
                    bytes,
                    reset_after: false,
                },
            );
        }
        at
    }

    fn latency(&mut self, plan: &FaultPlan) -> u64 {
        let jitter = if plan.jitter_ns > 0 {
            self.rng.random_range(0..=plan.jitter_ns)
        } else {
            0
        };
        plan.base_latency_ns + jitter
    }
}

/// Splits complete wire frames off the front of `pending`. Bytes of an
/// incomplete trailing frame stay put.
fn take_frames(pending: &mut Vec<u8>) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    loop {
        if pending.len() < wire::HEADER_LEN {
            break;
        }
        let len = u32::from_be_bytes(pending[9..13].try_into().expect("4 len bytes")) as usize;
        let total = wire::HEADER_LEN + len;
        if pending.len() < total {
            break;
        }
        let rest = pending.split_off(total);
        frames.push(std::mem::replace(pending, rest));
    }
    frames
}

fn encode(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(wire::HEADER_LEN + frame.payload.len());
    wire::write_frame(&mut buf, frame).expect("in-memory frame encode");
    buf
}

impl SimWorld {
    /// Creates a world from one seed and a fault schedule; crashes and
    /// restarts are queued up front.
    pub fn new(seed: u64, plan: FaultPlan) -> SimWorld {
        let mut state = WorldState {
            now_ns: 0,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            plan: plan.clone(),
            queue: BinaryHeap::new(),
            conns: BTreeMap::new(),
            next_conn: 1,
            servers: BTreeMap::new(),
            log: Vec::new(),
            id_norm: HashMap::new(),
        };
        state.log(format!("WORLD seed={seed}"));
        for c in &plan.crashes {
            state.schedule(
                c.at_ns,
                Event::Crash {
                    endpoint: c.endpoint.clone(),
                },
            );
            state.schedule(
                c.at_ns + c.down_ns,
                Event::Restart {
                    endpoint: c.endpoint.clone(),
                },
            );
        }
        SimWorld {
            inner: Arc::new(WorldInner {
                state: Mutex::new(state),
            }),
        }
    }

    /// Registers a server actor on `endpoint`, serving `handler` over the
    /// wire protocol with the real server's fault semantics (handshake,
    /// `TooLarge`, mid-frame `Timeout`, `Busy` backpressure, stats).
    pub fn listen(&self, endpoint: &str, handler: Arc<dyn Handler>, config: SimServerConfig) {
        let mut st = self.inner.state.lock();
        let metrics = SrvMetrics::new(&config.metrics);
        st.servers.insert(
            endpoint.to_owned(),
            ServerEntry {
                handler,
                config,
                metrics,
                up: true,
                conns: BTreeMap::new(),
            },
        );
        st.log(format!("LISTEN {endpoint}"));
    }

    /// The virtual clock, for injection into clients.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::new(SimClock {
            world: Arc::clone(&self.inner),
        })
    }

    /// A transport dialing this world's endpoints; `client_name` is the
    /// partition-relevant identity of the dialing side.
    pub fn transport(&self, client_name: &str) -> Arc<dyn Transport> {
        Arc::new(SimTransport {
            world: Arc::clone(&self.inner),
            client_name: client_name.to_owned(),
        })
    }

    /// Current virtual time.
    pub fn now_ns(&self) -> u64 {
        self.inner.state.lock().now_ns
    }

    /// Advances virtual time by `d`, processing everything due.
    pub fn advance(&self, d: Duration) {
        let target = self.inner.state.lock().now_ns + d.as_nanos() as u64;
        self.inner.advance_to(target);
    }

    /// Drains every scheduled event (delivers all in-flight frames).
    pub fn run_until_idle(&self) {
        loop {
            let next = self.inner.state.lock().queue.peek().map(|s| s.at_ns);
            match next {
                Some(at) => self.inner.advance_to(at),
                None => return,
            }
        }
    }

    /// The full event log, one line per network-visible decision, with
    /// request ids normalized — byte-identical across same-seed runs.
    pub fn event_log(&self) -> String {
        self.inner.state.lock().log.join("\n")
    }

    /// Normalizes a wire request id the way the event log does.
    pub fn norm_id(&self, id: u64) -> u64 {
        self.inner.state.lock().norm_id(id)
    }

    /// Mutates the fault plan mid-run — e.g. switching duplication on only
    /// after a clean handshake, or clearing every fault for a quiescent
    /// tail. Deterministic as long as the call happens at a deterministic
    /// virtual time.
    pub fn with_plan(&self, f: impl FnOnce(&mut FaultPlan)) {
        f(&mut self.inner.state.lock().plan);
    }
}

impl WorldInner {
    /// Processes all events due at or before `target`, then sets time to
    /// `target`. The single pump everything blocks through.
    fn advance_to(self: &Arc<Self>, target: u64) {
        loop {
            let due = {
                let mut st = self.state.lock();
                if target > st.plan.horizon_ns {
                    let tail: Vec<_> = st.log.iter().rev().take(25).cloned().collect();
                    panic!(
                        "sim horizon exceeded at {}ns — scenario would hang; log tail:\n{}",
                        st.now_ns,
                        tail.into_iter().rev().collect::<Vec<_>>().join("\n")
                    );
                }
                match st.queue.peek() {
                    Some(s) if s.at_ns <= target => {
                        let s = st.queue.pop().expect("peeked event");
                        st.now_ns = st.now_ns.max(s.at_ns);
                        Some(s.event)
                    }
                    _ => {
                        st.now_ns = st.now_ns.max(target);
                        None
                    }
                }
            };
            match due {
                Some(event) => self.handle_event(event),
                None => return,
            }
        }
    }

    fn handle_event(self: &Arc<Self>, event: Event) {
        match event {
            Event::Deliver {
                conn,
                to_server,
                bytes,
                reset_after,
            } => self.deliver(conn, to_server, bytes, reset_after),
            Event::StallCheck { conn, len, chunks } => self.stall_check(conn, len, chunks),
            Event::Close { conn } => {
                let mut st = self.state.lock();
                let closed = match st.conns.get_mut(&conn) {
                    Some(c) if c.state == ConnState::Open => {
                        c.state = ConnState::Closed;
                        true
                    }
                    _ => false,
                };
                if closed {
                    st.log(format!("CLOSE conn={conn} (server fin)"));
                }
            }
            Event::Crash { endpoint } => {
                let mut st = self.state.lock();
                st.log(format!("CRASH {endpoint}"));
                if let Some(server) = st.servers.get_mut(&endpoint) {
                    server.up = false;
                    let ids: Vec<u64> = server.conns.keys().copied().collect();
                    for id in ids {
                        server.drop_conn(id);
                    }
                }
                let reset: Vec<u64> = st
                    .conns
                    .iter()
                    .filter(|(_, c)| c.server == endpoint && c.state == ConnState::Open)
                    .map(|(id, _)| *id)
                    .collect();
                for id in reset {
                    st.conns.get_mut(&id).expect("live conn").state = ConnState::Reset;
                    st.log(format!("CONN-RESET conn={id} (crash)"));
                }
            }
            Event::Restart { endpoint } => {
                let mut st = self.state.lock();
                st.log(format!("RESTART {endpoint}"));
                if let Some(server) = st.servers.get_mut(&endpoint) {
                    server.up = true;
                }
            }
        }
    }

    fn deliver(self: &Arc<Self>, conn_id: u64, to_server: bool, bytes: Vec<u8>, reset_after: bool) {
        {
            let mut st = self.state.lock();
            let Some(conn) = st.conns.get(&conn_id) else {
                return;
            };
            if conn.state != ConnState::Open {
                return;
            }
            let what = st.describe(&bytes);
            st.log(format!(
                "DELIVER conn={conn_id} {} {what}",
                if to_server { "->server" } else { "->client" }
            ));
            let server_name = st.conns.get(&conn_id).expect("live conn").server.clone();
            if to_server {
                let up = st.servers.get(&server_name).map(|s| s.up).unwrap_or(false);
                if !up {
                    st.log(format!("LOST conn={conn_id} (endpoint down)"));
                    return;
                }
                if let Some(server) = st.servers.get_mut(&server_name) {
                    let max_doc = server.config.max_doc;
                    server
                        .conns
                        .entry(conn_id)
                        .or_insert_with(|| SrvConn::new(max_doc))
                        .inbox
                        .extend_from_slice(&bytes);
                }
            } else {
                st.conns
                    .get_mut(&conn_id)
                    .expect("live conn")
                    .client_inbox
                    .extend(bytes.iter().copied());
            }
            if reset_after {
                st.conns.get_mut(&conn_id).expect("live conn").state = ConnState::Reset;
                st.log(format!("CONN-RESET conn={conn_id} (mid-frame cut)"));
                if let Some(server) = st.servers.get_mut(&server_name) {
                    server.drop_conn(conn_id);
                }
                return;
            }
        }
        if to_server {
            self.server_pump(conn_id);
        }
    }

    /// Parses and answers every complete frame sitting in the server-side
    /// inbox of `conn_id`. The application handler runs with the world
    /// unlocked.
    fn server_pump(self: &Arc<Self>, conn_id: u64) {
        loop {
            // Phase 1 (locked): extract one actionable frame.
            let action = {
                let mut st = self.state.lock();
                let Some(conn) = st.conns.get(&conn_id) else {
                    return;
                };
                if conn.state != ConnState::Open {
                    return;
                }
                let server_name = conn.server.clone();
                let Some(server) = st.servers.get_mut(&server_name) else {
                    return;
                };
                let max_frame = server.config.max_frame;
                let read_timeout = server.config.read_timeout;
                let Some(sc) = server.conns.get_mut(&conn_id) else {
                    return;
                };
                if sc.inbox.len() >= wire::HEADER_LEN {
                    let len = u32::from_be_bytes(
                        sc.inbox[9..13].try_into().expect("4 len bytes"),
                    ) as usize;
                    if len > max_frame {
                        // Mirror the real server: the stream is no longer
                        // framed — fault with id 0 and close.
                        server.metrics.fault();
                        server.metrics.too_large.inc();
                        server.metrics.frame_bytes.observe(len as u64);
                        let f = WireFault::new(
                            FaultCode::TooLarge,
                            format!("{len}-byte payload exceeds the {max_frame}-byte cap"),
                        );
                        let bytes = encode(&wire::fault(0, &f));
                        server.drop_conn(conn_id);
                        let at = st.transmit(conn_id, false, bytes);
                        st.log(format!("SRV {server_name} conn={conn_id} too-large close"));
                        st.schedule(at, Event::Close { conn: conn_id });
                        return;
                    }
                }
                let mut frames = take_frames(&mut server.conns.get_mut(&conn_id).expect("conn").inbox);
                if frames.is_empty() {
                    let sc = server.conns.get(&conn_id).expect("conn");
                    let pending = sc.inbox.len();
                    if pending > 0 || sc.assembler.active() {
                        // Partial frame, or silence inside an open chunk
                        // transfer: arm the stall probe.
                        let chunks = sc.chunk_seen;
                        let at = st.now_ns + read_timeout.as_nanos() as u64;
                        st.schedule(
                            at,
                            Event::StallCheck {
                                conn: conn_id,
                                len: pending,
                                chunks,
                            },
                        );
                    }
                    return;
                }
                // Put back all but the first; loop re-extracts them.
                let frame_bytes = frames.remove(0);
                if !frames.is_empty() {
                    let sc = st
                        .servers
                        .get_mut(&server_name)
                        .expect("server")
                        .conns
                        .get_mut(&conn_id)
                        .expect("conn");
                    let mut rest: Vec<u8> = frames.concat();
                    rest.extend_from_slice(&sc.inbox);
                    sc.inbox = rest;
                }
                let frame = wire::read_frame(&mut frame_bytes.as_slice(), max_frame)
                    .map_err(|e| e.to_string());
                Some((server_name, frame))
            };
            let Some((server_name, frame)) = action else {
                return;
            };
            match frame {
                Ok(frame) => self.server_on_frame(&server_name, conn_id, frame),
                Err(e) => {
                    let mut st = self.state.lock();
                    let f = WireFault::new(FaultCode::BadFrame, e);
                    if let Some(server) = st.servers.get_mut(&server_name) {
                        server.metrics.fault();
                        server.drop_conn(conn_id);
                    }
                    let bytes = encode(&wire::fault(0, &f));
                    let at = st.transmit(conn_id, false, bytes);
                    st.schedule(at, Event::Close { conn: conn_id });
                    return;
                }
            }
        }
    }

    /// Handles one parsed frame at a server actor — the sim analogue of
    /// the real server's `serve_frames` + worker dispatch.
    fn server_on_frame(self: &Arc<Self>, server_name: &str, conn_id: u64, frame: Frame) {
        // Phase A (locked): everything that needs no application handler.
        let request = {
            let mut st = self.state.lock();
            let busy_prob = st.plan.busy_prob;
            // A chunked transfer only claims a worker slot when it
            // completes, so the busy draw applies to End frames too —
            // mirroring the real server's try_send at Complete.
            let busy_draw = if matches!(frame.kind, FrameType::Request | FrameType::DocChunkEnd) {
                st.rng.random_bool(busy_prob)
            } else {
                false
            };
            let Some(server) = st.servers.get_mut(server_name) else {
                return;
            };
            server.metrics.frame_bytes.observe(frame.payload.len() as u64);
            let shaken = server
                .conns
                .get(&conn_id)
                .map(|c| c.shaken)
                .unwrap_or(false);
            match frame.kind {
                FrameType::Hello => {
                    let reply = match wire::decode_hello(&frame.payload) {
                        Ok((version, _peer)) if version == wire::VERSION => {
                            server.metrics.connections.inc();
                            server.conns.get_mut(&conn_id).expect("conn").shaken = true;
                            wire::welcome_with(&server.config.name, wire::CAP_CHUNKED)
                        }
                        Ok((version, _)) => wire::fault(
                            0,
                            &WireFault::new(
                                FaultCode::Version,
                                format!(
                                    "server speaks version {}, client {version}",
                                    wire::VERSION
                                ),
                            ),
                        ),
                        Err(e) => wire::fault(
                            0,
                            &WireFault::new(FaultCode::BadFrame, format!("bad Hello: {e}")),
                        ),
                    };
                    let bytes = encode(&reply);
                    st.transmit(conn_id, false, bytes);
                    None
                }
                FrameType::StatsRequest => {
                    // Inline, outside request accounting — like the real
                    // reader thread.
                    let snapshot = server.config.metrics.snapshot().to_json();
                    let bytes = encode(&wire::stats_response(frame.id, &snapshot));
                    st.transmit(conn_id, false, bytes);
                    None
                }
                FrameType::Request
                | FrameType::DocChunkStart
                | FrameType::DocChunk
                | FrameType::DocChunkEnd
                    if !shaken =>
                {
                    server.metrics.fault();
                    let f =
                        WireFault::new(FaultCode::BadFrame, "expected Hello to open the connection");
                    let bytes = encode(&wire::fault(frame.id, &f));
                    st.transmit(conn_id, false, bytes);
                    None
                }
                FrameType::DocChunkStart | FrameType::DocChunk | FrameType::DocChunkEnd => {
                    server.metrics.chunk_frames.inc();
                    if frame.kind == FrameType::DocChunk {
                        server
                            .metrics
                            .chunk_bytes
                            .add(frame.payload.len().saturating_sub(4) as u64);
                    }
                    let sc = server.conns.get_mut(&conn_id).expect("conn");
                    sc.chunk_seen += 1;
                    let outcome = sc.assembler.accept(&frame);
                    let now = sc.assembler.buffered_len() as i64;
                    server.metrics.chunk_reassembly.add(now - sc.reported);
                    sc.reported = now;
                    match outcome {
                        Ok(ChunkProgress::Pending) | Ok(ChunkProgress::Drained) => None,
                        Ok(ChunkProgress::Complete { name, bytes, .. }) => {
                            match String::from_utf8(bytes) {
                                Ok(text) if busy_draw => {
                                    // The completed document is rejected at
                                    // the worker-queue door, like a Request.
                                    server.metrics.fault();
                                    server.metrics.busy.inc();
                                    let f = WireFault::new(
                                        FaultCode::Busy,
                                        "in-flight request queue is full",
                                    )
                                    .retryable();
                                    let bytes = encode(&wire::fault(frame.id, &f));
                                    st.log(format!("SRV {server_name} conn={conn_id} busy"));
                                    st.transmit(conn_id, false, bytes);
                                    let _ = (name, text);
                                    None
                                }
                                Ok(text) => Some((frame.id, SrvWork::Document { name, text })),
                                Err(_) => {
                                    server.metrics.fault();
                                    server.metrics.chunk_aborts.inc();
                                    let f = WireFault::new(
                                        FaultCode::Client,
                                        "chunked document is not UTF-8",
                                    );
                                    let bytes = encode(&wire::fault(frame.id, &f));
                                    st.transmit(conn_id, false, bytes);
                                    None
                                }
                            }
                        }
                        Err(e) => {
                            // Transfer dead, stream still framed: fault the
                            // transfer's id and keep serving, like the real
                            // server.
                            server.metrics.fault();
                            server.metrics.chunk_aborts.inc();
                            let f = match e {
                                WireError::TooLarge { len, max } => {
                                    server.metrics.too_large.inc();
                                    server.metrics.frame_bytes.observe(len as u64);
                                    WireFault::new(
                                        FaultCode::TooLarge,
                                        format!(
                                            "chunked transfer of {len} cumulative bytes exceeds the {max}-byte cap"
                                        ),
                                    )
                                }
                                other => WireFault::new(FaultCode::BadFrame, other.to_string()),
                            };
                            let bytes = encode(&wire::fault(frame.id, &f));
                            st.transmit(conn_id, false, bytes);
                            None
                        }
                    }
                }
                FrameType::Request => {
                    if busy_draw {
                        server.metrics.fault();
                        server.metrics.busy.inc();
                        let f = WireFault::new(
                            FaultCode::Busy,
                            "in-flight request queue is full",
                        )
                        .retryable();
                        let bytes = encode(&wire::fault(frame.id, &f));
                        st.log(format!("SRV {server_name} conn={conn_id} busy"));
                        st.transmit(conn_id, false, bytes);
                        None
                    } else {
                        match wire::decode_envelope(&frame.payload) {
                            Ok(envelope) => Some((frame.id, SrvWork::Envelope(envelope))),
                            Err(e) => {
                                server.metrics.fault();
                                let f = WireFault::new(FaultCode::Client, e.to_string());
                                let bytes = encode(&wire::fault(frame.id, &f));
                                st.transmit(conn_id, false, bytes);
                                None
                            }
                        }
                    }
                }
                other => {
                    server.metrics.fault();
                    let f = WireFault::new(
                        FaultCode::BadFrame,
                        format!("expected a Request frame, got {other:?}"),
                    );
                    let bytes = encode(&wire::fault(frame.id, &f));
                    st.transmit(conn_id, false, bytes);
                    None
                }
            }
        };
        // Phase B (unlocked): the application handler.
        let Some((id, work)) = request else {
            return;
        };
        let handler = {
            let st = self.state.lock();
            match st.servers.get(server_name) {
                Some(s) => Arc::clone(&s.handler),
                None => return,
            }
        };
        let outcome = match &work {
            SrvWork::Envelope(envelope) => handler.handle(id, envelope),
            SrvWork::Document { name, text } => handler.handle_document(id, name, text),
        };
        // Phase C (locked): account and send the reply. The endpoint may
        // have crashed while "handling" — then the reply is lost with it.
        let mut st = self.state.lock();
        let Some(server) = st.servers.get_mut(server_name) else {
            return;
        };
        if !server.up || !server.conns.contains_key(&conn_id) {
            st.log(format!(
                "SRV {server_name} conn={conn_id} reply lost (crash during handling)"
            ));
            return;
        }
        let reply = match outcome {
            Ok(envelope) => {
                server.metrics.ok();
                wire::response(id, &envelope)
            }
            Err(fault) => {
                server.metrics.fault();
                wire::fault(id, &fault)
            }
        };
        let bytes = encode(&reply);
        st.transmit(conn_id, false, bytes);
    }

    fn stall_check(self: &Arc<Self>, conn_id: u64, len: usize, chunks: u64) {
        let mut st = self.state.lock();
        let Some(conn) = st.conns.get(&conn_id) else {
            return;
        };
        if conn.state != ConnState::Open {
            return;
        }
        let server_name = conn.server.clone();
        let Some(server) = st.servers.get_mut(&server_name) else {
            return;
        };
        let Some(sc) = server.conns.get(&conn_id) else {
            return;
        };
        let still = sc.inbox.len();
        if still != len || sc.chunk_seen != chunks {
            return; // progress was made since the probe was armed
        }
        let msg = if still > 0 {
            "read timed out mid-frame"
        } else if sc.assembler.active() {
            "read timed out mid-chunk-transfer"
        } else {
            return; // inbox drained and no transfer open: idle, not stalled
        };
        server.metrics.fault();
        server.metrics.timeouts.inc();
        server.drop_conn(conn_id);
        let f = WireFault::new(FaultCode::Timeout, msg);
        let bytes = encode(&wire::fault(0, &f));
        st.log(format!("SRV {server_name} conn={conn_id} stalled close"));
        let at = st.transmit(conn_id, false, bytes);
        st.schedule(at, Event::Close { conn: conn_id });
    }
}

/// Virtual time as a [`Clock`]: sleeping pumps the world.
pub struct SimClock {
    world: Arc<WorldInner>,
}

impl Clock for SimClock {
    fn now_ns(&self) -> u64 {
        self.world.state.lock().now_ns
    }

    fn sleep(&self, d: Duration) {
        let target = self.world.state.lock().now_ns + d.as_nanos() as u64;
        self.world.advance_to(target);
    }
}

/// The in-memory [`Transport`]: endpoints are names registered with
/// [`SimWorld::listen`].
pub struct SimTransport {
    world: Arc<WorldInner>,
    client_name: String,
}

impl Transport for SimTransport {
    fn connect(&self, endpoint: &str, timeout: Duration) -> io::Result<Box<dyn Duplex>> {
        // Dialing costs one base latency of virtual time either way.
        let (target, refused, partitioned) = {
            let st = self.world.state.lock();
            let base = st.plan.base_latency_ns;
            let up = st.servers.get(endpoint).map(|s| s.up);
            let partitioned = st.partitioned(&self.client_name, endpoint);
            let target = st.now_ns
                + if partitioned {
                    timeout.as_nanos() as u64
                } else {
                    base
                };
            (target, up != Some(true), partitioned)
        };
        self.world.advance_to(target);
        if partitioned {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("connect to {endpoint} timed out (partitioned)"),
            ));
        }
        if refused {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("{endpoint} refused the connection"),
            ));
        }
        let mut st = self.world.state.lock();
        // The endpoint may have crashed while the dial was in flight.
        if st.servers.get(endpoint).map(|s| s.up) != Some(true) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("{endpoint} refused the connection"),
            ));
        }
        let id = st.next_conn;
        st.next_conn += 1;
        st.conns.insert(
            id,
            Conn {
                client_name: self.client_name.clone(),
                server: endpoint.to_owned(),
                state: ConnState::Open,
                client_inbox: VecDeque::new(),
                to_server_pending: Vec::new(),
            },
        );
        {
            let server = st.servers.get_mut(endpoint).expect("listening server");
            let max_doc = server.config.max_doc;
            server.conns.insert(id, SrvConn::new(max_doc));
        }
        st.log(format!(
            "CONNECT {}->{endpoint} conn={id}",
            self.client_name
        ));
        Ok(Box::new(SimDuplex {
            world: Arc::clone(&self.world),
            conn: id,
            read_timeout: Mutex::new(Some(Duration::from_secs(5))),
        }))
    }

    fn bind(&self, endpoint: &str) -> io::Result<Box<dyn Acceptor>> {
        // The sim's servers are event-driven actors, not accept loops:
        // register them with SimWorld::listen instead.
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("sim transport has no acceptor; register {endpoint} via SimWorld::listen"),
        ))
    }
}

/// The client side of one simulated connection.
pub struct SimDuplex {
    world: Arc<WorldInner>,
    conn: u64,
    read_timeout: Mutex<Option<Duration>>,
}

impl Read for SimDuplex {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let timeout = *self.read_timeout.lock();
        let deadline = {
            let st = self.world.state.lock();
            timeout.map(|t| st.now_ns + t.as_nanos() as u64)
        };
        loop {
            let next_event = {
                let mut st = self.world.state.lock();
                let Some(conn) = st.conns.get_mut(&self.conn) else {
                    return Err(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "connection is gone",
                    ));
                };
                if !conn.client_inbox.is_empty() {
                    let n = buf.len().min(conn.client_inbox.len());
                    for b in buf.iter_mut().take(n) {
                        *b = conn.client_inbox.pop_front().expect("checked non-empty");
                    }
                    return Ok(n);
                }
                match conn.state {
                    ConnState::Reset => {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionReset,
                            "connection reset by simulated fault",
                        ));
                    }
                    ConnState::Closed => return Ok(0),
                    ConnState::Open => {}
                }
                st.queue.peek().map(|s| s.at_ns)
            };
            match (next_event, deadline) {
                // An event is due before the deadline: pump it.
                (Some(at), Some(dl)) if at <= dl => self.world.advance_to(at),
                (Some(at), None) => self.world.advance_to(at),
                // Nothing can arrive in time: burn the wait, time out.
                (_, Some(dl)) => {
                    self.world.advance_to(dl);
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        "simulated read timed out",
                    ));
                }
                (None, None) => {
                    let mut st = self.world.state.lock();
                    let tail: Vec<_> = st.log.iter().rev().take(25).cloned().collect();
                    st.log("DEADLOCK".to_owned());
                    panic!(
                        "sim deadlock: blocking read with no timeout and no scheduled events; log tail:\n{}",
                        tail.into_iter().rev().collect::<Vec<_>>().join("\n")
                    );
                }
            }
        }
    }
}

impl Write for SimDuplex {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.world.state.lock();
        let Some(conn) = st.conns.get_mut(&self.conn) else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection is gone",
            ));
        };
        match conn.state {
            ConnState::Open => {}
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "connection is closed",
                ));
            }
        }
        conn.to_server_pending.extend_from_slice(buf);
        let frames = take_frames(&mut conn.to_server_pending);
        for frame in frames {
            st.transmit(self.conn, true, frame);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Ship any partial frame as a raw segment: this is how a test
        // models a writer that stalls mid-frame.
        let mut st = self.world.state.lock();
        let Some(conn) = st.conns.get_mut(&self.conn) else {
            return Ok(());
        };
        if conn.state == ConnState::Open && !conn.to_server_pending.is_empty() {
            let bytes = std::mem::take(&mut conn.to_server_pending);
            st.transmit(self.conn, true, bytes);
        }
        Ok(())
    }
}

impl Duplex for SimDuplex {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        *self.read_timeout.lock() = d;
        Ok(())
    }

    fn set_write_timeout(&self, _d: Option<Duration>) -> io::Result<()> {
        Ok(()) // sim writes never block
    }

    fn try_clone(&self) -> io::Result<Box<dyn Duplex>> {
        Ok(Box::new(SimDuplex {
            world: Arc::clone(&self.world),
            conn: self.conn,
            read_timeout: Mutex::new(*self.read_timeout.lock()),
        }))
    }

    fn shutdown(&self) -> io::Result<()> {
        let mut st = self.world.state.lock();
        let server = if let Some(conn) = st.conns.get_mut(&self.conn) {
            conn.state = ConnState::Closed;
            conn.server.clone()
        } else {
            return Ok(());
        };
        if let Some(server) = st.servers.get_mut(&server) {
            server.drop_conn(self.conn);
        }
        Ok(())
    }
}
