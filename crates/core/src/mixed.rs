//! The mixed approach (Sec. 5, "A Mixed Approach").
//!
//! Safe rewriting pays for its guarantee with a large `A_w^k`: every
//! possible output of every call is accounted for. When some calls are
//! cheap and side-effect free, it is better to *just invoke them* and
//! continue the analysis with their actual results — the full signature
//! automaton `A_f` is replaced by the (much smaller) word that actually
//! came back.
//!
//! [`rewrite_mixed`] implements this: a policy designates the eagerly
//! invocable functions; a pre-materialization pass invokes them (up to `k`
//! rounds, since answers may contain more calls) and splices the validated
//! results; the ordinary safe rewriting then runs on the partially
//! materialized document.

use crate::invoke::Invoker;
use crate::rewrite::{RewriteError, RewriteReport, Rewriter};
use axml_schema::{validate_output_instance, FuncNode, ITree};

/// Decides which calls to execute eagerly during the pre-materialization
/// pass — typically the side-effect-free / zero-cost ones (Sec. 5).
pub trait MixedPolicy {
    /// True if `function` may be invoked eagerly.
    fn pre_invoke(&self, function: &str) -> bool;
}

impl<F: Fn(&str) -> bool> MixedPolicy for F {
    fn pre_invoke(&self, function: &str) -> bool {
        self(function)
    }
}

/// Executes a mixed rewriting: eagerly materialize policy-selected calls,
/// then safely rewrite the rest.
///
/// Returns the rewritten tree and a combined report (pre-materialization
/// calls are included in `invoked`).
pub fn rewrite_mixed(
    rewriter: &mut Rewriter<'_>,
    tree: &ITree,
    policy: &dyn MixedPolicy,
    invoker: &mut dyn Invoker,
) -> Result<(ITree, RewriteReport), RewriteError> {
    let mut report = RewriteReport::default();
    let rounds = rewriter.k;
    let mut current = tree.clone();
    for _ in 0..rounds {
        let (next, changed) = pre_materialize(rewriter, &current, policy, invoker, &mut report)?;
        current = next;
        if !changed {
            break;
        }
    }
    let (out, safe_report) = rewriter.rewrite_safe(&current, invoker)?;
    report.invoked.extend(safe_report.invoked);
    report.games += safe_report.games;
    report.wasted_calls += safe_report.wasted_calls;
    Ok((out, report))
}

/// One pass: invokes every policy-selected call at any position, splicing
/// validated results in place. Returns the new tree and whether anything
/// changed.
fn pre_materialize(
    rewriter: &mut Rewriter<'_>,
    tree: &ITree,
    policy: &dyn MixedPolicy,
    invoker: &mut dyn Invoker,
    report: &mut RewriteReport,
) -> Result<(ITree, bool), RewriteError> {
    match tree {
        ITree::Text(_) => Ok((tree.clone(), false)),
        ITree::Func(f) => {
            // Calls kept at this position: recurse into parameters only.
            let (params, changed) =
                pre_materialize_forest(rewriter, &f.params, policy, invoker, report)?;
            Ok((
                ITree::Func(FuncNode {
                    params,
                    ..f.clone()
                }),
                changed,
            ))
        }
        ITree::Elem { label, children } => {
            let mut changed = false;
            let mut out = Vec::with_capacity(children.len());
            for c in children {
                if let ITree::Func(f) = c {
                    let compiled = rewriter.compiled();
                    let sym = compiled.classify_func(&f.name);
                    if policy.pre_invoke(&f.name) && compiled.invocable(sym) {
                        if let Some(max) = rewriter.max_calls {
                            if report.invoked.len() >= max {
                                return Err(RewriteError::CallBudget { max_calls: max });
                            }
                        }
                        let result = invoker.invoke(&f.name, &f.params)?;
                        report.invoked.push(f.name.clone());
                        let sig = compiled.sig(sym).expect("function symbols have signatures");
                        validate_output_instance(&result, &sig.output_dfa, compiled).map_err(
                            |e| RewriteError::IllTyped {
                                function: f.name.clone(),
                                message: e.to_string(),
                            },
                        )?;
                        out.extend(result);
                        changed = true;
                        continue;
                    }
                }
                let (processed, c_changed) = pre_materialize(rewriter, c, policy, invoker, report)?;
                changed |= c_changed;
                out.push(processed);
            }
            Ok((ITree::elem(label, out), changed))
        }
    }
}

fn pre_materialize_forest(
    rewriter: &mut Rewriter<'_>,
    items: &[ITree],
    policy: &dyn MixedPolicy,
    invoker: &mut dyn Invoker,
    report: &mut RewriteReport,
) -> Result<(Vec<ITree>, bool), RewriteError> {
    let mut changed = false;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let (processed, c) = pre_materialize(rewriter, item, policy, invoker, report)?;
        changed |= c;
        out.push(processed);
    }
    Ok((out, changed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invoke::ScriptedInvoker;
    use axml_schema::{validate, Compiled, NoOracle, Schema};

    fn compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.temp.exhibit*")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    fn newspaper() -> ITree {
        ITree::elem(
            "newspaper",
            vec![
                ITree::data("title", "The Sun"),
                ITree::data("date", "04/10/2002"),
                ITree::func("Get_Temp", vec![ITree::data("city", "Paris")]),
                ITree::func("TimeOut", vec![ITree::text("exhibits")]),
            ],
        )
    }

    #[test]
    fn mixed_succeeds_where_pure_safe_fails() {
        // Schema (***) is unsafe for the newspaper document because TimeOut
        // may return performances. Pre-invoking TimeOut (declared
        // side-effect free by policy) resolves the uncertainty: its actual
        // answer contains only exhibits, and the rest is safely rewritten.
        let c = compiled();
        let mut rw = Rewriter::new(&c).with_k(1);
        // Pure safe rewriting fails.
        assert!(rw.analyze_safe(&newspaper()).is_err());
        // Mixed: TimeOut is cheap, pre-invoke it.
        let mut inv = ScriptedInvoker::new()
            .answer(
                "TimeOut",
                vec![ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Expo"), ITree::data("date", "Mon")],
                )],
            )
            .answer("Get_Temp", vec![ITree::data("temp", "15 C")]);
        let policy = |name: &str| name == "TimeOut";
        let (out, report) = rewrite_mixed(&mut rw, &newspaper(), &policy, &mut inv).unwrap();
        validate(&out, &c).unwrap();
        assert_eq!(
            report.invoked,
            vec!["TimeOut".to_owned(), "Get_Temp".to_owned()]
        );
        assert_eq!(out.num_funcs(), 0);
    }

    #[test]
    fn mixed_fails_when_actual_answer_unlucky() {
        // Pre-invoked TimeOut returns a performance: the materialized
        // document can no longer fit (***) and safe rewriting fails.
        let c = compiled();
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new().answer(
            "TimeOut",
            vec![ITree::elem("performance", vec![ITree::text("Hamlet")])],
        );
        let policy = |name: &str| name == "TimeOut";
        let err = rewrite_mixed(&mut rw, &newspaper(), &policy, &mut inv).unwrap_err();
        assert!(matches!(err, RewriteError::NotSafe { .. }), "{err}");
        assert_eq!(inv.calls(), 1, "only the pre-invocation happened");
    }

    #[test]
    fn empty_policy_reduces_to_safe_rewriting() {
        let c = Compiled::new(
            Schema::builder()
                .element("r", "a")
                .data_element("a")
                .function("f", "", "a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let mut rw = Rewriter::new(&c).with_k(1);
        let doc = ITree::elem("r", vec![ITree::func("f", vec![])]);
        let mut inv = ScriptedInvoker::new().answer("f", vec![ITree::data("a", "1")]);
        let policy = |_: &str| false;
        let (out, report) = rewrite_mixed(&mut rw, &doc, &policy, &mut inv).unwrap();
        assert_eq!(report.invoked, vec!["f".to_owned()]);
        assert_eq!(out, ITree::elem("r", vec![ITree::data("a", "1")]));
    }

    #[test]
    fn pre_materialization_rounds_follow_nested_answers() {
        // handle -> handle -> a : two rounds of eager materialization.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "a")
                .data_element("a")
                .function("h1", "", "h2")
                .function("h2", "", "a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let mut rw = Rewriter::new(&c).with_k(2);
        let doc = ITree::elem("r", vec![ITree::func("h1", vec![])]);
        let mut inv = ScriptedInvoker::new()
            .answer("h1", vec![ITree::func("h2", vec![])])
            .answer("h2", vec![ITree::data("a", "1")]);
        let policy = |_: &str| true;
        let (out, report) = rewrite_mixed(&mut rw, &doc, &policy, &mut inv).unwrap();
        assert_eq!(out, ITree::elem("r", vec![ITree::data("a", "1")]));
        assert_eq!(report.invoked, vec!["h1".to_owned(), "h2".to_owned()]);
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::invoke::ScriptedInvoker;
    use axml_schema::{Compiled, NoOracle, Schema};

    #[test]
    fn mixed_pre_pass_respects_call_budget() {
        let c = Compiled::new(
            Schema::builder()
                .element("r", "a.a")
                .data_element("a")
                .function("f", "", "a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let doc = ITree::elem(
            "r",
            vec![ITree::func("f", vec![]), ITree::func("f", vec![])],
        );
        let mut inv = ScriptedInvoker::new().answer("f", vec![ITree::data("a", "1")]);
        let mut rw = crate::rewrite::Rewriter::new(&c)
            .with_k(1)
            .with_max_calls(1);
        let policy = |_: &str| true;
        let err = rewrite_mixed(&mut rw, &doc, &policy, &mut inv).unwrap_err();
        assert!(
            matches!(err, RewriteError::CallBudget { max_calls: 1 }),
            "{err}"
        );
        assert_eq!(inv.calls(), 1);
    }
}
