//! The service-invocation boundary.
//!
//! Rewriting *executes* against live services: when the strategy decides to
//! materialize a call, the function is invoked with its (materialized)
//! parameters and the returned forest is spliced in place of the function
//! node (Def. 4). This module defines the trait the rewriter calls through;
//! `axml-services` provides real (simulated) implementations.

use axml_schema::ITree;
use std::collections::HashMap;
use std::fmt;

/// Error returned by a service invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeError {
    /// The function that failed.
    pub function: String,
    /// Why.
    pub message: String,
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invocation of '{}' failed: {}",
            self.function, self.message
        )
    }
}

impl std::error::Error for InvokeError {}

/// Something that can execute Web-service calls.
pub trait Invoker {
    /// Invokes `function` with the given (already materialized) parameters
    /// and returns the result forest.
    fn invoke(&mut self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, InvokeError>;
}

/// A scripted invoker for tests: each function name maps to a queue of
/// canned answers, replayed in order (the last answer repeats forever).
#[derive(Debug, Default, Clone)]
pub struct ScriptedInvoker {
    answers: HashMap<String, Vec<Vec<ITree>>>,
    cursor: HashMap<String, usize>,
    /// Every call made, in order: `(function, params)`.
    pub log: Vec<(String, Vec<ITree>)>,
}

impl ScriptedInvoker {
    /// Creates an empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one canned answer for `function` (queued after existing ones).
    pub fn answer(mut self, function: &str, forest: Vec<ITree>) -> Self {
        self.answers
            .entry(function.to_owned())
            .or_default()
            .push(forest);
        self
    }

    /// Number of calls made so far.
    pub fn calls(&self) -> usize {
        self.log.len()
    }
}

/// An invoker that refuses every call. Useful where an enforcement pass
/// is expected to succeed without invoking anything — e.g. a receiver
/// verifying that a shipped document needs no further materialization —
/// so that any attempted call surfaces as a hard error.
#[derive(Debug, Default, Clone, Copy)]
pub struct RefusingInvoker;

impl Invoker for RefusingInvoker {
    fn invoke(&mut self, function: &str, _params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        Err(InvokeError {
            function: function.to_owned(),
            message: "invocation refused".to_owned(),
        })
    }
}

impl Invoker for ScriptedInvoker {
    fn invoke(&mut self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        self.log.push((function.to_owned(), params.to_vec()));
        let answers = self.answers.get(function).ok_or_else(|| InvokeError {
            function: function.to_owned(),
            message: "no scripted answer".to_owned(),
        })?;
        let i = self.cursor.entry(function.to_owned()).or_insert(0);
        let answer = answers
            .get(*i)
            .or_else(|| answers.last())
            .ok_or_else(|| InvokeError {
                function: function.to_owned(),
                message: "empty script".to_owned(),
            })?;
        *i += 1;
        Ok(answer.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_answers_replay_in_order_then_repeat() {
        let mut inv = ScriptedInvoker::new()
            .answer("f", vec![ITree::data("a", "1")])
            .answer("f", vec![ITree::data("a", "2")]);
        assert_eq!(inv.invoke("f", &[]).unwrap()[0], ITree::data("a", "1"));
        assert_eq!(inv.invoke("f", &[]).unwrap()[0], ITree::data("a", "2"));
        assert_eq!(inv.invoke("f", &[]).unwrap()[0], ITree::data("a", "2"));
        assert_eq!(inv.calls(), 3);
        assert!(inv.invoke("ghost", &[]).is_err());
    }
}
