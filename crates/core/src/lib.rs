//! Core algorithms of *Exchanging Intensional XML Data* (SIGMOD 2003).
//!
//! This crate is the paper's contribution: deciding how much of an
//! intensional XML document must be materialized before it is exchanged,
//! and doing the materialization.
//!
//! * [`awk`] — the k-depth expansion automaton `A_w^k` (Fig. 3 steps 5–10).
//! * [`safe`] — safe rewriting: product with the complement + game marking
//!   (Fig. 3), in eager and lazy/pruned (Sec. 7, Fig. 12) build modes.
//! * [`possible`] — possible rewriting: product with the target +
//!   reachability (Fig. 9).
//! * [`rewrite`] — the three-stage document rewriter of Sec. 4 (parameters
//!   bottom-up, traversal top-down, per-node word games) with execution
//!   against live services, including the backtracking executor of Sec. 5.
//! * [`stream`] — streaming bounded-memory enforcement: the same rewrite
//!   driven incrementally off the pull parser, materializing only the
//!   subtrees that contain function calls.
//! * [`mixed`] — the mixed approach of Sec. 5 (eager invocation of cheap
//!   calls, then safe analysis on actual results).
//! * [`adversary`] — strategic opponents extracted from the solved games:
//!   worst-case type-correct answers for a given call.
//! * [`schema_rw`] — schema-to-schema safe rewriting (Sec. 6).
//! * [`invoke`] — the service-invocation boundary.
//! * [`brute`] — brute-force reference implementations of the definitions,
//!   used to cross-check the automata algorithms.
//!
//! ```
//! use axml_core::rewrite::Rewriter;
//! use axml_core::invoke::ScriptedInvoker;
//! use axml_schema::{Compiled, ITree, NoOracle, Schema, newspaper_example, validate};
//!
//! // The exchange schema (**): temperature must be materialized.
//! let schema = Schema::builder()
//!     .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
//!     .data_element("title").data_element("date")
//!     .data_element("temp").data_element("city")
//!     .element("exhibit", "title.(Get_Date|date)")
//!     .data_element("performance")
//!     .function("Get_Temp", "city", "temp")
//!     .function("TimeOut", "data", "(exhibit|performance)*")
//!     .function("Get_Date", "title", "date")
//!     .build().unwrap();
//! let compiled = Compiled::new(schema, &NoOracle).unwrap();
//!
//! let mut invoker = ScriptedInvoker::new()
//!     .answer("Get_Temp", vec![ITree::data("temp", "15 C")]);
//! let mut rewriter = Rewriter::new(&compiled).with_k(1);
//! let (sent, report) = rewriter.rewrite_safe(&newspaper_example(), &mut invoker).unwrap();
//! assert_eq!(report.invoked, vec!["Get_Temp".to_string()]);
//! validate(&sent, &compiled).unwrap();
//! ```

#![warn(missing_docs)]

pub mod adversary;
pub mod awk;
pub mod brute;
pub mod dot;
pub mod invoke;
pub mod mixed;
pub mod possible;
pub mod rewrite;
pub mod safe;
pub mod schema_rw;
pub mod solve_cache;
pub mod stream;
