//! Brute-force reference implementations of Defs. 4–5.
//!
//! These evaluate the k-depth left-to-right rewriting game *directly*, by
//! enumerating every output instance of every invocable call. They are
//! exponential and only work when output types denote **finite** languages
//! (no stars), but they implement the definitions with no automata theory
//! at all — the property-test suites cross-check the product-and-marking
//! algorithms of [`crate::safe`] / [`crate::possible`] against them on
//! small instances.

use axml_automata::{Dfa, Nfa, Regex, Symbol};
use axml_schema::Compiled;

/// Enumerates `lang(re)`; `None` if the language is infinite or larger
/// than `max_words`.
pub fn enumerate_language(re: &Regex, max_words: usize) -> Option<Vec<Vec<Symbol>>> {
    if has_unbounded(re) {
        return None;
    }
    let mut words = enum_rec(re)?;
    words.sort();
    words.dedup();
    if words.len() > max_words {
        return None;
    }
    Some(words)
}

fn has_unbounded(re: &Regex) -> bool {
    match re {
        Regex::Empty | Regex::Epsilon | Regex::Sym(_) => false,
        Regex::Seq(ps) | Regex::Alt(ps) => ps.iter().any(has_unbounded),
        Regex::Star(_) | Regex::Plus(_) => true,
        Regex::Opt(inner) => has_unbounded(inner),
        Regex::Repeat(inner, _, max) => max.is_none() || has_unbounded(inner),
    }
}

fn enum_rec(re: &Regex) -> Option<Vec<Vec<Symbol>>> {
    Some(match re {
        Regex::Empty => vec![],
        Regex::Epsilon => vec![vec![]],
        Regex::Sym(s) => vec![vec![*s]],
        Regex::Seq(parts) => {
            let mut acc: Vec<Vec<Symbol>> = vec![vec![]];
            for p in parts {
                let words = enum_rec(p)?;
                let mut next = Vec::new();
                for a in &acc {
                    for w in &words {
                        let mut joined = a.clone();
                        joined.extend(w);
                        next.push(joined);
                    }
                }
                acc = next;
                if acc.len() > 100_000 {
                    return None;
                }
            }
            acc
        }
        Regex::Alt(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(enum_rec(p)?);
            }
            out
        }
        Regex::Opt(inner) => {
            let mut out = enum_rec(inner)?;
            out.push(vec![]);
            out
        }
        Regex::Repeat(inner, min, max) => {
            let max = (*max)?;
            let words = enum_rec(inner)?;
            let mut out = Vec::new();
            for n in *min..=max {
                let mut acc: Vec<Vec<Symbol>> = vec![vec![]];
                for _ in 0..n {
                    let mut next = Vec::new();
                    for a in &acc {
                        for w in &words {
                            let mut joined = a.clone();
                            joined.extend(w);
                            next.push(joined);
                        }
                    }
                    acc = next;
                }
                out.extend(acc);
                if out.len() > 100_000 {
                    return None;
                }
            }
            out
        }
        Regex::Star(_) | Regex::Plus(_) => return None,
    })
}

/// Brute-force k-depth left-to-right **safe** rewriting of `w` into the
/// language of `target` (which must be a complete DFA of the target — not
/// its complement).
///
/// Returns `None` if some invocable output type is infinite.
pub fn brute_safe(w: &[Symbol], compiled: &Compiled, k: u32, target: &Regex) -> Option<bool> {
    let n = compiled.alphabet().len();
    let dfa = Dfa::determinize(&Nfa::thompson(target, n)).completed(n);
    let tagged: Vec<(Symbol, u32)> = w.iter().map(|&s| (s, 1)).collect();
    brute_go(&tagged, dfa.start, compiled, k, &dfa, true)
}

/// Brute-force k-depth left-to-right **possible** rewriting.
pub fn brute_possible(w: &[Symbol], compiled: &Compiled, k: u32, target: &Regex) -> Option<bool> {
    let n = compiled.alphabet().len();
    let dfa = Dfa::determinize(&Nfa::thompson(target, n)).completed(n);
    let tagged: Vec<(Symbol, u32)> = w.iter().map(|&s| (s, 1)).collect();
    brute_go(&tagged, dfa.start, compiled, k, &dfa, false)
}

/// The direct game: process occurrences left to right; at each invocable
/// occurrence (depth ≤ k) the rewriter chooses keep or invoke; invoking
/// universally (safe) or existentially (possible) quantifies over all
/// output instances, whose occurrences carry depth + 1.
fn brute_go(
    suffix: &[(Symbol, u32)],
    q: u32,
    compiled: &Compiled,
    k: u32,
    dfa: &Dfa,
    safe: bool,
) -> Option<bool> {
    let Some(((sym, depth), rest)) = suffix.split_first() else {
        return Some(dfa.finals[q as usize]);
    };
    // Option 1: keep the occurrence as a plain letter.
    let keep = brute_go(rest, dfa.next(q, *sym), compiled, k, dfa, safe)?;
    if keep {
        return Some(true);
    }
    // Option 2: invoke, when allowed.
    if *depth > k || !compiled.invocable(*sym) {
        return Some(false);
    }
    let sig = compiled
        .sig(*sym)
        .expect("invocable symbols have signatures");
    let outputs = enumerate_language(&sig.output, 50_000)?;
    let mut invoke_result = true;
    let mut any = false;
    for out in &outputs {
        let mut new_suffix: Vec<(Symbol, u32)> = out.iter().map(|&s| (s, depth + 1)).collect();
        new_suffix.extend_from_slice(rest);
        let r = brute_go(&new_suffix, q, compiled, k, dfa, safe)?;
        if safe {
            invoke_result &= r;
            if !invoke_result {
                break;
            }
        } else {
            any |= r;
            if any {
                break;
            }
        }
    }
    if safe {
        // Invoking succeeds iff *all* outputs work (and at least one output
        // exists — an empty output language means the call can never
        // return, which we treat as failure).
        Some(!outputs.is_empty() && invoke_result)
    } else {
        Some(any)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awk::{Awk, AwkLimits};
    use crate::possible::PossibleGame;
    use crate::safe::{complement_of, BuildMode, SafeGame};
    use axml_schema::{NoOracle, Schema};

    fn star_free_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("r", "(f|g|h|a|b)?(f|g|h|a|b)?")
                .allow_ambiguous()
                .data_element("a")
                .data_element("b")
                .function("f", "", "a|b")
                .function("g", "", "a.a?")
                .function("h", "", "g|b")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    fn check_agreement(c: &Compiled, w_names: &[&str], target: &str, k: u32) {
        let w: Vec<Symbol> = w_names
            .iter()
            .map(|n| c.alphabet().lookup(n).unwrap())
            .collect();
        let mut ab = c.alphabet().clone();
        let re = Regex::parse(target, &mut ab).unwrap();
        assert_eq!(
            ab.len(),
            c.alphabet().len(),
            "target must use known symbols"
        );
        // Algorithmic answers.
        let awk = Awk::build(&w, c, k, &AwkLimits::default()).unwrap();
        let safe_alg = SafeGame::solve(
            awk.clone(),
            complement_of(&re, c.alphabet().len()),
            BuildMode::Eager,
        )
        .is_safe();
        let safe_lazy = SafeGame::solve(
            awk.clone(),
            complement_of(&re, c.alphabet().len()),
            BuildMode::Lazy,
        )
        .is_safe();
        let poss_alg = PossibleGame::solve(
            awk,
            Dfa::determinize(&Nfa::thompson(&re, c.alphabet().len())),
        )
        .is_possible();
        // Reference answers.
        let safe_ref = brute_safe(&w, c, k, &re).expect("finite outputs");
        let poss_ref = brute_possible(&w, c, k, &re).expect("finite outputs");
        assert_eq!(
            safe_alg, safe_ref,
            "safe mismatch on {w_names:?} -> {target} (k={k})"
        );
        assert_eq!(
            safe_lazy, safe_ref,
            "lazy mismatch on {w_names:?} -> {target} (k={k})"
        );
        assert_eq!(
            poss_alg, poss_ref,
            "possible mismatch on {w_names:?} -> {target} (k={k})"
        );
        // Sanity: safe implies possible.
        assert!(!safe_ref || poss_ref);
    }

    #[test]
    fn exhaustive_agreement_on_small_instances() {
        let c = star_free_compiled();
        let symbols = ["f", "g", "h", "a", "b"];
        let targets = [
            "a",
            "b",
            "a.a",
            "a.b",
            "a|b",
            "(a|b).(a|b)",
            "a.a?",
            "a?",
            "a.a.a",
            "(a|b)?",
            "b.a",
            "a.(a|b)",
            "g|a.a?",
            "f.a",
            "",
        ];
        // All words of length ≤ 2 over the 5 symbols, all targets, k ∈ {0,1,2}.
        let mut words: Vec<Vec<&str>> = vec![vec![]];
        for &s in &symbols {
            words.push(vec![s]);
        }
        for &s1 in &symbols {
            for &s2 in &symbols {
                words.push(vec![s1, s2]);
            }
        }
        for w in &words {
            for t in &targets {
                for k in 0..=2 {
                    check_agreement(&c, w, t, k);
                }
            }
        }
    }

    #[test]
    fn enumerate_language_works() {
        let mut ab = axml_automata::Alphabet::new();
        let re = Regex::parse("(a|b).c?", &mut ab).unwrap();
        let words = enumerate_language(&re, 100).unwrap();
        assert_eq!(words.len(), 4);
        let re2 = Regex::parse("a*", &mut ab).unwrap();
        assert_eq!(enumerate_language(&re2, 100), None);
        let re3 = Regex::parse("a{1,3}", &mut ab).unwrap();
        assert_eq!(enumerate_language(&re3, 100).unwrap().len(), 3);
    }
}
