//! Schema-to-schema safe rewriting (Sec. 6).
//!
//! To check compatibility between applications, the sender verifies that
//! *every* document its schema `s0` can generate (with root `r`) safely
//! rewrites into the exchange schema `s`. The paper's reduction: rather
//! than testing the infinitely many instances, it suffices to test, for
//! each element type of `s0` reachable from the root, whether a single
//! *virtual function* whose output type is that element's content model can
//! be safely rewritten into the corresponding content model of `s`.
//!
//! We materialize the reduction literally: an auxiliary schema is built by
//! overlaying `s0` onto `s` and adding one must-invoke virtual function
//! `#virt:l` per reachable label `l` with `τ_out(#virt:l) = τ0(l)`; the
//! single-letter word `#virt:l` is then tested for safe rewriting into
//! `τ(l)` at depth `k + 1` (one level is spent expanding the virtual call).

use crate::awk::{Awk, AwkLimits};
use crate::safe::{complement_of, BuildMode, SafeGame};
use axml_automata::{Dfa, Nfa, Regex};
use axml_schema::{
    overlay, Compiled, CompiledContent, Content, PatternOracle, Schema, SchemaError,
};
use std::collections::BTreeSet;

/// Why a label of `s0` fails to rewrite into `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Incompatibility {
    /// `s` does not declare the label at all.
    MissingElement(String),
    /// Content kinds disagree in an unfixable way (e.g. `s0` allows
    /// arbitrary subtrees where `s` wants a regular model).
    ContentMismatch {
        /// The label.
        label: String,
        /// Explanation.
        detail: String,
    },
    /// Some instance's children word cannot be safely rewritten.
    NotSafe {
        /// The label.
        label: String,
    },
}

impl std::fmt::Display for Incompatibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Incompatibility::MissingElement(l) => {
                write!(f, "element '{l}' is not declared by the exchange schema")
            }
            Incompatibility::ContentMismatch { label, detail } => {
                write!(f, "content of '{label}' cannot match: {detail}")
            }
            Incompatibility::NotSafe { label } => {
                write!(f, "some instances of '{label}' cannot be safely rewritten")
            }
        }
    }
}

/// Result of a schema compatibility check.
#[derive(Debug, Clone, Default)]
pub struct CompatReport {
    /// Labels that were checked (reachable from the root in `s0`).
    pub checked: Vec<String>,
    /// Failures; empty iff the schemas are compatible.
    pub failures: Vec<Incompatibility>,
}

impl CompatReport {
    /// True iff `s0` safely rewrites into `s` (Def. 6).
    pub fn compatible(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Checks whether every instance of `s0` rooted at `root` safely rewrites
/// into `s`, with document rewritings of depth `k`.
///
/// The check is *conservative* for wildcard content: a label of `s0` that
/// is only ever reachable under `ANY`-content elements of `s` is still
/// required to conform.
pub fn schema_safe_rewrites(
    s0: &Schema,
    root: &str,
    s: &Schema,
    k: u32,
    oracle: &dyn PatternOracle,
) -> Result<CompatReport, SchemaError> {
    if !s0.elements.contains_key(root) {
        return Err(SchemaError::Undefined {
            name: root.to_owned(),
            context: "schema compatibility root".to_owned(),
        });
    }
    // Labels of s0 reachable from the root through content models.
    let reachable = reachable_labels(s0, root);

    // Auxiliary schema: the exchange schema, s0's extra declarations, and
    // one virtual must-invoke function per reachable label.
    let mut aux = overlay(s, s0)?;
    for label in &reachable {
        if let Some(def) = s0.elements.get(label) {
            if let Content::Model(re) = &def.content {
                let virt = format!("#virt:{label}");
                aux.alphabet.intern(&virt);
                let output = re
                    .map_symbols(&mut |sym| Regex::sym(aux.alphabet.intern(s0.alphabet.name(sym))));
                aux.functions.insert(
                    virt.clone(),
                    axml_schema::FunctionDef {
                        name: virt,
                        input: Regex::Epsilon,
                        output,
                        invocable: true,
                    },
                );
            }
        }
    }
    let compiled = Compiled::new(aux, oracle)?;

    let mut report = CompatReport::default();
    let limits = AwkLimits::default();
    for label in &reachable {
        report.checked.push(label.clone());
        let src = &s0.elements[label].content;
        // The overlay keeps s0's extra declarations around for signature
        // lookups, so missingness must be checked against `s` itself.
        if !s.elements.contains_key(label) {
            report
                .failures
                .push(Incompatibility::MissingElement(label.clone()));
            continue;
        }
        let dst = compiled
            .content_of(label)
            .expect("declared labels have compiled content");
        match (src, dst) {
            (_, CompiledContent::Any) => {}
            (Content::Data, CompiledContent::Data) => {}
            (Content::Data, CompiledContent::Model { dfa, .. }) => {
                // Data content is any word of text leaves: #data* must be
                // included in the target language.
                if !includes_data_star(dfa, &compiled) {
                    report.failures.push(Incompatibility::ContentMismatch {
                        label: label.clone(),
                        detail: "atomic data where the exchange schema requires elements"
                            .to_owned(),
                    });
                }
            }
            (Content::Any, _) => {
                report.failures.push(Incompatibility::ContentMismatch {
                    label: label.clone(),
                    detail: "unconstrained content cannot be guaranteed to conform".to_owned(),
                });
            }
            (Content::Model(_), CompiledContent::Data) => {
                // Conforms only if the source language is {ε}-of-data — the
                // virtual-function game handles the general case below with
                // target language #data*.
                let target = Regex::star(Regex::sym(compiled.data_sym()));
                if !virtual_game_safe(&compiled, label, &target, k, &limits) {
                    report.failures.push(Incompatibility::ContentMismatch {
                        label: label.clone(),
                        detail: "element content where the exchange schema requires atomic data"
                            .to_owned(),
                    });
                }
            }
            (Content::Model(_), CompiledContent::Model { regex, .. }) => {
                let target = regex.clone();
                if !virtual_game_safe(&compiled, label, &target, k, &limits) {
                    report.failures.push(Incompatibility::NotSafe {
                        label: label.clone(),
                    });
                }
            }
        }
    }
    Ok(report)
}

/// Plays the safe game for the single-letter word `#virt:label` against
/// `target` at depth `k + 1`.
fn virtual_game_safe(
    compiled: &Compiled,
    label: &str,
    target: &Regex,
    k: u32,
    limits: &AwkLimits,
) -> bool {
    let Some(virt) = compiled.alphabet().lookup(&format!("#virt:{label}")) else {
        return false;
    };
    let Ok(awk) = Awk::build(&[virt], compiled, k + 1, limits) else {
        return false;
    };
    let comp = complement_of(target, compiled.alphabet().len());
    SafeGame::solve(awk, comp, BuildMode::Lazy).is_safe()
}

/// Checks `#data* ⊆ lang(dfa)`.
fn includes_data_star(dfa: &Dfa, compiled: &Compiled) -> bool {
    let n = compiled.alphabet().len();
    let data_star = Regex::star(Regex::sym(compiled.data_sym()));
    let data_dfa = Dfa::determinize(&Nfa::thompson(&data_star, n)).completed(n);
    let comp = dfa.completed(n).complemented();
    data_dfa.product(&comp, |a, b| a && b).is_empty_language()
}

/// Labels of `schema` reachable from `root` through element content models.
fn reachable_labels(schema: &Schema, root: &str) -> Vec<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut stack = vec![root.to_owned()];
    while let Some(l) = stack.pop() {
        if !seen.insert(l.clone()) {
            continue;
        }
        if let Some(def) = schema.elements.get(&l) {
            if let Content::Model(re) = &def.content {
                for sym in re.symbols() {
                    let name = schema.alphabet.name(sym);
                    if schema.elements.contains_key(name) && !seen.contains(name) {
                        stack.push(name.to_owned());
                    }
                }
            }
        }
    }
    seen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_schema::NoOracle;

    /// The paper's schema (*) (Sec. 2) with root newspaper.
    fn star() -> Schema {
        Schema::builder()
            .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .root("newspaper")
            .build()
            .unwrap()
    }

    fn star_star() -> Schema {
        Schema::builder()
            .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap()
    }

    fn star3() -> Schema {
        Schema::builder()
            .element("newspaper", "title.date.temp.exhibit*")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap()
    }

    #[test]
    fn paper_section2_star_rewrites_into_star_star() {
        // Sec. 2: "This schema safely rewrites into the schema of (**) but
        //  does not safely rewrite into the one of (***)."
        let report =
            schema_safe_rewrites(&star(), "newspaper", &star_star(), 1, &NoOracle).unwrap();
        assert!(report.compatible(), "failures: {:?}", report.failures);
        assert!(report.checked.contains(&"newspaper".to_owned()));
        assert!(report.checked.contains(&"exhibit".to_owned()));
    }

    #[test]
    fn paper_section2_star_does_not_rewrite_into_star3() {
        let report = schema_safe_rewrites(&star(), "newspaper", &star3(), 1, &NoOracle).unwrap();
        assert!(!report.compatible());
        assert!(report
            .failures
            .iter()
            .any(|f| matches!(f, Incompatibility::NotSafe { label } if label == "newspaper")));
    }

    #[test]
    fn missing_element_detected() {
        let s0 = Schema::builder()
            .element("r", "extra")
            .data_element("extra")
            .root("r")
            .build()
            .unwrap();
        let s = Schema::builder().element("r", "").build().unwrap();
        let report = schema_safe_rewrites(&s0, "r", &s, 1, &NoOracle).unwrap();
        assert!(!report.compatible());
        assert!(report
            .failures
            .iter()
            .any(|f| matches!(f, Incompatibility::MissingElement(l) if l == "extra")));
        // And r's own content (requiring 'extra') fails too.
        assert!(report
            .failures
            .iter()
            .any(|f| matches!(f, Incompatibility::NotSafe { label } if label == "r")));
    }

    #[test]
    fn identical_schemas_are_compatible() {
        let report = schema_safe_rewrites(&star(), "newspaper", &star(), 1, &NoOracle).unwrap();
        assert!(report.compatible(), "failures: {:?}", report.failures);
    }

    #[test]
    fn data_vs_model_mismatches() {
        let s0 = Schema::builder()
            .element("r", "a")
            .data_element("a")
            .root("r")
            .build()
            .unwrap();
        // s declares a with element content: data 'a' cannot conform.
        let s = Schema::builder()
            .element("r", "a")
            .element("a", "b")
            .data_element("b")
            .build()
            .unwrap();
        let report = schema_safe_rewrites(&s0, "r", &s, 1, &NoOracle).unwrap();
        assert!(!report.compatible());
        assert!(report
            .failures
            .iter()
            .any(|f| matches!(f, Incompatibility::ContentMismatch { label, .. } if label == "a")));
    }

    #[test]
    fn unreachable_incompatibilities_ignored() {
        // s0 has a problematic label 'junk' that the root never reaches.
        let s0 = Schema::builder()
            .element("r", "a")
            .data_element("a")
            .element("junk", "a.a.a")
            .root("r")
            .build()
            .unwrap();
        let s = Schema::builder()
            .element("r", "a")
            .data_element("a")
            .build()
            .unwrap();
        let report = schema_safe_rewrites(&s0, "r", &s, 1, &NoOracle).unwrap();
        assert!(report.compatible(), "failures: {:?}", report.failures);
        assert!(!report.checked.contains(&"junk".to_owned()));
    }

    #[test]
    fn depth_is_respected() {
        // s0's r may contain Get_Exhibits; s requires exhibit*. Flattening
        // the returned handles needs document depth 2.
        let mk = |root_model: &str| {
            Schema::builder()
                .element("r", root_model)
                .element("exhibit", "")
                .function("Get_Exhibits", "", "Get_Exhibit*")
                .function("Get_Exhibit", "", "exhibit")
                .root("r")
                .build()
                .unwrap()
        };
        let s0 = mk("Get_Exhibits|exhibit*");
        let s = mk("exhibit*");
        let r1 = schema_safe_rewrites(&s0, "r", &s, 1, &NoOracle).unwrap();
        assert!(!r1.compatible());
        let r2 = schema_safe_rewrites(&s0, "r", &s, 2, &NoOracle).unwrap();
        assert!(r2.compatible(), "failures: {:?}", r2.failures);
    }

    #[test]
    fn bad_root_is_an_error() {
        assert!(schema_safe_rewrites(&star(), "ghost", &star(), 1, &NoOracle).is_err());
    }
}
