//! Possible rewriting (Sec. 5, Fig. 9).
//!
//! Where safe rewriting demands success for *every* service answer,
//! possible rewriting only asks whether *some* answers would make the word
//! conform: `lang(A_w^k) ∩ lang(R) ≠ ∅`. The product of `A_w^k` with an
//! automaton for `R` (not its complement) is built, and a node is *viable*
//! iff an accepting node is reachable from it (Fig. 9, step 5: mark all
//! nodes having some outgoing path leading to a final state).
//!
//! The actual rewriting is then opportunistic: follow viable fork options,
//! invoke when needed, and backtrack when a call returns a value that
//! leaves the viable region (Fig. 9, step 9). Invocations made on abandoned
//! branches are *wasted calls* — the price of unsafe rewriting that the
//! paper's Sec. 2 discussion warns about.

use crate::awk::{Awk, EdgeId, StateKind};
use axml_automata::{Dfa, Nfa, Regex};
use std::collections::HashMap;

/// Product node identifier.
pub type NodeId = u32;

/// The possible-rewriting product `A_w^k × A`.
#[derive(Debug)]
pub struct PossibleGame {
    /// The expansion automaton.
    pub awk: Awk,
    /// DFA for the target language (partial: missing transitions are dead).
    pub target: Dfa,
    pairs: Vec<(u32, u32)>,
    ids: HashMap<(u32, u32), NodeId>,
    out: Vec<Vec<(EdgeId, NodeId)>>,
    /// `viable[n]`: an accepting node is reachable from `n`.
    viable: Vec<bool>,
    /// Initial node.
    pub start: NodeId,
    /// Nodes/edges created.
    pub stats: crate::safe::GameStats,
}

impl PossibleGame {
    /// Builds the product and computes viability.
    ///
    /// `target` should be the determinized target automaton (for the
    /// deterministic content models XML Schema mandates, this is the
    /// Glushkov automaton itself and stays polynomial — Sec. 5).
    pub fn solve(awk: Awk, target: Dfa) -> PossibleGame {
        Self::solve_in(awk, target, &axml_obs::global())
    }

    /// Like [`PossibleGame::solve`], but publishes node/edge counts and
    /// solve latency to `metrics` (the `solver.possible.*` catalogue
    /// entries) instead of the process-wide registry.
    pub fn solve_in(awk: Awk, target: Dfa, metrics: &axml_obs::Registry) -> PossibleGame {
        assert_eq!(target.num_symbols, awk.num_symbols, "alphabet mismatch");
        let started = std::time::Instant::now();
        let mut game = PossibleGame {
            awk,
            target,
            pairs: Vec::new(),
            ids: HashMap::new(),
            out: Vec::new(),
            viable: Vec::new(),
            start: 0,
            stats: crate::safe::GameStats::default(),
        };
        game.build();
        game.mark_viable();
        metrics.counter("solver.possible.solves_total").inc();
        metrics
            .counter("solver.possible.nodes_total")
            .add(game.stats.nodes as u64);
        metrics
            .counter("solver.possible.edges_total")
            .add(game.stats.edges as u64);
        metrics
            .histogram("solver.possible.solve_ns", axml_obs::LATENCY_NS_BOUNDS)
            .observe(started.elapsed().as_nanos() as u64);
        game
    }

    /// Reassembles a solved game from its serialized parts (the
    /// snapshot decode path in `axml-store`). The pair-to-node index is
    /// derived from `pairs`. Validation guards memory safety — indices
    /// in range, pairs unique — not logical correctness of the
    /// viability marking; that is the job of the snapshot checksum and
    /// the structural cache key.
    pub fn from_solved_parts(
        awk: Awk,
        target: Dfa,
        pairs: Vec<(u32, u32)>,
        out: Vec<Vec<(EdgeId, NodeId)>>,
        viable: Vec<bool>,
        start: NodeId,
        stats: crate::safe::GameStats,
    ) -> Result<PossibleGame, String> {
        if target.num_symbols != awk.num_symbols {
            return Err("target/expansion alphabet mismatch".to_owned());
        }
        let nodes = pairs.len();
        if out.len() != nodes || viable.len() != nodes {
            return Err("node table lengths disagree".to_owned());
        }
        if nodes == 0 || (start as usize) >= nodes {
            return Err(format!("start node {start} out of range ({nodes} nodes)"));
        }
        let mut ids = HashMap::with_capacity(nodes);
        for (i, &(s, q)) in pairs.iter().enumerate() {
            if (s as usize) >= awk.num_states() || (q as usize) >= target.num_states() {
                return Err(format!("node {i} pair ({s},{q}) out of range"));
            }
            if ids.insert((s, q), i as NodeId).is_some() {
                return Err(format!("pair ({s},{q}) interned twice"));
            }
        }
        for (n, succs) in out.iter().enumerate() {
            for &(eid, m) in succs {
                if (eid as usize) >= awk.num_edges() {
                    return Err(format!("node {n}: product edge {eid} out of range"));
                }
                if (m as usize) >= nodes {
                    return Err(format!("node {n}: successor {m} out of range"));
                }
            }
        }
        Ok(PossibleGame {
            awk,
            target,
            pairs,
            ids,
            out,
            viable,
            start,
            stats,
        })
    }

    fn intern(&mut self, pair: (u32, u32)) -> (NodeId, bool) {
        if let Some(&id) = self.ids.get(&pair) {
            return (id, false);
        }
        let id = self.pairs.len() as NodeId;
        self.ids.insert(pair, id);
        self.pairs.push(pair);
        self.out.push(Vec::new());
        self.viable.push(false);
        self.stats.nodes += 1;
        (id, true)
    }

    fn build(&mut self) {
        let (start, _) = self.intern((self.awk.start, self.target.start));
        self.start = start;
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            let (s, q) = self.pairs[node as usize];
            for i in 0..self.awk.out_edges(s).len() {
                let eid = self.awk.out_edges(s)[i];
                let edge = self.awk.edge(eid);
                let q2 = match edge.label {
                    None => q,
                    Some(sym) => {
                        let t = self.target.next(q, sym);
                        if t == axml_automata::NO_STATE {
                            continue; // dead in the target: prune
                        }
                        t
                    }
                };
                let (succ, fresh) = self.intern((edge.to, q2));
                self.out[node as usize].push((eid, succ));
                self.stats.edges += 1;
                if fresh {
                    stack.push(succ);
                }
            }
        }
    }

    fn is_accepting(&self, node: NodeId) -> bool {
        let (s, q) = self.pairs[node as usize];
        s == self.awk.finish && self.target.finals[q as usize]
    }

    fn mark_viable(&mut self) {
        // Backward reachability over reverse edges.
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); self.pairs.len()];
        for (n, outs) in self.out.iter().enumerate() {
            for &(_, t) in outs {
                rev[t as usize].push(n as NodeId);
            }
        }
        let mut stack: Vec<NodeId> = (0..self.pairs.len() as NodeId)
            .filter(|&n| self.is_accepting(n))
            .collect();
        for &n in &stack {
            self.viable[n as usize] = true;
        }
        while let Some(n) = stack.pop() {
            for &p in &rev[n as usize] {
                if !self.viable[p as usize] {
                    self.viable[p as usize] = true;
                    stack.push(p);
                }
            }
        }
    }

    /// True iff a k-depth left-to-right rewriting *may* exist (Fig. 9,
    /// step 6: the initial state is marked).
    pub fn is_possible(&self) -> bool {
        self.viable[self.start as usize]
    }

    /// Whether `node` can still reach acceptance.
    pub fn is_viable(&self, node: NodeId) -> bool {
        self.viable[node as usize]
    }

    /// The `(awk state, target state)` pair of `node`.
    pub fn pair(&self, node: NodeId) -> (u32, u32) {
        self.pairs[node as usize]
    }

    /// Product successors of `node`.
    pub fn successors(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
        &self.out[node as usize]
    }

    /// Number of product nodes.
    pub fn num_nodes(&self) -> usize {
        self.pairs.len()
    }

    /// The product node for an `(awk state, target state)` pair, if that
    /// pair survived construction (pairs dead in the target are pruned).
    /// The inverse of [`PossibleGame::pair`], for callers walking the game
    /// graph externally (e.g. a strategic adversary scoring its answers).
    pub fn node(&self, awk_state: u32, target_state: u32) -> Option<NodeId> {
        self.ids.get(&(awk_state, target_state)).copied()
    }

    /// The adversary's preferred move from `node`: a successor that is
    /// *not viable* (traps the rewriter away from every accepting node),
    /// if any. Ties break on the lowest edge id so strategic opponents
    /// replay deterministically.
    pub fn trapping_successor(&self, node: NodeId) -> Option<(EdgeId, NodeId)> {
        self.out[node as usize]
            .iter()
            .copied()
            .find(|&(_, t)| !self.viable[t as usize])
            .or_else(|| self.out[node as usize].first().copied())
    }

    /// Whether `node` is an accepting terminal.
    pub fn accepting(&self, node: NodeId) -> bool {
        self.is_accepting(node)
    }

    /// A representative plan for the original occurrences: at each depth-1
    /// fork, prefer keeping the call if that stays viable, else invoke.
    /// `None` if no rewriting is possible.
    pub fn plan(&self) -> Option<Vec<crate::safe::Decision>> {
        if !self.is_possible() {
            return None;
        }
        let mut decisions = Vec::new();
        let mut cur = self.start;
        loop {
            let (s, _) = self.pair(cur);
            if s == self.awk.finish {
                break;
            }
            match self.awk.kind(s) {
                StateKind::Fork {
                    func, skip, invoke, ..
                } => {
                    let skip_t = self
                        .target_of(cur, skip)
                        .filter(|&t| self.viable[t as usize]);
                    if let Some(t) = skip_t {
                        decisions.push(crate::safe::Decision {
                            func,
                            invoke: false,
                        });
                        cur = t;
                    } else {
                        decisions.push(crate::safe::Decision { func, invoke: true });
                        let entry = self
                            .target_of(cur, invoke)
                            .filter(|&t| self.viable[t as usize])?;
                        let spine_next = self.awk.edge(skip).to;
                        cur = self.bfs_viable_to_awk_state(entry, spine_next)?;
                    }
                }
                StateKind::Regular => {
                    let next = self.out[cur as usize]
                        .iter()
                        .find(|&&(_, t)| self.viable[t as usize])
                        .map(|&(_, t)| t);
                    match next {
                        Some(t) => cur = t,
                        None => break,
                    }
                }
            }
        }
        Some(decisions)
    }

    fn target_of(&self, node: NodeId, edge: EdgeId) -> Option<NodeId> {
        self.out[node as usize]
            .iter()
            .find(|(e, _)| *e == edge)
            .map(|&(_, t)| t)
    }

    fn bfs_viable_to_awk_state(&self, from: NodeId, goal: u32) -> Option<NodeId> {
        let mut seen = vec![false; self.pairs.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[from as usize] = true;
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            if self.pairs[n as usize].0 == goal && self.viable[n as usize] {
                return Some(n);
            }
            for &(_, t) in &self.out[n as usize] {
                if !seen[t as usize] && self.viable[t as usize] {
                    seen[t as usize] = true;
                    queue.push_back(t);
                }
            }
        }
        None
    }
}

/// Builds the (partial, deterministic) target automaton for a regex —
/// Fig. 9 step 3's automaton `A`.
pub fn target_of(target: &Regex, num_symbols: usize) -> Dfa {
    Dfa::determinize(&Nfa::thompson(target, num_symbols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awk::AwkLimits;
    use crate::safe::{complement_of, BuildMode, SafeGame};
    use axml_automata::Symbol;
    use axml_schema::{Compiled, NoOracle, Schema};

    fn paper_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    fn word(c: &Compiled, names: &[&str]) -> Vec<Symbol> {
        names
            .iter()
            .map(|n| c.alphabet().lookup(n).unwrap())
            .collect()
    }

    fn possible(c: &Compiled, w: &[&str], target: &str, k: u32) -> PossibleGame {
        let w = word(c, w);
        let awk = Awk::build(&w, c, k, &AwkLimits::default()).unwrap();
        let mut ab = c.alphabet().clone();
        let re = Regex::parse(target, &mut ab).unwrap();
        assert_eq!(ab.len(), c.alphabet().len());
        PossibleGame::solve(awk, target_of(&re, c.alphabet().len()))
    }

    #[test]
    fn figure11_possible_into_star_star_star() {
        // Figs. 10–11: the newspaper word possibly rewrites into
        // title.date.temp.exhibit* — both functions must be invoked and
        // TimeOut must happen to return only exhibits.
        let c = paper_compiled();
        let game = possible(
            &c,
            &["title", "date", "Get_Temp", "TimeOut"],
            "title.date.temp.exhibit*",
            1,
        );
        assert!(game.is_possible());
        let plan = game.plan().unwrap();
        assert!(plan.iter().all(|d| d.invoke), "both calls must be invoked");
        assert_eq!(plan.len(), 2);
        // And safe rewriting indeed fails on the same instance (Fig. 8).
        let awk = Awk::build(
            &word(&c, &["title", "date", "Get_Temp", "TimeOut"]),
            &c,
            1,
            &AwkLimits::default(),
        )
        .unwrap();
        let mut ab = c.alphabet().clone();
        let re = Regex::parse("title.date.temp.exhibit*", &mut ab).unwrap();
        let comp = complement_of(&re, c.alphabet().len());
        assert!(!SafeGame::solve(awk, comp, BuildMode::Eager).is_safe());
    }

    #[test]
    fn impossible_when_languages_disjoint() {
        let c = paper_compiled();
        // No rewriting can produce two temps.
        let game = possible(
            &c,
            &["title", "date", "Get_Temp", "TimeOut"],
            "title.date.temp.temp",
            1,
        );
        assert!(!game.is_possible());
        assert!(game.plan().is_none());
    }

    #[test]
    fn safe_implies_possible() {
        let c = paper_compiled();
        for target in [
            "title.date.temp.(TimeOut|exhibit*)",
            "title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
        ] {
            let p = possible(&c, &["title", "date", "Get_Temp", "TimeOut"], target, 1);
            assert!(p.is_possible(), "{target}");
        }
    }

    #[test]
    fn plan_prefers_keeping_calls() {
        let c = paper_compiled();
        let game = possible(
            &c,
            &["title", "date", "Get_Temp", "TimeOut"],
            "title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
            1,
        );
        let plan = game.plan().unwrap();
        assert!(plan.iter().all(|d| !d.invoke), "word already conforms");
    }

    #[test]
    fn possible_needs_enough_depth() {
        let c = Compiled::new(
            Schema::builder()
                .element("r", "Get_Exhibits|exhibit*")
                .element("exhibit", "")
                .function("Get_Exhibits", "", "Get_Exhibit*")
                .function("Get_Exhibit", "", "exhibit")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        // Target exhibit.exhibit requires invoking Get_Exhibits and then the
        // returned Get_Exhibit handles: k = 2.
        let g1 = possible(&c, &["Get_Exhibits"], "exhibit.exhibit", 1);
        let g2 = possible(&c, &["Get_Exhibits"], "exhibit.exhibit", 2);
        assert!(!g1.is_possible());
        assert!(g2.is_possible());
    }
}
