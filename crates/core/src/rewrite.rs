//! Document rewriting: the three-stage algorithm of Sec. 4.
//!
//! Given a document `t`, a compiled schema whose content models describe
//! the agreed exchange format, and an [`Invoker`] that executes service
//! calls, the [`Rewriter`]:
//!
//! 1. checks *function parameters* bottom-up (deepest calls first): the
//!    parameters of every call must safely rewrite into the call's input
//!    type, or the whole rewriting fails;
//! 2. traverses the tree *top-down*, handling one node and its direct
//!    children at a time;
//! 3. rewrites each node's children word using the word-level game
//!    ([`SafeGame`] or [`PossibleGame`]), invoking services as the strategy
//!    dictates, materializing parameters just before each call, validating
//!    every returned forest against the service's declared output type, and
//!    recursing into the returned calls' decisions up to depth `k`.
//!
//! Returned subtrees are validated but not rewritten further (footnote 5 of
//! the paper: sender and receiver agree on function signatures, so output
//! instances are already instances of the schema).

use crate::awk::{Awk, AwkLimits, EdgeId, StateKind};
use crate::invoke::{InvokeError, Invoker};
use crate::possible::PossibleGame;
use crate::safe::{complement_of, BuildMode, SafeGame};
use crate::solve_cache::{SolveCache, SolvedPossible, SolvedSafe, TargetSlot};
use axml_automata::{Dfa, Nfa, Regex, Symbol};
use axml_schema::{validate_output_instance, words_of, Compiled, CompiledContent, FuncNode, ITree};
use std::fmt;
use std::sync::Arc;

/// Errors raised by document rewriting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The document uses an element label the schema does not declare.
    UnknownLabel(String),
    /// No safe rewriting exists for the children of some node.
    NotSafe {
        /// The element label (or `τ_in(f)` context) that failed.
        context: String,
        /// The children word, rendered.
        word: String,
    },
    /// No rewriting can possibly succeed for the children of some node.
    NotPossible {
        /// The element label (or `τ_in(f)` context) that failed.
        context: String,
        /// The children word, rendered.
        word: String,
    },
    /// Every viable branch was tried and failed (possible-mode execution).
    Exhausted {
        /// Where the search ran dry.
        context: String,
    },
    /// The configured invocation budget was exceeded.
    CallBudget {
        /// The budget that was exhausted.
        max_calls: usize,
    },
    /// `A_w^k` grew beyond the configured limits.
    TooLarge(String),
    /// A service call failed.
    Invoke(InvokeError),
    /// A service returned data that does not match its declared output type.
    IllTyped {
        /// The function whose answer was ill-typed.
        function: String,
        /// Validation message.
        message: String,
    },
    /// The document is structurally invalid (e.g. text under a non-data
    /// element, data element with element children).
    Invalid(String),
    /// Content models must be deterministic (1-unambiguous) for execution.
    Ambiguous {
        /// Where the ambiguity was hit.
        context: String,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::UnknownLabel(l) => write!(f, "unknown element label '{l}'"),
            RewriteError::NotSafe { context, word } => {
                write!(f, "no safe rewriting for '{context}' (children: {word})")
            }
            RewriteError::NotPossible { context, word } => {
                write!(
                    f,
                    "no possible rewriting for '{context}' (children: {word})"
                )
            }
            RewriteError::Exhausted { context } => {
                write!(f, "all rewriting branches failed at '{context}'")
            }
            RewriteError::CallBudget { max_calls } => {
                write!(f, "invocation budget of {max_calls} calls exhausted")
            }
            RewriteError::TooLarge(m) => write!(f, "{m}"),
            RewriteError::Invoke(e) => write!(f, "{e}"),
            RewriteError::IllTyped { function, message } => {
                write!(f, "service '{function}' returned ill-typed data: {message}")
            }
            RewriteError::Invalid(m) => write!(f, "invalid document: {m}"),
            RewriteError::Ambiguous { context } => {
                write!(f, "ambiguous content model during execution at '{context}'")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<InvokeError> for RewriteError {
    fn from(e: InvokeError) -> Self {
        RewriteError::Invoke(e)
    }
}

/// Outcome statistics of an executed rewriting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteReport {
    /// Functions invoked, in call order.
    pub invoked: Vec<String>,
    /// Calls whose results were discarded by backtracking (possible mode).
    pub wasted_calls: usize,
    /// Word-level games solved.
    pub games: usize,
}

/// Static analysis result (no calls executed).
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Word-level games solved.
    pub games: usize,
    /// Total product nodes across all games.
    pub product_nodes: usize,
}

/// The document rewriter. Compiled DFAs and solved games flow through a
/// [`SolveCache`] — private by default, shared via [`Rewriter::with_cache`]
/// — so reuse one instance (or one cache) when processing many documents
/// against the same schema.
pub struct Rewriter<'c> {
    compiled: &'c Compiled,
    /// Rewriting depth bound (Def. 7). Default 2.
    pub k: u32,
    /// Safe-game construction mode (Sec. 7 lazy variant by default).
    pub mode: BuildMode,
    /// `A_w^k` construction limits.
    pub limits: AwkLimits,
    /// Optional cap on total service invocations per rewriting run
    /// (possible-mode backtracking can otherwise spend unbounded calls;
    /// the Sec. 2 cost discussion motivates bounding it).
    pub max_calls: Option<usize>,
    cache: SolveCache,
    /// When set, original element children met during the word walk are
    /// not recursed into; they are queued here and replaced by markers
    /// for the parallel pass (see [`Rewriter::rewrite_safe_parallel`]).
    defer: Option<Vec<Deferred>>,
}

/// A subtree whose rewriting was postponed by the parallel path, plus
/// where in the invocation stream its calls belong.
struct Deferred {
    tree: ITree,
    /// `report.invoked.len()` at the moment the subtree was skipped —
    /// splicing the subtree's own calls back at this offset reproduces
    /// the sequential call order exactly.
    invoked_at: usize,
}

/// Marker label prefix for deferred subtrees. A NUL byte cannot appear
/// in a parsed XML name, so markers can never collide with document
/// content.
const DEFER_MARK: &str = "\u{0}axml-defer-";

fn defer_marker(idx: usize) -> ITree {
    ITree::elem(&format!("{DEFER_MARK}{idx}"), Vec::new())
}

fn defer_marker_index(tree: &ITree) -> Option<usize> {
    match tree {
        ITree::Elem { label, children } if children.is_empty() => {
            label.strip_prefix(DEFER_MARK)?.parse().ok()
        }
        _ => None,
    }
}

type SubtreeResult = Result<(ITree, RewriteReport), RewriteError>;

/// Replaces every defer marker by the corresponding worker result; each
/// substitute is consumed exactly once.
fn substitute_markers(tree: &ITree, subs: &mut [Option<ITree>]) -> Result<ITree, RewriteError> {
    if let Some(idx) = defer_marker_index(tree) {
        return subs
            .get_mut(idx)
            .and_then(|s| s.take())
            .ok_or_else(|| RewriteError::Invalid("deferred subtree marker out of sync".into()));
    }
    match tree {
        ITree::Elem { label, children } => {
            let kids = children
                .iter()
                .map(|c| substitute_markers(c, subs))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(ITree::elem(label, kids))
        }
        other => Ok(other.clone()),
    }
}

/// Which rewriting notion drives execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Safe rewriting (Sec. 4): succeeds for *every* type-correct service
    /// answer, decided before any call is made; never backtracks.
    Safe,
    /// Possible rewriting (Sec. 5): invokes speculatively and backtracks
    /// when the services' actual answers rule a branch out.
    Possible,
}

/// The per-branch failure used for backtracking.
enum Fail {
    /// This branch is dead; try another choice.
    Dead,
    /// Unrecoverable error; abort the whole rewriting.
    Fatal(Box<RewriteError>),
}

impl From<RewriteError> for Fail {
    fn from(e: RewriteError) -> Self {
        Fail::Fatal(Box::new(e))
    }
}

/// A uniform view over [`SafeGame`] and [`crate::possible::PossibleGame`]
/// for the executor. Games come out of the [`SolveCache`] behind `Arc`s:
/// solved games are immutable, so concurrent executors walk one shared
/// instance.
enum Game {
    Safe(Arc<SolvedSafe>),
    Possible(Arc<SolvedPossible>),
}

impl Game {
    fn awk(&self) -> &Awk {
        match self {
            Game::Safe(g) => &g.awk,
            Game::Possible(g) => &g.awk,
        }
    }
    fn start(&self) -> u32 {
        match self {
            Game::Safe(g) => g.start,
            Game::Possible(g) => g.start,
        }
    }
    /// Nodes the execution may stand on: unmarked (safe) / viable (possible).
    fn allowed(&self, n: u32) -> bool {
        match self {
            Game::Safe(g) => !g.is_marked(n),
            Game::Possible(g) => g.is_viable(n),
        }
    }
    fn successors(&self, n: u32) -> &[(EdgeId, u32)] {
        match self {
            Game::Safe(g) => g.successors(n),
            Game::Possible(g) => g.successors(n),
        }
    }
    fn pair(&self, n: u32) -> (u32, u32) {
        match self {
            Game::Safe(g) => g.pair(n),
            Game::Possible(g) => g.pair(n),
        }
    }
    /// May execution finish on `n` once every item is consumed?
    fn terminal_ok(&self, n: u32) -> bool {
        match self {
            // Safe: reaching the finish on an unmarked node means the word
            // is in the target (unmarked excludes bad-accepting).
            Game::Safe(g) => g.pair(n).0 == g.awk.finish && !g.is_marked(n),
            Game::Possible(g) => g.accepting(n),
        }
    }
    /// Whether execution is allowed to retry choices (backtracking).
    fn backtracks(&self) -> bool {
        matches!(self, Game::Possible(_))
    }
}

/// Work items of the word executor. Invoked results are spliced in front,
/// followed by an `Exit` marker that pops execution out of the output copy.
#[derive(Debug, Clone)]
enum Item {
    /// A tree to consume; the flag says whether it comes from the original
    /// document (then it is recursively rewritten / its params materialized)
    /// or from a service answer (then it is kept as validated).
    Tree(ITree, bool),
    /// Leave the current output copy at the given awk state.
    Exit(u32),
}

impl<'c> Rewriter<'c> {
    /// Creates a rewriter with depth bound `k = 2`, lazy game building,
    /// and a private (unpublished) solve cache.
    pub fn new(compiled: &'c Compiled) -> Self {
        Rewriter {
            compiled,
            k: 2,
            mode: BuildMode::Lazy,
            limits: AwkLimits::default(),
            max_calls: None,
            cache: SolveCache::unpublished(crate::solve_cache::DEFAULT_CAPACITY),
            defer: None,
        }
    }

    /// Caps the number of service invocations per rewriting run.
    pub fn with_max_calls(mut self, max: usize) -> Self {
        self.max_calls = Some(max);
        self
    }

    /// Shares a solve cache: compiled DFAs and solved games are looked
    /// up in (and inserted into) `cache` instead of this rewriter's
    /// private one. Hand every rewriter of a long-running peer the same
    /// cache and request N+1 skips the Thompson/determinize/product/
    /// fixpoint pipeline entirely on repeated words.
    pub fn with_cache(mut self, cache: &SolveCache) -> Self {
        self.cache = cache.clone();
        self
    }

    /// The solve cache this rewriter reads and writes.
    pub fn cache(&self) -> &SolveCache {
        &self.cache
    }

    /// Sets the depth bound (Def. 7).
    pub fn with_k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Sets the safe-game build mode.
    pub fn with_mode(mut self, mode: BuildMode) -> Self {
        self.mode = mode;
        self
    }

    /// The compiled schema this rewriter targets.
    pub fn compiled(&self) -> &'c Compiled {
        self.compiled
    }

    // ------------------------------------------------------------------
    // Public entry points
    // ------------------------------------------------------------------

    /// Static safety analysis: does `tree` safely rewrite into the schema?
    /// No service is invoked. Returns per-run statistics on success.
    pub fn analyze_safe(&mut self, tree: &ITree) -> Result<Analysis, RewriteError> {
        let mut analysis = Analysis::default();
        self.analyze_params(tree, &mut analysis)?;
        self.analyze_node(tree, &mut analysis)?;
        Ok(analysis)
    }

    /// Static possible-rewriting analysis: might `tree` rewrite into the
    /// schema for *some* service answers? No service is invoked.
    pub fn analyze_possible(&mut self, tree: &ITree) -> Result<Analysis, RewriteError> {
        let mut analysis = Analysis::default();
        self.analyze_params_possible(tree, &mut analysis)?;
        self.analyze_node_possible(tree, &mut analysis)?;
        Ok(analysis)
    }

    /// The smallest depth `k ≤ max_k` at which `tree` safely rewrites into
    /// the schema, or `None` if even `max_k` is not enough.
    ///
    /// Useful for budgeting: the paper's complexity is exponential in `k`,
    /// so callers want the smallest sufficient depth (Def. 7).
    pub fn minimal_safe_k(&mut self, tree: &ITree, max_k: u32) -> Option<u32> {
        let saved = self.k;
        let mut found = None;
        for k in 0..=max_k {
            self.k = k;
            if self.analyze_safe(tree).is_ok() {
                found = Some(k);
                break;
            }
        }
        self.k = saved;
        found
    }

    /// Executes a safe rewriting of `tree` against `invoker`.
    ///
    /// Fails with [`RewriteError::NotSafe`] *before any call is made* if no
    /// safe rewriting exists (the guarantee of Sec. 4).
    pub fn rewrite_safe(
        &mut self,
        tree: &ITree,
        invoker: &mut dyn Invoker,
    ) -> Result<(ITree, RewriteReport), RewriteError> {
        // Stage 1 (analysis only): every call's parameters must be safely
        // rewritable, bottom-up.
        let mut pre = Analysis::default();
        self.analyze_params(tree, &mut pre)?;
        let mut report = RewriteReport::default();
        let out = self.rewrite_node(tree, Strategy::Safe, invoker, &mut report)?;
        Ok((out, report))
    }

    /// Executes a *safe* rewriting with the direct element children of the
    /// root rewritten concurrently on up to `workers` scoped threads.
    ///
    /// Safe mode never backtracks, so each independent sibling subtree can
    /// be rewritten in isolation; the root-level word walk queues them,
    /// leaves markers, and the merge step splices the workers' results —
    /// and their invocation streams, at the positions the sequential walk
    /// would have produced them — back in left-to-right order. The output
    /// tree and report are identical to [`Rewriter::rewrite_safe`]; on
    /// failure the leftmost subtree error is returned (workers to its
    /// right may already have invoked services).
    ///
    /// `make_invoker` is called once on the calling thread per worker, so
    /// invokers need [`Send`] but not [`Sync`].
    pub fn rewrite_safe_parallel<'i>(
        &mut self,
        tree: &ITree,
        make_invoker: &mut dyn FnMut() -> Box<dyn Invoker + Send + 'i>,
        workers: usize,
    ) -> Result<(ITree, RewriteReport), RewriteError> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut pre = Analysis::default();
        self.analyze_params(tree, &mut pre)?;
        // Root walk with deferral active: direct element children are
        // queued and replaced by markers; everything else (root games,
        // root-level calls) happens inline, exactly as sequentially.
        self.defer = Some(Vec::new());
        let mut root_invoker = make_invoker();
        let mut report = RewriteReport::default();
        let walked = self.rewrite_node(tree, Strategy::Safe, &mut *root_invoker, &mut report);
        let deferred = self.defer.take().unwrap_or_default();
        let skeleton = walked?;
        if deferred.is_empty() {
            return Ok((skeleton, report));
        }
        let worker_count = workers.max(1).min(deferred.len());
        let slots: Vec<axml_support::sync::Mutex<Option<SubtreeResult>>> =
            (0..deferred.len()).map(|_| Default::default()).collect();
        let next = AtomicUsize::new(0);
        let mut invokers: Vec<Box<dyn Invoker + Send + 'i>> =
            (0..worker_count).map(|_| make_invoker()).collect();
        let compiled = self.compiled;
        let (k, mode, limits, max_calls) = (self.k, self.mode, self.limits, self.max_calls);
        let cache = &self.cache;
        let (deferred_ref, slots_ref, next_ref) = (&deferred, &slots, &next);
        std::thread::scope(|scope| {
            for invoker in invokers.iter_mut() {
                scope.spawn(move || {
                    let mut rw = Rewriter::new(compiled).with_cache(cache);
                    (rw.k, rw.mode, rw.limits, rw.max_calls) = (k, mode, limits, max_calls);
                    loop {
                        let i = next_ref.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = deferred_ref.get(i) else {
                            break;
                        };
                        let mut rep = RewriteReport::default();
                        let res = rw
                            .rewrite_node(&item.tree, Strategy::Safe, &mut **invoker, &mut rep)
                            .map(|t| (t, rep));
                        *slots_ref[i].lock() = Some(res);
                    }
                });
            }
        });
        // Deterministic merge, left to right; the leftmost error wins.
        let mut results = Vec::with_capacity(deferred.len());
        for slot in slots {
            results.push(slot.into_inner().expect("every slot is claimed")?);
        }
        // Splice invocation streams right-to-left so earlier offsets stay
        // valid; sums are order-independent.
        for (d, (_, rep)) in deferred.iter().zip(&results).rev() {
            report.games += rep.games;
            report.wasted_calls += rep.wasted_calls;
            let tail = report.invoked.split_off(d.invoked_at);
            report.invoked.extend(rep.invoked.iter().cloned());
            report.invoked.extend(tail);
        }
        let mut subs: Vec<Option<ITree>> = results.into_iter().map(|(t, _)| Some(t)).collect();
        let out = substitute_markers(&skeleton, &mut subs)?;
        if subs.iter().any(|s| s.is_some()) {
            return Err(RewriteError::Invalid(
                "deferred subtree was never spliced back".into(),
            ));
        }
        Ok((out, report))
    }

    /// Executes a *possible* rewriting: may invoke calls speculatively and
    /// backtrack; fails with [`RewriteError::Exhausted`] if the services'
    /// actual answers rule every viable branch out.
    pub fn rewrite_possible(
        &mut self,
        tree: &ITree,
        invoker: &mut dyn Invoker,
    ) -> Result<(ITree, RewriteReport), RewriteError> {
        let mut pre = Analysis::default();
        self.analyze_params_possible(tree, &mut pre)?;
        let mut report = RewriteReport::default();
        let out = self.rewrite_node(tree, Strategy::Possible, invoker, &mut report)?;
        Ok((out, report))
    }

    /// Rewrites a forest so it conforms to `τ_in(function)` — used by the
    /// Schema Enforcement module on outbound call parameters (Sec. 7
    /// step (ii)).
    pub fn rewrite_to_input_type(
        &mut self,
        function: &str,
        params: &[ITree],
        invoker: &mut dyn Invoker,
    ) -> Result<(Vec<ITree>, RewriteReport), RewriteError> {
        let sym = self.compiled.classify_func(function);
        let input = self
            .compiled
            .sig(sym)
            .expect("function symbols carry signatures")
            .input
            .clone();
        let mut report = RewriteReport::default();
        let mut pre = Analysis::default();
        for p in params {
            self.analyze_params(p, &mut pre)?;
        }
        let out = self.rewrite_forest(
            params,
            &input,
            TargetSlot::Input(sym),
            &format!("τ_in({function})"),
            Strategy::Safe,
            invoker,
            &mut report,
        )?;
        Ok((out, report))
    }

    /// Rewrites a result forest so it conforms to `τ_out(function)` — used
    /// by the Schema Enforcement module on the data a declared service is
    /// about to return (Sec. 7).
    pub fn rewrite_to_output_type(
        &mut self,
        function: &str,
        result: &[ITree],
        invoker: &mut dyn Invoker,
    ) -> Result<(Vec<ITree>, RewriteReport), RewriteError> {
        let sym = self.compiled.classify_func(function);
        let output = self
            .compiled
            .sig(sym)
            .expect("function symbols carry signatures")
            .output
            .clone();
        let mut report = RewriteReport::default();
        let mut pre = Analysis::default();
        for t in result {
            self.analyze_params(t, &mut pre)?;
        }
        let out = self.rewrite_forest(
            result,
            &output,
            TargetSlot::Output(sym),
            &format!("τ_out({function})"),
            Strategy::Safe,
            invoker,
            &mut report,
        )?;
        Ok((out, report))
    }

    // ------------------------------------------------------------------
    // Stage 1: parameters, bottom-up
    // ------------------------------------------------------------------

    fn analyze_params(
        &mut self,
        tree: &ITree,
        analysis: &mut Analysis,
    ) -> Result<(), RewriteError> {
        for c in tree.children() {
            self.analyze_params(c, analysis)?;
        }
        if let ITree::Func(f) = tree {
            let sym = self.compiled.classify_func(&f.name);
            let input = self
                .compiled
                .sig(sym)
                .expect("function symbols carry signatures")
                .input
                .clone();
            let game = self.safe_game(&f.params, &input, TargetSlot::Input(sym))?;
            analysis.games += 1;
            analysis.product_nodes += game.num_nodes();
            if !game.is_safe() {
                return Err(self.not_safe(&format!("τ_in({})", f.name), &f.params));
            }
        }
        Ok(())
    }

    fn analyze_params_possible(
        &mut self,
        tree: &ITree,
        analysis: &mut Analysis,
    ) -> Result<(), RewriteError> {
        for c in tree.children() {
            self.analyze_params_possible(c, analysis)?;
        }
        if let ITree::Func(f) = tree {
            let sym = self.compiled.classify_func(&f.name);
            let input = self
                .compiled
                .sig(sym)
                .expect("function symbols carry signatures")
                .input
                .clone();
            let game = self.possible_game(&f.params, &input, TargetSlot::Input(sym))?;
            analysis.games += 1;
            analysis.product_nodes += game.num_nodes();
            if !game.is_possible() {
                return Err(self.not_possible(&format!("τ_in({})", f.name), &f.params));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Stage 2: top-down traversal (analysis flavor)
    // ------------------------------------------------------------------

    fn analyze_node(&mut self, tree: &ITree, analysis: &mut Analysis) -> Result<(), RewriteError> {
        match tree {
            ITree::Text(_) => Ok(()),
            ITree::Func(_) => Ok(()), // parameters handled in stage 1
            ITree::Elem { label, children } => {
                let sym = self.compiled.classify_label(label);
                let content = self
                    .compiled
                    .content(sym)
                    .ok_or_else(|| RewriteError::UnknownLabel(label.clone()))
                    .cloned()?;
                match content {
                    CompiledContent::Any => Ok(()),
                    CompiledContent::Data => {
                        if children.iter().all(|c| matches!(c, ITree::Text(_))) {
                            Ok(())
                        } else {
                            Err(RewriteError::Invalid(format!(
                                "'{label}' is atomic but has non-text children"
                            )))
                        }
                    }
                    CompiledContent::Model { regex, .. } => {
                        let game = self.safe_game(children, &regex, TargetSlot::Content(sym))?;
                        analysis.games += 1;
                        analysis.product_nodes += game.num_nodes();
                        if !game.is_safe() {
                            return Err(self.not_safe(label, children));
                        }
                        for c in children {
                            self.analyze_node(c, analysis)?;
                        }
                        Ok(())
                    }
                }
            }
        }
    }

    fn analyze_node_possible(
        &mut self,
        tree: &ITree,
        analysis: &mut Analysis,
    ) -> Result<(), RewriteError> {
        match tree {
            ITree::Text(_) | ITree::Func(_) => Ok(()),
            ITree::Elem { label, children } => {
                let sym = self.compiled.classify_label(label);
                let content = self
                    .compiled
                    .content(sym)
                    .ok_or_else(|| RewriteError::UnknownLabel(label.clone()))
                    .cloned()?;
                match content {
                    CompiledContent::Any => Ok(()),
                    CompiledContent::Data => {
                        if children.iter().all(|c| matches!(c, ITree::Text(_))) {
                            Ok(())
                        } else {
                            Err(RewriteError::Invalid(format!(
                                "'{label}' is atomic but has non-text children"
                            )))
                        }
                    }
                    CompiledContent::Model { regex, .. } => {
                        let game = self.possible_game(children, &regex, TargetSlot::Content(sym))?;
                        analysis.games += 1;
                        analysis.product_nodes += game.num_nodes();
                        if !game.is_possible() {
                            return Err(self.not_possible(label, children));
                        }
                        for c in children {
                            self.analyze_node_possible(c, analysis)?;
                        }
                        Ok(())
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Stages 2+3: top-down traversal with execution
    // ------------------------------------------------------------------

    fn rewrite_node(
        &mut self,
        tree: &ITree,
        strategy: Strategy,
        invoker: &mut dyn Invoker,
        report: &mut RewriteReport,
    ) -> Result<ITree, RewriteError> {
        match tree {
            ITree::Text(t) => Ok(ITree::Text(t.clone())),
            ITree::Func(f) => {
                // A function root: materialize its parameters so the node is
                // an instance of its input type; the call itself stays.
                let params = self.rewrite_params(f, strategy, invoker, report)?;
                Ok(ITree::Func(FuncNode {
                    params,
                    ..f.clone()
                }))
            }
            ITree::Elem { label, children } => {
                let sym = self.compiled.classify_label(label);
                let content = self
                    .compiled
                    .content(sym)
                    .ok_or_else(|| RewriteError::UnknownLabel(label.clone()))
                    .cloned()?;
                match content {
                    CompiledContent::Any => Ok(tree.clone()),
                    CompiledContent::Data => {
                        if children.iter().all(|c| matches!(c, ITree::Text(_))) {
                            Ok(tree.clone())
                        } else {
                            Err(RewriteError::Invalid(format!(
                                "'{label}' is atomic but has non-text children"
                            )))
                        }
                    }
                    CompiledContent::Model { regex, .. } => {
                        let new_children = self.rewrite_forest(
                            children,
                            &regex,
                            TargetSlot::Content(sym),
                            label,
                            strategy,
                            invoker,
                            report,
                        )?;
                        Ok(ITree::elem(label, new_children))
                    }
                }
            }
        }
    }

    /// Materializes the parameters of `f` to fit its input type.
    fn rewrite_params(
        &mut self,
        f: &FuncNode,
        strategy: Strategy,
        invoker: &mut dyn Invoker,
        report: &mut RewriteReport,
    ) -> Result<Vec<ITree>, RewriteError> {
        let sym = self.compiled.classify_func(&f.name);
        let input = self
            .compiled
            .sig(sym)
            .expect("function symbols carry signatures")
            .input
            .clone();
        // Deferral applies only to the level that activated it: parameter
        // forests are always materialized inline, never queued.
        let defer = self.defer.take();
        let out = self.rewrite_forest(
            &f.params,
            &input,
            TargetSlot::Input(sym),
            &format!("τ_in({})", f.name),
            strategy,
            invoker,
            report,
        );
        self.defer = defer;
        out
    }

    /// Rewrites a forest (children of an element, or call parameters) into
    /// the given target regex, executing invocations.
    #[allow(clippy::too_many_arguments)]
    fn rewrite_forest(
        &mut self,
        items: &[ITree],
        target: &Regex,
        slot: TargetSlot,
        context: &str,
        strategy: Strategy,
        invoker: &mut dyn Invoker,
        report: &mut RewriteReport,
    ) -> Result<Vec<ITree>, RewriteError> {
        let game = match strategy {
            Strategy::Safe => {
                let g = self.safe_game(items, target, slot)?;
                if !g.is_safe() {
                    return Err(self.not_safe(context, items));
                }
                Game::Safe(g)
            }
            Strategy::Possible => {
                let g = self.possible_game(items, target, slot)?;
                if !g.is_possible() {
                    return Err(self.not_possible(context, items));
                }
                Game::Possible(g)
            }
        };
        report.games += 1;
        let pending: Vec<Item> = items.iter().map(|t| Item::Tree(t.clone(), true)).collect();
        match self.exec(
            &game,
            &pending,
            game.start(),
            strategy,
            invoker,
            report,
            context,
        ) {
            Ok(out) => Ok(out),
            Err(Fail::Fatal(e)) => Err(*e),
            Err(Fail::Dead) => Err(RewriteError::Exhausted {
                context: context.to_owned(),
            }),
        }
    }

    /// Rewrites only the *tail* of a forest whose `prefix` symbols have
    /// already been consumed (and emitted) by the streaming enforcer.
    ///
    /// The game is built over the full word `prefix · word(tail)` — the
    /// same `A_w^k` the DOM path would build for the element — but the
    /// prefix is advanced through forced letter moves without producing
    /// output: the streamed prefix children are function-free and
    /// individually valid, so the DOM rewriter would copy them verbatim.
    /// Execution (forks, invocations, splices) starts at the reached
    /// product node and consumes only the materialized `tail` items.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rewrite_suffix(
        &mut self,
        prefix: &[Symbol],
        tail: &[ITree],
        target: &Regex,
        slot: TargetSlot,
        context: &str,
        strategy: Strategy,
        invoker: &mut dyn Invoker,
        report: &mut RewriteReport,
    ) -> Result<Vec<ITree>, RewriteError> {
        // Stage 1 on the materialized tail only: the streamed prefix is
        // function-free by construction.
        let mut pre = Analysis::default();
        for t in tail {
            match strategy {
                Strategy::Safe => self.analyze_params(t, &mut pre)?,
                Strategy::Possible => self.analyze_params_possible(t, &mut pre)?,
            }
        }
        let mut word = prefix.to_vec();
        word.extend(self.word_of(tail));
        let game = match strategy {
            Strategy::Safe => {
                let g = self.safe_game_word(&word, target, slot)?;
                if !g.is_safe() {
                    return Err(RewriteError::NotSafe {
                        context: context.to_owned(),
                        word: self.compiled.alphabet().format_word(&word),
                    });
                }
                Game::Safe(g)
            }
            Strategy::Possible => {
                let g = self.possible_game_word(&word, target, slot)?;
                if !g.is_possible() {
                    return Err(RewriteError::NotPossible {
                        context: context.to_owned(),
                        word: self.compiled.alphabet().format_word(&word),
                    });
                }
                Game::Possible(g)
            }
        };
        report.games += 1;
        let mut cur = game.start();
        for &sym in prefix {
            cur = match self.step_symbol(&game, cur, sym, context) {
                Ok(Some(n)) => n,
                Ok(None) => {
                    return Err(RewriteError::Exhausted {
                        context: context.to_owned(),
                    })
                }
                Err(Fail::Fatal(e)) => return Err(*e),
                Err(Fail::Dead) => {
                    return Err(RewriteError::Exhausted {
                        context: context.to_owned(),
                    })
                }
            };
        }
        let pending: Vec<Item> = tail.iter().map(|t| Item::Tree(t.clone(), true)).collect();
        match self.exec(&game, &pending, cur, strategy, invoker, report, context) {
            Ok(out) => Ok(out),
            Err(Fail::Fatal(e)) => Err(*e),
            Err(Fail::Dead) => Err(RewriteError::Exhausted {
                context: context.to_owned(),
            }),
        }
    }

    // ------------------------------------------------------------------
    // The word executor (shared by safe and possible strategies)
    // ------------------------------------------------------------------

    /// Consumes `pending` from product node `cur`, returning the produced
    /// children. Backtracking happens through the recursion: a `Dead`
    /// result makes the caller try its next choice (possible mode only —
    /// in safe mode the preferred choice is guaranteed to succeed).
    #[allow(clippy::too_many_arguments)]
    fn exec(
        &mut self,
        game: &Game,
        pending: &[Item],
        cur: u32,
        strategy: Strategy,
        invoker: &mut dyn Invoker,
        report: &mut RewriteReport,
        context: &str,
    ) -> Result<Vec<ITree>, Fail> {
        let Some((first, rest)) = pending.split_first() else {
            return if game.terminal_ok(cur) {
                Ok(Vec::new())
            } else {
                Err(Fail::Dead)
            };
        };
        match first {
            Item::Exit(exit_state) => {
                let next = self.step_eps_to(game, cur, *exit_state).ok_or(Fail::Dead)?;
                self.exec(game, rest, next, strategy, invoker, report, context)
            }
            Item::Tree(ITree::Text(t), _) => {
                let next = self
                    .step_symbol(game, cur, self.compiled.data_sym(), context)?
                    .ok_or(Fail::Dead)?;
                let mut out = self.exec(game, rest, next, strategy, invoker, report, context)?;
                out.insert(0, ITree::Text(t.clone()));
                Ok(out)
            }
            Item::Tree(tree @ ITree::Elem { label, .. }, original) => {
                let sym = self.compiled.classify_label(label);
                let next = self
                    .step_symbol(game, cur, sym, context)?
                    .ok_or(Fail::Dead)?;
                let processed = if *original {
                    if let Some(defer) = self.defer.as_mut() {
                        // Parallel path: queue the subtree instead of
                        // recursing; a worker rewrites it later and the
                        // marker is spliced out. Safe mode never replays
                        // this branch, so each subtree is queued once.
                        let idx = defer.len();
                        defer.push(Deferred {
                            tree: tree.clone(),
                            invoked_at: report.invoked.len(),
                        });
                        defer_marker(idx)
                    } else {
                        self.rewrite_node(tree, strategy, invoker, report)?
                    }
                } else {
                    tree.clone()
                };
                let mut out = self.exec(game, rest, next, strategy, invoker, report, context)?;
                out.insert(0, processed);
                Ok(out)
            }
            Item::Tree(ITree::Func(f), original) => {
                let sym = self.compiled.classify_func(&f.name);
                // Locate the fork for this occurrence, if the edge was
                // expanded; otherwise it is a plain letter (non-invocable or
                // beyond depth k) and the call must stay.
                let fork = self.find_fork(game, cur, sym, context)?;
                let Some((fork_node, skip_edge, invoke_edge)) = fork else {
                    let next = self
                        .step_symbol(game, cur, sym, context)?
                        .ok_or(Fail::Dead)?;
                    let kept = self.keep_call(f, *original, strategy, invoker, report)?;
                    let mut out =
                        self.exec(game, rest, next, strategy, invoker, report, context)?;
                    out.insert(0, kept);
                    return Ok(out);
                };
                // Option order: keeping the call is free, invoking costs a
                // call — try keep first (minimal-cost policy of Fig. 3
                // step 23).
                let skip_target = self
                    .product_target(game, fork_node, skip_edge)
                    .filter(|&t| game.allowed(t));
                let invoke_target = self
                    .product_target(game, fork_node, invoke_edge)
                    .filter(|&t| game.allowed(t));

                let calls_before = report.invoked.len();
                if let Some(t) = skip_target {
                    let kept = self.keep_call(f, *original, strategy, invoker, report)?;
                    match self.exec(game, rest, t, strategy, invoker, report, context) {
                        Ok(mut out) => {
                            out.insert(0, kept);
                            return Ok(out);
                        }
                        Err(Fail::Fatal(e)) => return Err(Fail::Fatal(e)),
                        Err(Fail::Dead) if game.backtracks() => {
                            report.wasted_calls += report.invoked.len() - calls_before;
                        }
                        Err(Fail::Dead) => return Err(Fail::Dead),
                    }
                }
                let Some(entry) = invoke_target else {
                    return Err(Fail::Dead);
                };
                // Invoke: materialize parameters first (original calls), use
                // the validated returned parameters as-is otherwise.
                let params = if *original {
                    self.rewrite_params(f, strategy, invoker, report)?
                } else {
                    f.params.clone()
                };
                if let Some(max) = self.max_calls {
                    if report.invoked.len() >= max {
                        return Err(RewriteError::CallBudget { max_calls: max }.into());
                    }
                }
                let result = invoker
                    .invoke(&f.name, &params)
                    .map_err(RewriteError::from)?;
                report.invoked.push(f.name.clone());
                let sig = self
                    .compiled
                    .sig(sym)
                    .expect("function symbols carry signatures");
                validate_output_instance(&result, &sig.output_dfa, self.compiled).map_err(|e| {
                    RewriteError::IllTyped {
                        function: f.name.clone(),
                        message: e.to_string(),
                    }
                })?;
                // Splice the returned forest, then exit the copy at the
                // state the skip edge would have reached.
                let exit_state = game.awk().edge(skip_edge).to;
                let mut new_pending: Vec<Item> =
                    result.into_iter().map(|t| Item::Tree(t, false)).collect();
                new_pending.push(Item::Exit(exit_state));
                new_pending.extend(rest.iter().cloned());
                match self.exec(
                    game,
                    &new_pending,
                    entry,
                    strategy,
                    invoker,
                    report,
                    context,
                ) {
                    Ok(out) => Ok(out),
                    Err(Fail::Fatal(e)) => Err(Fail::Fatal(e)),
                    Err(Fail::Dead) => {
                        if game.backtracks() {
                            report.wasted_calls += report.invoked.len() - calls_before;
                        }
                        Err(Fail::Dead)
                    }
                }
            }
        }
    }

    /// A kept call: original calls get their parameters materialized so the
    /// node conforms to its input type; returned calls are already valid.
    fn keep_call(
        &mut self,
        f: &FuncNode,
        original: bool,
        strategy: Strategy,
        invoker: &mut dyn Invoker,
        report: &mut RewriteReport,
    ) -> Result<ITree, RewriteError> {
        if original {
            let params = self.rewrite_params(f, strategy, invoker, report)?;
            Ok(ITree::Func(FuncNode {
                params,
                ..f.clone()
            }))
        } else {
            Ok(ITree::Func(f.clone()))
        }
    }

    /// Follows the labeled edge for `sym` from `cur`; `None` means the step
    /// is impossible (dead branch). Two distinct labeled successors mean the
    /// content model was ambiguous — an execution error.
    fn step_symbol(
        &self,
        game: &Game,
        cur: u32,
        sym: Symbol,
        context: &str,
    ) -> Result<Option<u32>, Fail> {
        let awk = game.awk();
        let mut found: Option<u32> = None;
        for &(eid, t) in game.successors(cur) {
            if awk.edge(eid).label == Some(sym) && game.allowed(t) {
                if let Some(prev) = found {
                    if prev != t {
                        return Err(RewriteError::Ambiguous {
                            context: context.to_owned(),
                        }
                        .into());
                    }
                } else {
                    found = Some(t);
                }
            }
        }
        Ok(found)
    }

    /// Finds the fork deciding about symbol `sym` one ε-step away from
    /// `cur`, returning `(fork product node, skip edge, invoke edge)`.
    fn find_fork(
        &self,
        game: &Game,
        cur: u32,
        sym: Symbol,
        context: &str,
    ) -> Result<Option<(u32, EdgeId, EdgeId)>, Fail> {
        let awk = game.awk();
        let mut found = None;
        for &(eid, t) in game.successors(cur) {
            if awk.edge(eid).label.is_some() {
                continue;
            }
            let (awk_state, _) = game.pair(t);
            if let StateKind::Fork {
                func, skip, invoke, ..
            } = awk.kind(awk_state)
            {
                if func == sym {
                    if found.is_some() {
                        return Err(RewriteError::Ambiguous {
                            context: context.to_owned(),
                        }
                        .into());
                    }
                    found = Some((t, skip, invoke));
                }
            }
        }
        Ok(found)
    }

    /// The product successor of `node` along awk edge `edge`.
    fn product_target(&self, game: &Game, node: u32, edge: EdgeId) -> Option<u32> {
        game.successors(node)
            .iter()
            .find(|(e, _)| *e == edge)
            .map(|&(_, t)| t)
    }

    /// ε-step from `cur` to the product node at awk state `goal` (leaving
    /// an output copy).
    fn step_eps_to(&self, game: &Game, cur: u32, goal: u32) -> Option<u32> {
        let awk = game.awk();
        game.successors(cur)
            .iter()
            .find(|&&(eid, t)| {
                awk.edge(eid).label.is_none() && game.pair(t).0 == goal && game.allowed(t)
            })
            .map(|&(_, t)| t)
    }

    // ------------------------------------------------------------------
    // Game construction and caches
    // ------------------------------------------------------------------

    fn word_of(&self, items: &[ITree]) -> Vec<Symbol> {
        words_of(items, self.compiled).expect("words_of is total")
    }

    fn safe_game(
        &mut self,
        items: &[ITree],
        target: &Regex,
        slot: TargetSlot,
    ) -> Result<Arc<SolvedSafe>, RewriteError> {
        let w = self.word_of(items);
        self.safe_game_word(&w, target, slot)
    }

    /// [`Rewriter::safe_game`] over an explicit word — the streaming
    /// enforcer supplies `prefix · word(tail)` instead of a full forest.
    fn safe_game_word(
        &mut self,
        w: &[Symbol],
        target: &Regex,
        slot: TargetSlot,
    ) -> Result<Arc<SolvedSafe>, RewriteError> {
        let schema = self.compiled.fingerprint();
        let n = self.compiled.alphabet().len();
        let (compiled, k, limits, mode) = (self.compiled, self.k, self.limits, self.mode);
        let cache = &self.cache;
        cache.safe_game(schema, slot, &w, k, mode, limits.max_states, || {
            let awk = Awk::build(&w, compiled, k, &limits)
                .map_err(|e| RewriteError::TooLarge(e.to_string()))?;
            let comp = cache.comp_dfa(schema, slot, || complement_of(target, n));
            Ok(SafeGame::solve(awk, (*comp).clone(), mode))
        })
    }

    fn possible_game(
        &mut self,
        items: &[ITree],
        target: &Regex,
        slot: TargetSlot,
    ) -> Result<Arc<SolvedPossible>, RewriteError> {
        let w = self.word_of(items);
        self.possible_game_word(&w, target, slot)
    }

    /// [`Rewriter::possible_game`] over an explicit word.
    fn possible_game_word(
        &mut self,
        w: &[Symbol],
        target: &Regex,
        slot: TargetSlot,
    ) -> Result<Arc<SolvedPossible>, RewriteError> {
        let schema = self.compiled.fingerprint();
        let n = self.compiled.alphabet().len();
        let (compiled, k, limits) = (self.compiled, self.k, self.limits);
        let cache = &self.cache;
        cache.possible_game(schema, slot, &w, k, limits.max_states, || {
            let awk = Awk::build(&w, compiled, k, &limits)
                .map_err(|e| RewriteError::TooLarge(e.to_string()))?;
            let dfa = cache.target_dfa(schema, slot, || Dfa::determinize(&Nfa::thompson(target, n)));
            Ok(PossibleGame::solve(awk, (*dfa).clone()))
        })
    }

    fn not_safe(&self, context: &str, items: &[ITree]) -> RewriteError {
        RewriteError::NotSafe {
            context: context.to_owned(),
            word: self.compiled.alphabet().format_word(&self.word_of(items)),
        }
    }

    fn not_possible(&self, context: &str, items: &[ITree]) -> RewriteError {
        RewriteError::NotPossible {
            context: context.to_owned(),
            word: self.compiled.alphabet().format_word(&self.word_of(items)),
        }
    }
}

/// Convenience: validate-or-rewrite used by the peer's Schema Enforcement
/// module — returns `tree` unchanged when it already conforms, otherwise
/// attempts a safe rewriting (the module's (i)/(ii)/(iii) steps in Sec. 7).
pub fn enforce(
    compiled: &Compiled,
    tree: &ITree,
    k: u32,
    invoker: &mut dyn Invoker,
) -> Result<(ITree, RewriteReport), RewriteError> {
    if axml_schema::validate(tree, compiled).is_ok() {
        return Ok((tree.clone(), RewriteReport::default()));
    }
    Rewriter::new(compiled)
        .with_k(k)
        .rewrite_safe(tree, invoker)
}

/// [`enforce`] with a shared [`SolveCache`] and an optional parallel
/// subtree pass: with `workers > 1` the root's element children are
/// rewritten concurrently (byte-identical output, see
/// [`Rewriter::rewrite_safe_parallel`]); otherwise the sequential path
/// runs, still warm from the cache.
pub fn enforce_with<'i>(
    compiled: &Compiled,
    tree: &ITree,
    k: u32,
    cache: &SolveCache,
    workers: usize,
    make_invoker: &mut dyn FnMut() -> Box<dyn Invoker + Send + 'i>,
) -> Result<(ITree, RewriteReport), RewriteError> {
    if axml_schema::validate(tree, compiled).is_ok() {
        return Ok((tree.clone(), RewriteReport::default()));
    }
    let mut rw = Rewriter::new(compiled).with_k(k).with_cache(cache);
    if workers > 1 {
        rw.rewrite_safe_parallel(tree, make_invoker, workers)
    } else {
        let mut invoker = make_invoker();
        rw.rewrite_safe(tree, &mut *invoker)
    }
}

/// [`enforce`] under the *possible* notion: returns `tree` unchanged when
/// it already conforms, otherwise attempts a possible rewriting (which may
/// invoke speculatively and backtrack) through the shared [`SolveCache`].
pub fn enforce_possible_with(
    compiled: &Compiled,
    tree: &ITree,
    k: u32,
    cache: &SolveCache,
    invoker: &mut dyn Invoker,
) -> Result<(ITree, RewriteReport), RewriteError> {
    if axml_schema::validate(tree, compiled).is_ok() {
        return Ok((tree.clone(), RewriteReport::default()));
    }
    Rewriter::new(compiled)
        .with_k(k)
        .with_cache(cache)
        .rewrite_possible(tree, invoker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invoke::ScriptedInvoker;
    use axml_schema::{newspaper_example, validate, NoOracle, Schema};

    fn paper_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    /// Schema (**): temp must be materialized, TimeOut may stay.
    fn star_star_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    /// Schema (***): fully extensional newspaper.
    fn star3_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.temp.exhibit*")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    fn exhibit(title: &str, date: &str) -> ITree {
        ITree::elem(
            "exhibit",
            vec![ITree::data("title", title), ITree::data("date", date)],
        )
    }

    #[test]
    fn figure2_safe_rewriting_into_star_star() {
        // Fig. 2 end to end: Get_Temp is invoked (with its city parameter),
        // TimeOut stays intensional, and the result conforms to (**).
        let c = star_star_compiled();
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new().answer("Get_Temp", vec![ITree::data("temp", "15 C")]);
        let (out, report) = rw.rewrite_safe(&newspaper_example(), &mut inv).unwrap();
        assert_eq!(report.invoked, vec!["Get_Temp".to_owned()]);
        assert_eq!(report.wasted_calls, 0);
        validate(&out, &c).unwrap();
        // The Get_Temp call got the materialized city parameter.
        assert_eq!(inv.log[0].1, vec![ITree::data("city", "Paris")]);
        // TimeOut is still there.
        assert_eq!(out.num_funcs(), 1);
        assert_eq!(out.children()[2], ITree::data("temp", "15 C"));
    }

    #[test]
    fn unsafe_target_fails_before_any_call() {
        // Schema (***): no safe rewriting — and crucially no side effects.
        let c = star3_compiled();
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new()
            .answer("Get_Temp", vec![ITree::data("temp", "15 C")])
            .answer("TimeOut", vec![]);
        let err = rw.rewrite_safe(&newspaper_example(), &mut inv).unwrap_err();
        assert!(matches!(err, RewriteError::NotSafe { .. }), "{err}");
        assert_eq!(inv.calls(), 0, "safe rewriting must not invoke on failure");
    }

    #[test]
    fn possible_rewriting_succeeds_when_timeout_cooperates() {
        let c = star3_compiled();
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new()
            .answer("Get_Temp", vec![ITree::data("temp", "15 C")])
            .answer(
                "TimeOut",
                vec![exhibit("Expo", "Mon"), exhibit("Louvre", "Tue")],
            );
        let (out, report) = rw.rewrite_possible(&newspaper_example(), &mut inv).unwrap();
        validate(&out, &c).unwrap();
        assert_eq!(out.num_funcs(), 0);
        assert_eq!(report.invoked.len(), 2);
        assert_eq!(report.wasted_calls, 0);
        assert_eq!(out.children().len(), 5);
    }

    #[test]
    fn possible_rewriting_exhausts_when_timeout_returns_performance() {
        let c = star3_compiled();
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new()
            .answer("Get_Temp", vec![ITree::data("temp", "15 C")])
            .answer(
                "TimeOut",
                vec![ITree::elem("performance", vec![ITree::text("Hamlet")])],
            );
        let err = rw
            .rewrite_possible(&newspaper_example(), &mut inv)
            .unwrap_err();
        assert!(matches!(err, RewriteError::Exhausted { .. }), "{err}");
        // Both calls were made before the failure was discovered: that is
        // the cost of unsafe rewriting the paper warns about.
        assert!(inv.calls() >= 2);
    }

    #[test]
    fn possible_rejects_upfront_when_disjoint() {
        let c = Compiled::new(
            Schema::builder()
                .element("newspaper", "temp.temp")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.date")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new();
        let err = rw
            .rewrite_possible(&newspaper_example(), &mut inv)
            .unwrap_err();
        assert!(matches!(err, RewriteError::NotPossible { .. }), "{err}");
        assert_eq!(inv.calls(), 0);
    }

    #[test]
    fn nested_params_materialized_innermost_first() {
        // r ::= b ; F : a -> b ; G : () -> a.  Doc: r[ F(G()) ].
        // F must be invoked; before that its parameter G must be called.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "b")
                .data_element("a")
                .data_element("b")
                .function("F", "a", "b")
                .function("G", "", "a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let doc = ITree::elem("r", vec![ITree::func("F", vec![ITree::func("G", vec![])])]);
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new()
            .answer("G", vec![ITree::data("a", "1")])
            .answer("F", vec![ITree::data("b", "2")]);
        let (out, report) = rw.rewrite_safe(&doc, &mut inv).unwrap();
        assert_eq!(report.invoked, vec!["G".to_owned(), "F".to_owned()]);
        assert_eq!(out, ITree::elem("r", vec![ITree::data("b", "2")]));
        // F received the materialized a.
        assert_eq!(inv.log[1].1, vec![ITree::data("a", "1")]);
    }

    #[test]
    fn kept_call_gets_its_params_materialized() {
        // Target keeps F, but F's parameter must become an instance of
        // τ_in(F) = a — the embedded G call must be materialized.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "F|b")
                .data_element("a")
                .data_element("b")
                .function("F", "a", "b")
                .function("G", "", "a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let doc = ITree::elem("r", vec![ITree::func("F", vec![ITree::func("G", vec![])])]);
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new().answer("G", vec![ITree::data("a", "1")]);
        let (out, report) = rw.rewrite_safe(&doc, &mut inv).unwrap();
        assert_eq!(report.invoked, vec!["G".to_owned()]);
        assert_eq!(
            out,
            ITree::elem("r", vec![ITree::func("F", vec![ITree::data("a", "1")])])
        );
        validate(&out, &c).unwrap();
    }

    #[test]
    fn unrewritable_params_fail_stage_one() {
        // τ_in(F) = a but the parameter is a 'b' with no way to fix it.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "F|b")
                .data_element("a")
                .data_element("b")
                .function("F", "a", "b")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let doc = ITree::elem("r", vec![ITree::func("F", vec![ITree::data("b", "x")])]);
        let mut rw = Rewriter::new(&c).with_k(1);
        let err = rw.analyze_safe(&doc).unwrap_err();
        assert!(
            matches!(err, RewriteError::NotSafe { ref context, .. } if context.contains("τ_in(F)")),
            "{err}"
        );
    }

    #[test]
    fn ill_typed_service_answer_detected() {
        let c = star_star_compiled();
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new().answer("Get_Temp", vec![ITree::data("date", "oops")]);
        let err = rw.rewrite_safe(&newspaper_example(), &mut inv).unwrap_err();
        assert!(
            matches!(err, RewriteError::IllTyped { ref function, .. } if function == "Get_Temp"),
            "{err}"
        );
    }

    #[test]
    fn depth_two_flattens_returned_handles() {
        let c = Compiled::new(
            Schema::builder()
                .element("r", "exhibit*")
                .element("exhibit", "")
                .function("Get_Exhibits", "", "Get_Exhibit*")
                .function("Get_Exhibit", "", "exhibit")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let doc = ITree::elem("r", vec![ITree::func("Get_Exhibits", vec![])]);
        // k = 1 is not safe: returned handles could not be materialized.
        let mut rw1 = Rewriter::new(&c).with_k(1);
        assert!(rw1.analyze_safe(&doc).is_err());
        // k = 2 invokes the returned handles too.
        let mut rw2 = Rewriter::new(&c).with_k(2);
        let mut inv = ScriptedInvoker::new()
            .answer(
                "Get_Exhibits",
                vec![
                    ITree::func("Get_Exhibit", vec![]),
                    ITree::func("Get_Exhibit", vec![]),
                ],
            )
            .answer("Get_Exhibit", vec![ITree::elem("exhibit", vec![])]);
        let (out, report) = rw2.rewrite_safe(&doc, &mut inv).unwrap();
        assert_eq!(
            out,
            ITree::elem(
                "r",
                vec![
                    ITree::elem("exhibit", vec![]),
                    ITree::elem("exhibit", vec![]),
                ]
            )
        );
        assert_eq!(report.invoked.len(), 3);
        validate(&out, &c).unwrap();
    }

    #[test]
    fn recursion_into_child_subtrees() {
        // The exhibit child itself contains a Get_Date call that must be
        // materialized for schema (***)-style exhibit = title.date.
        let c = Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.temp.exhibit*")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.date")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let doc = ITree::elem(
            "newspaper",
            vec![
                ITree::data("title", "t"),
                ITree::data("date", "d"),
                ITree::data("temp", "15"),
                ITree::elem(
                    "exhibit",
                    vec![
                        ITree::data("title", "Expo"),
                        ITree::func("Get_Date", vec![ITree::data("title", "Expo")]),
                    ],
                ),
            ],
        );
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new().answer("Get_Date", vec![ITree::data("date", "Mon")]);
        let (out, report) = rw.rewrite_safe(&doc, &mut inv).unwrap();
        assert_eq!(report.invoked, vec!["Get_Date".to_owned()]);
        validate(&out, &c).unwrap();
    }

    #[test]
    fn backtracking_recovers_from_dead_skip_branch() {
        // target (f.a)|b : keeping f needs a following 'a' that is not
        // there, so the executor backtracks and invokes f, which returns b.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "(f.a)|b")
                .data_element("a")
                .data_element("b")
                .function("f", "", "a|b")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let doc = ITree::elem("r", vec![ITree::func("f", vec![])]);
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new().answer("f", vec![ITree::data("b", "x")]);
        let (out, report) = rw.rewrite_possible(&doc, &mut inv).unwrap();
        assert_eq!(out, ITree::elem("r", vec![ITree::data("b", "x")]));
        assert_eq!(report.invoked, vec!["f".to_owned()]);
        assert_eq!(report.wasted_calls, 0, "the skip branch made no calls");
    }

    #[test]
    fn wasted_calls_counted_on_dead_invocations() {
        // target a.b ; f : () -> a|c ; g : () -> b|c.
        // Invoking f returns c — dead end discovered immediately; the call
        // is wasted and the whole rewriting is exhausted.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "a.b")
                .data_element("a")
                .data_element("b")
                .data_element("cc")
                .function("f", "", "a|cc")
                .function("g", "", "b|cc")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let doc = ITree::elem(
            "r",
            vec![ITree::func("f", vec![]), ITree::func("g", vec![])],
        );
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new()
            .answer("f", vec![ITree::data("cc", "x")])
            .answer("g", vec![ITree::data("b", "y")]);
        let err = rw.rewrite_possible(&doc, &mut inv).unwrap_err();
        assert!(matches!(err, RewriteError::Exhausted { .. }), "{err}");
        assert_eq!(inv.calls(), 1, "g is never reached after f's dead answer");
    }

    #[test]
    fn enforce_skips_rewriting_when_already_conforming() {
        let c = paper_compiled();
        let mut inv = ScriptedInvoker::new();
        let (out, report) = enforce(&c, &newspaper_example(), 1, &mut inv).unwrap();
        assert_eq!(out, newspaper_example());
        assert_eq!(report.invoked.len(), 0);
        assert_eq!(inv.calls(), 0);
    }

    #[test]
    fn enforce_falls_back_to_safe_rewriting() {
        let c = star_star_compiled();
        let mut inv = ScriptedInvoker::new().answer("Get_Temp", vec![ITree::data("temp", "15 C")]);
        let (out, report) = enforce(&c, &newspaper_example(), 1, &mut inv).unwrap();
        assert_eq!(report.invoked, vec!["Get_Temp".to_owned()]);
        validate(&out, &c).unwrap();
    }

    #[test]
    fn unknown_label_reported() {
        let c = paper_compiled();
        let mut rw = Rewriter::new(&c);
        let err = rw
            .analyze_safe(&ITree::elem("mystery", vec![]))
            .unwrap_err();
        assert!(matches!(err, RewriteError::UnknownLabel(ref l) if l == "mystery"));
    }

    #[test]
    fn invoker_failure_propagates() {
        let c = star_star_compiled();
        let mut rw = Rewriter::new(&c).with_k(1);
        let mut inv = ScriptedInvoker::new(); // no answers scripted
        let err = rw.rewrite_safe(&newspaper_example(), &mut inv).unwrap_err();
        assert!(matches!(err, RewriteError::Invoke(_)), "{err}");
    }

    #[test]
    fn analysis_reports_games() {
        let c = star_star_compiled();
        let mut rw = Rewriter::new(&c).with_k(1);
        let a = rw.analyze_safe(&newspaper_example()).unwrap();
        assert!(a.games >= 3, "root + two parameter games, got {}", a.games);
        assert!(a.product_nodes > 0);
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;
    use axml_schema::{NoOracle, Schema};

    fn handles_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("r", "exhibit*")
                .element("exhibit", "")
                .function("Get_Exhibits", "", "Get_Exhibit*")
                .function("Get_Exhibit", "", "exhibit")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    #[test]
    fn minimal_safe_k_found() {
        let c = handles_compiled();
        let doc = ITree::elem("r", vec![ITree::func("Get_Exhibits", vec![])]);
        let mut rw = Rewriter::new(&c);
        assert_eq!(rw.minimal_safe_k(&doc, 5), Some(2));
        // The rewriter's configured k is restored.
        assert_eq!(rw.k, 2);
        // A flat document is safe at depth 0 (it already conforms).
        let flat = ITree::elem("r", vec![ITree::elem("exhibit", vec![])]);
        assert_eq!(rw.minimal_safe_k(&flat, 5), Some(0));
    }

    #[test]
    fn minimal_safe_k_none_when_unreachable() {
        // A non-invocable call can never be materialized: no k suffices.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "a")
                .data_element("a")
                .non_invocable_function("f", "", "a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let doc = ITree::elem("r", vec![ITree::func("f", vec![])]);
        let mut rw = Rewriter::new(&c);
        assert_eq!(rw.minimal_safe_k(&doc, 4), None);
    }

    #[test]
    fn analyze_possible_distinguishes_from_safe() {
        // Newspaper into (***): not safe, but possible.
        let c = Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.temp.exhibit*")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let doc = axml_schema::newspaper_example();
        let mut rw = Rewriter::new(&c).with_k(1);
        assert!(rw.analyze_safe(&doc).is_err());
        assert!(rw.analyze_possible(&doc).is_ok());
        // Disjoint content: not even possible.
        let c2 = Compiled::new(
            Schema::builder()
                .element("newspaper", "temp.temp")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.date")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let mut rw2 = Rewriter::new(&c2).with_k(1);
        assert!(matches!(
            rw2.analyze_possible(&doc),
            Err(RewriteError::NotPossible { .. })
        ));
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::invoke::ScriptedInvoker;
    use axml_schema::{NoOracle, Schema};

    #[test]
    fn call_budget_enforced() {
        // Materializing needs three calls; a budget of two must abort.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "a.a.a")
                .data_element("a")
                .function("f", "", "a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let doc = ITree::elem(
            "r",
            vec![
                ITree::func("f", vec![]),
                ITree::func("f", vec![]),
                ITree::func("f", vec![]),
            ],
        );
        let mut inv = ScriptedInvoker::new().answer("f", vec![ITree::data("a", "1")]);
        let mut limited = Rewriter::new(&c).with_k(1).with_max_calls(2);
        let err = limited.rewrite_safe(&doc, &mut inv).unwrap_err();
        assert!(
            matches!(err, RewriteError::CallBudget { max_calls: 2 }),
            "{err}"
        );
        assert_eq!(inv.calls(), 2, "the third call was never made");
        // With budget 3 it succeeds.
        let mut inv = ScriptedInvoker::new().answer("f", vec![ITree::data("a", "1")]);
        let mut enough = Rewriter::new(&c).with_k(1).with_max_calls(3);
        let (out, report) = enough.rewrite_safe(&doc, &mut inv).unwrap();
        assert_eq!(report.invoked.len(), 3);
        assert_eq!(out.children().len(), 3);
    }

    fn exhibits_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("r", "exhibit*")
                .element("exhibit", "title.date")
                .data_element("title")
                .data_element("date")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    fn exhibits_doc(n: usize) -> ITree {
        let kids = (0..n)
            .map(|i| {
                let t = format!("t{i}");
                ITree::elem(
                    "exhibit",
                    vec![
                        ITree::data("title", &t),
                        ITree::func("Get_Date", vec![ITree::data("title", &t)]),
                    ],
                )
            })
            .collect();
        ITree::elem("r", kids)
    }

    #[test]
    fn parallel_safe_rewriting_matches_sequential() {
        let c = exhibits_compiled();
        let doc = exhibits_doc(8);
        let answer = vec![ITree::data("date", "Mon")];
        let mut seq_inv = ScriptedInvoker::new().answer("Get_Date", answer.clone());
        let (seq_out, seq_rep) = Rewriter::new(&c)
            .with_k(1)
            .rewrite_safe(&doc, &mut seq_inv)
            .unwrap();
        for workers in [1, 2, 4] {
            let cache = SolveCache::unpublished(64);
            let template = ScriptedInvoker::new().answer("Get_Date", answer.clone());
            let mut mk = || -> Box<dyn Invoker + Send> { Box::new(template.clone()) };
            let (par_out, par_rep) = Rewriter::new(&c)
                .with_k(1)
                .with_cache(&cache)
                .rewrite_safe_parallel(&doc, &mut mk, workers)
                .unwrap();
            assert_eq!(par_out, seq_out, "workers={workers}");
            assert_eq!(par_rep, seq_rep, "workers={workers}");
            assert!(cache.stats().hits > 0, "siblings must share cached games");
        }
    }

    #[test]
    fn parallel_failure_reports_the_sequential_error() {
        let c = exhibits_compiled();
        let doc = exhibits_doc(5);
        // No scripted answer for Get_Date: every subtree fails to invoke.
        let mut seq_inv = ScriptedInvoker::new();
        let seq_err = Rewriter::new(&c)
            .with_k(1)
            .rewrite_safe(&doc, &mut seq_inv)
            .unwrap_err();
        let mut mk = || -> Box<dyn Invoker + Send> { Box::new(ScriptedInvoker::new()) };
        let par_err = Rewriter::new(&c)
            .with_k(1)
            .rewrite_safe_parallel(&doc, &mut mk, 3)
            .unwrap_err();
        assert_eq!(par_err, seq_err, "leftmost subtree error must win");
    }

    #[test]
    fn warm_cache_reproduces_cold_results() {
        let c = exhibits_compiled();
        let doc = exhibits_doc(4);
        let cache = SolveCache::unpublished(64);
        let run = || {
            let mut inv = ScriptedInvoker::new().answer("Get_Date", vec![ITree::data("date", "Mon")]);
            Rewriter::new(&c)
                .with_k(1)
                .with_cache(&cache)
                .rewrite_safe(&doc, &mut inv)
                .unwrap()
        };
        let cold = run();
        let misses_after_cold = cache.stats().misses;
        let warm = run();
        assert_eq!(warm, cold);
        let s = cache.stats();
        assert_eq!(s.misses, misses_after_cold, "warm run must not rebuild");
        assert!(s.hits > 0);
    }
}
