//! Graphviz DOT rendering of the rewriting automata.
//!
//! Regenerates the paper's figures as graphs: `A_w^k` (Fig. 4), the
//! complement (Figs. 5/7), the marked safe product (Figs. 6/8/12) and the
//! possible product (Fig. 11). Marked/unviable nodes are shaded like the
//! colored nodes in the paper.

use crate::awk::{Awk, StateKind};
use crate::possible::PossibleGame;
use crate::safe::SafeGame;
use axml_automata::Alphabet;
use std::fmt::Write as _;

/// Renders `A_w^k` (Fig. 4 style): forks as diamonds, ε edges dashed.
pub fn awk_to_dot(awk: &Awk, alphabet: &Alphabet, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for s in 0..awk.num_states() as u32 {
        match awk.kind(s) {
            StateKind::Fork { func, .. } => {
                let _ = writeln!(
                    out,
                    "  q{s} [shape=diamond, label=\"q{s}\\nfork {}\"];",
                    alphabet.name(func)
                );
            }
            StateKind::Regular => {
                let shape = if s == awk.finish {
                    "doublecircle"
                } else {
                    "circle"
                };
                let _ = writeln!(out, "  q{s} [shape={shape}, label=\"q{s}\"];");
            }
        }
    }
    let _ = writeln!(out, "  start [shape=point];");
    let _ = writeln!(out, "  start -> q{};", awk.start);
    for e in 0..awk.num_edges() as u32 {
        let edge = awk.edge(e);
        match edge.label {
            Some(sym) => {
                let _ = writeln!(
                    out,
                    "  q{} -> q{} [label=\"{}\"];",
                    edge.from,
                    edge.to,
                    alphabet.name(sym)
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  q{} -> q{} [label=\"ε\", style=dashed];",
                    edge.from, edge.to
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the safe product with its marking (Figs. 6/8/12 style): marked
/// nodes are shaded, fork nodes are diamonds.
pub fn safe_game_to_dot(game: &SafeGame, alphabet: &Alphabet, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for n in 0..game.num_nodes() as u32 {
        let (s, p) = game.pair(n);
        let marked = game.is_marked(n);
        let fill = if marked {
            ", style=filled, fillcolor=gray75"
        } else {
            ""
        };
        let shape = match game.awk.kind(s) {
            StateKind::Fork { .. } => "diamond",
            StateKind::Regular if s == game.awk.finish => "doublecircle",
            StateKind::Regular => "circle",
        };
        let _ = writeln!(out, "  n{n} [shape={shape}, label=\"[q{s},p{p}]\"{fill}];");
    }
    let _ = writeln!(out, "  start [shape=point];");
    let _ = writeln!(out, "  start -> n{};", game.start);
    for n in 0..game.num_nodes() as u32 {
        for &(eid, t) in game.successors(n) {
            match game.awk.edge(eid).label {
                Some(sym) => {
                    let _ = writeln!(out, "  n{n} -> n{t} [label=\"{}\"];", alphabet.name(sym));
                }
                None => {
                    let _ = writeln!(out, "  n{n} -> n{t} [label=\"ε\", style=dashed];");
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the possible product with viability shading (Fig. 11 style).
pub fn possible_game_to_dot(game: &PossibleGame, alphabet: &Alphabet, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for n in 0..game.num_nodes() as u32 {
        let (s, p) = game.pair(n);
        let dead = !game.is_viable(n);
        let fill = if dead {
            ", style=filled, fillcolor=gray75"
        } else {
            ""
        };
        let shape = if game.accepting(n) {
            "doublecircle"
        } else {
            match game.awk.kind(s) {
                StateKind::Fork { .. } => "diamond",
                StateKind::Regular => "circle",
            }
        };
        let _ = writeln!(out, "  n{n} [shape={shape}, label=\"[q{s},p{p}]\"{fill}];");
    }
    let _ = writeln!(out, "  start [shape=point];");
    let _ = writeln!(out, "  start -> n{};", game.start);
    for n in 0..game.num_nodes() as u32 {
        for &(eid, t) in game.successors(n) {
            match game.awk.edge(eid).label {
                Some(sym) => {
                    let _ = writeln!(out, "  n{n} -> n{t} [label=\"{}\"];", alphabet.name(sym));
                }
                None => {
                    let _ = writeln!(out, "  n{n} -> n{t} [label=\"ε\", style=dashed];");
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awk::AwkLimits;
    use crate::possible::target_of;
    use crate::safe::{complement_of, BuildMode};
    use axml_automata::Regex;
    use axml_schema::{Compiled, NoOracle, Schema};

    fn setup() -> (Compiled, Vec<u32>, Regex) {
        let c = Compiled::new(
            Schema::builder()
                .element("r", "(f|a)")
                .data_element("a")
                .function("f", "", "a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let w = vec![c.alphabet().lookup("f").unwrap()];
        let mut ab = c.alphabet().clone();
        let re = Regex::parse("a", &mut ab).unwrap();
        (c, w, re)
    }

    #[test]
    fn dot_renderers_produce_wellformed_graphs() {
        let (c, w, re) = setup();
        let awk = Awk::build(&w, &c, 1, &AwkLimits::default()).unwrap();
        let dot = awk_to_dot(&awk, c.alphabet(), "fig4");
        assert!(dot.contains("diamond"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.starts_with("digraph fig4 {") && dot.ends_with("}\n"));

        let game = crate::safe::SafeGame::solve(
            awk.clone(),
            complement_of(&re, c.alphabet().len()),
            BuildMode::Eager,
        );
        let dot = safe_game_to_dot(&game, c.alphabet(), "fig6");
        assert!(dot.contains("fillcolor=gray75"), "marked nodes shaded");
        assert!(dot.contains("[q0,p0]"));

        let pgame = crate::possible::PossibleGame::solve(awk, target_of(&re, c.alphabet().len()));
        let dot = possible_game_to_dot(&pgame, c.alphabet(), "fig11");
        assert!(dot.contains("doublecircle"));
    }
}
