//! The k-depth expansion automaton `A_w^k` (Fig. 3, steps 5–10; Fig. 4).
//!
//! Given the children word `w` of a node, `A_w^k` represents *all* words
//! obtainable from `w` by a k-depth left-to-right rewriting: every invocable
//! function occurrence may either stay (its symbol is read) or be invoked
//! (an arbitrary word of its output type is read instead), and functions
//! appearing in output types may recursively be expanded, up to depth `k`.
//!
//! Each expandable function edge is materialized as a *fork* state with
//! exactly two options (the paper's fork nodes and fork options):
//!
//! ```text
//!        ε          f              (skip: do not invoke)
//!   v ──────▶ m ─────────▶ u
//!             │    ε                (invoke: read an output instance)
//!             └──────▶ [A_{τout(f)} copy] ──ε──▶ u
//! ```
//!
//! States that are not forks are *adversary* states: which output word a
//! service returns is not under the rewriter's control.

use axml_automata::{Glushkov, Symbol};
use axml_schema::Compiled;
use std::fmt;

/// State identifier within an [`Awk`].
pub type StateId = u32;
/// Edge identifier within an [`Awk`].
pub type EdgeId = u32;

/// Processing direction of the one-pass restriction (Sec. 3; footnote 4:
/// "One could choose similarly right-to-left").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Children are processed left to right (the paper's default).
    #[default]
    LeftToRight,
    /// Children are processed right to left.
    RightToLeft,
}

/// What a state represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateKind {
    /// An ordinary state; outgoing edges are adversary choices.
    Regular,
    /// A fork for a function occurrence: exactly two outgoing edges, the
    /// `skip` (labeled) edge and the `invoke` (ε) edge.
    Fork {
        /// The function symbol this fork decides about.
        func: Symbol,
        /// Edge taken when the call is left intensional.
        skip: EdgeId,
        /// ε-edge into the output-type copy taken when the call is invoked.
        invoke: EdgeId,
        /// Expansion depth of this fork (1 = original word occurrence).
        depth: u32,
    },
}

/// An edge: `label = None` is an ε-move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source state.
    pub from: StateId,
    /// Target state.
    pub to: StateId,
    /// Symbol read, or `None` for ε.
    pub label: Option<Symbol>,
}

/// Construction limits for [`Awk::build`].
#[derive(Debug, Clone, Copy)]
pub struct AwkLimits {
    /// Maximum number of states (guards against exponential blow-ups when
    /// `k` is large and output types are wide).
    pub max_states: usize,
}

impl Default for AwkLimits {
    fn default() -> Self {
        AwkLimits {
            max_states: 500_000,
        }
    }
}

/// Error raised when construction limits are exceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AwkTooLarge {
    /// The limit that was hit.
    pub max_states: usize,
}

impl fmt::Display for AwkTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "A_w^k construction exceeded the state limit ({} states)",
            self.max_states
        )
    }
}

impl std::error::Error for AwkTooLarge {}

/// The expansion automaton.
#[derive(Debug, Clone)]
pub struct Awk {
    /// Alphabet size (the compiled schema's effective alphabet).
    pub num_symbols: usize,
    kinds: Vec<StateKind>,
    edges: Vec<Edge>,
    out: Vec<Vec<EdgeId>>,
    /// Initial state (start of the word).
    pub start: StateId,
    /// Unique final state (end of the word).
    pub finish: StateId,
    /// The expansion depth this automaton was built with.
    pub k: u32,
    /// Processing direction this automaton encodes.
    pub direction: Direction,
}

impl Awk {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.kinds.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of fork states.
    pub fn num_forks(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| matches!(k, StateKind::Fork { .. }))
            .count()
    }

    /// Kind of `state`.
    pub fn kind(&self, state: StateId) -> StateKind {
        self.kinds[state as usize]
    }

    /// The edge `id`.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id as usize]
    }

    /// Outgoing edge ids of `state`.
    pub fn out_edges(&self, state: StateId) -> &[EdgeId] {
        &self.out[state as usize]
    }

    /// Reassembles an automaton from its serialized parts (the snapshot
    /// decode path in `axml-store`).
    ///
    /// The `out` adjacency must be passed explicitly — it is *not*
    /// derivable from `edges`, because fork expansion reorders a
    /// state's outgoing list in place and the game builders depend on
    /// that order. Every structural invariant the builder guarantees is
    /// re-checked here, so a corrupted or adversarial snapshot yields
    /// `Err`, never an automaton that can make downstream indexing
    /// panic.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        num_symbols: usize,
        kinds: Vec<StateKind>,
        edges: Vec<Edge>,
        out: Vec<Vec<EdgeId>>,
        start: StateId,
        finish: StateId,
        k: u32,
        direction: Direction,
    ) -> Result<Awk, String> {
        let states = kinds.len();
        if out.len() != states {
            return Err(format!(
                "adjacency covers {} states but {} are declared",
                out.len(),
                states
            ));
        }
        if states == 0 {
            return Err("automaton has no states".to_owned());
        }
        if (start as usize) >= states || (finish as usize) >= states {
            return Err(format!(
                "start {start} or finish {finish} out of range (states: {states})"
            ));
        }
        for (i, e) in edges.iter().enumerate() {
            if (e.from as usize) >= states || (e.to as usize) >= states {
                return Err(format!("edge {i} endpoints out of range"));
            }
            if let Some(sym) = e.label {
                if (sym as usize) >= num_symbols {
                    return Err(format!("edge {i} labeled with unknown symbol {sym}"));
                }
            }
        }
        // Each edge appears exactly once in the adjacency, at its source.
        let mut listed = vec![false; edges.len()];
        for (s, ids) in out.iter().enumerate() {
            for &eid in ids {
                let Some(slot) = listed.get_mut(eid as usize) else {
                    return Err(format!("state {s} lists unknown edge {eid}"));
                };
                if *slot {
                    return Err(format!("edge {eid} listed twice in the adjacency"));
                }
                *slot = true;
                if edges[eid as usize].from != s as StateId {
                    return Err(format!("edge {eid} listed at state {s}, not its source"));
                }
            }
        }
        if let Some(missing) = listed.iter().position(|l| !l) {
            return Err(format!("edge {missing} absent from the adjacency"));
        }
        for (s, kind) in kinds.iter().enumerate() {
            if let StateKind::Fork { skip, invoke, .. } = kind {
                for (role, eid) in [("skip", *skip), ("invoke", *invoke)] {
                    if (eid as usize) >= edges.len() {
                        return Err(format!("fork {s}: {role} edge {eid} out of range"));
                    }
                    if edges[eid as usize].from != s as StateId {
                        return Err(format!("fork {s}: {role} edge {eid} has another source"));
                    }
                }
            }
        }
        Ok(Awk {
            num_symbols,
            kinds,
            edges,
            out,
            start,
            finish,
            k,
            direction,
        })
    }

    fn add_state(&mut self) -> StateId {
        self.kinds.push(StateKind::Regular);
        self.out.push(Vec::new());
        (self.kinds.len() - 1) as StateId
    }

    fn add_edge(&mut self, from: StateId, to: StateId, label: Option<Symbol>) -> EdgeId {
        let id = self.edges.len() as EdgeId;
        self.edges.push(Edge { from, to, label });
        self.out[from as usize].push(id);
        id
    }

    /// Builds `A_w^k` for the word `w` over `compiled`'s effective alphabet.
    ///
    /// Only *invocable* function-like symbols (declared invocable functions,
    /// invocable pattern classes) are expanded; everything else is a plain
    /// letter. The paper's algorithm performs `k` rounds, each expanding the
    /// function edges created by the previous round.
    pub fn build(
        w: &[Symbol],
        compiled: &Compiled,
        k: u32,
        limits: &AwkLimits,
    ) -> Result<Awk, AwkTooLarge> {
        Awk::build_directed(w, compiled, k, limits, Direction::LeftToRight)
    }

    /// Builds the expansion automaton for the given processing
    /// [`Direction`]. For [`Direction::RightToLeft`] the word and every
    /// output type are reversed, so the same left-to-right game machinery
    /// solves the mirrored problem; callers must also reverse the target
    /// language (see [`crate::safe::complement_of`] on
    /// `target.reversed()`).
    pub fn build_directed(
        w: &[Symbol],
        compiled: &Compiled,
        k: u32,
        limits: &AwkLimits,
        direction: Direction,
    ) -> Result<Awk, AwkTooLarge> {
        let mut awk = Awk {
            num_symbols: compiled.alphabet().len(),
            kinds: Vec::new(),
            edges: Vec::new(),
            out: Vec::new(),
            start: 0,
            finish: 0,
            k,
            direction,
        };
        let word: Vec<Symbol> = match direction {
            Direction::LeftToRight => w.to_vec(),
            Direction::RightToLeft => w.iter().rev().copied().collect(),
        };
        let w = &word[..];
        awk.start = awk.add_state();
        let mut cur = awk.start;
        // Frontier of function edges eligible for expansion in the next round.
        let mut frontier: Vec<EdgeId> = Vec::new();
        for &sym in w {
            let next = awk.add_state();
            let e = awk.add_edge(cur, next, Some(sym));
            if compiled.invocable(sym) {
                frontier.push(e);
            }
            cur = next;
        }
        awk.finish = cur;

        for depth in 1..=k {
            let mut next_frontier = Vec::new();
            for eid in std::mem::take(&mut frontier) {
                awk.expand_edge(eid, depth, compiled, limits, &mut next_frontier)?;
            }
            frontier = next_frontier;
        }
        Ok(awk)
    }

    /// Expands one function edge into a fork + output-type copy.
    fn expand_edge(
        &mut self,
        eid: EdgeId,
        depth: u32,
        compiled: &Compiled,
        limits: &AwkLimits,
        next_frontier: &mut Vec<EdgeId>,
    ) -> Result<(), AwkTooLarge> {
        let Edge { from, to, label } = self.edges[eid as usize];
        let func = label.expect("function edges are labeled");
        let sig = compiled
            .sig(func)
            .expect("invocable symbols carry signatures");

        // Reroute: from ──ε──▶ fork; fork gets the old edge as its skip.
        let fork = self.add_state();
        // Rewrite the original edge in place to originate from the fork.
        self.edges[eid as usize].from = fork;
        let pos = self.out[from as usize]
            .iter()
            .position(|&e| e == eid)
            .expect("edge listed at its source");
        self.out[from as usize].remove(pos);
        self.out[fork as usize].push(eid);
        self.add_edge(from, fork, None);

        // Instantiate the Glushkov automaton of the output type (reversed
        // when the automaton processes right-to-left).
        let output = match self.direction {
            Direction::LeftToRight => sig.output.clone(),
            Direction::RightToLeft => sig.output.reversed(),
        };
        let g = Glushkov::new(&output, self.num_symbols);
        let nfa = g.to_nfa();
        let base = self.kinds.len() as StateId;
        if self.kinds.len() + nfa.num_states() > limits.max_states {
            return Err(AwkTooLarge {
                max_states: limits.max_states,
            });
        }
        for _ in 0..nfa.num_states() {
            self.add_state();
        }
        for (s, trans) in nfa.trans.iter().enumerate() {
            for &(sym, t) in trans {
                let e = self.add_edge(base + s as StateId, base + t, Some(sym));
                if depth < self.k && compiled.invocable(sym) {
                    next_frontier.push(e);
                }
            }
        }
        let invoke = self.add_edge(fork, base + nfa.start, None);
        for &f in &nfa.finals {
            self.add_edge(base + f, to, None);
        }
        self.kinds[fork as usize] = StateKind::Fork {
            func,
            skip: eid,
            invoke,
            depth,
        };
        Ok(())
    }

    /// All words acceptable by the automaton up to a length bound — test
    /// helper enumerating the rewriting language by BFS.
    pub fn enumerate_words(&self, max_len: usize, max_words: usize) -> Vec<Vec<Symbol>> {
        let mut out = Vec::new();
        // (state, word so far)
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((self.start, Vec::new()));
        let mut guard = 0usize;
        while let Some((s, word)) = queue.pop_front() {
            guard += 1;
            if guard > 200_000 || out.len() >= max_words {
                break;
            }
            if s == self.finish && !out.contains(&word) {
                out.push(word.clone());
            }
            for &eid in self.out_edges(s) {
                let e = self.edge(eid);
                match e.label {
                    None => queue.push_back((e.to, word.clone())),
                    Some(sym) if word.len() < max_len => {
                        let mut w2 = word.clone();
                        w2.push(sym);
                        queue.push_back((e.to, w2));
                    }
                    _ => {}
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_schema::{Compiled, NoOracle, Schema};

    pub(crate) fn paper_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    fn word(c: &Compiled, names: &[&str]) -> Vec<Symbol> {
        names
            .iter()
            .map(|n| c.alphabet().lookup(n).expect("declared"))
            .collect()
    }

    #[test]
    fn figure4_structure() {
        // A_w^1 for w = title.date.Get_Temp.TimeOut (Fig. 4): two forks,
        // one for each function occurrence.
        let c = paper_compiled();
        let w = word(&c, &["title", "date", "Get_Temp", "TimeOut"]);
        let awk = Awk::build(&w, &c, 1, &AwkLimits::default()).unwrap();
        assert_eq!(awk.num_forks(), 2);
        // Forks carry the right function symbols.
        let forks: Vec<Symbol> = (0..awk.num_states() as StateId)
            .filter_map(|s| match awk.kind(s) {
                StateKind::Fork { func, .. } => Some(func),
                StateKind::Regular => None,
            })
            .collect();
        assert!(forks.contains(&c.alphabet().lookup("Get_Temp").unwrap()));
        assert!(forks.contains(&c.alphabet().lookup("TimeOut").unwrap()));
    }

    #[test]
    fn language_of_awk1_matches_paper() {
        let c = paper_compiled();
        let w = word(&c, &["title", "date", "Get_Temp", "TimeOut"]);
        let awk = Awk::build(&w, &c, 1, &AwkLimits::default()).unwrap();
        let words = awk.enumerate_words(7, 5_000);
        let has = |names: &[&str]| words.contains(&word(&c, names));
        // Untouched word.
        assert!(has(&["title", "date", "Get_Temp", "TimeOut"]));
        // Invoke Get_Temp only (Fig. 2.b).
        assert!(has(&["title", "date", "temp", "TimeOut"]));
        // Invoke both; TimeOut returns two exhibits.
        assert!(has(&["title", "date", "temp", "exhibit", "exhibit"]));
        // Invoke both; TimeOut returns a performance.
        assert!(has(&["title", "date", "temp", "performance"]));
        // Invoke TimeOut with empty answer.
        assert!(has(&["title", "date", "Get_Temp"]));
        // Words not in the 1-depth rewriting language.
        assert!(!has(&["title", "date"]));
        assert!(!has(&["title", "date", "temp", "temp"]));
    }

    #[test]
    fn depth_limits_expansion() {
        // Get_Exhibits returns Get_Exhibit* (Sec. 3, infinite search space
        // example); each extra k adds one expansion layer.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "Get_Exhibits|exhibit*")
                .element("exhibit", "")
                .function("Get_Exhibits", "", "Get_Exhibit*")
                .function("Get_Exhibit", "", "exhibit")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let w = vec![c.alphabet().lookup("Get_Exhibits").unwrap()];
        let a1 = Awk::build(&w, &c, 1, &AwkLimits::default()).unwrap();
        let a2 = Awk::build(&w, &c, 2, &AwkLimits::default()).unwrap();
        let a3 = Awk::build(&w, &c, 3, &AwkLimits::default()).unwrap();
        assert_eq!(a1.num_forks(), 1); // only Get_Exhibits forked
        assert!(a2.num_forks() > a1.num_forks()); // returned Get_Exhibit forked
        assert!(a3.num_states() >= a2.num_states());
        let exhibit = c.alphabet().lookup("exhibit").unwrap();
        let ge = c.alphabet().lookup("Get_Exhibit").unwrap();
        let w2 = a2.enumerate_words(3, 10_000);
        // Depth 2: Get_Exhibits → Get_Exhibit.Get_Exhibit → invoke one of them.
        assert!(w2.contains(&vec![exhibit, ge]));
        assert!(w2.contains(&vec![exhibit]));
        let w1 = a1.enumerate_words(3, 10_000);
        assert!(!w1.contains(&vec![exhibit])); // needs two levels
    }

    #[test]
    fn non_invocable_functions_not_forked() {
        let c = Compiled::new(
            Schema::builder()
                .element("r", "f|a")
                .data_element("a")
                .non_invocable_function("f", "", "a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let w = vec![c.alphabet().lookup("f").unwrap()];
        let awk = Awk::build(&w, &c, 3, &AwkLimits::default()).unwrap();
        assert_eq!(awk.num_forks(), 0);
        assert_eq!(awk.num_states(), 2);
    }

    #[test]
    fn k_zero_is_just_the_word() {
        let c = paper_compiled();
        let w = word(&c, &["title", "date", "Get_Temp", "TimeOut"]);
        let awk = Awk::build(&w, &c, 0, &AwkLimits::default()).unwrap();
        assert_eq!(awk.num_forks(), 0);
        assert_eq!(awk.num_states(), 5);
        assert_eq!(awk.enumerate_words(5, 100), vec![w]);
    }

    #[test]
    fn state_limit_enforced() {
        let c = Compiled::new(
            Schema::builder()
                .element("r", "f")
                .data_element("a")
                .function("f", "", "f.f|a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let w = vec![c.alphabet().lookup("f").unwrap()];
        let limits = AwkLimits { max_states: 50 };
        assert!(Awk::build(&w, &c, 12, &limits).is_err());
    }
}
