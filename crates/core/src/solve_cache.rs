//! Cross-request solver cache.
//!
//! Section 7 of the paper makes per-node rewriting tractable (depth
//! bound `k`, lazy product construction), but a long-running peer still
//! repays the full Glushkov → Thompson → determinize → product →
//! fixpoint pipeline on every request unless someone remembers the
//! results. [`SolveCache`] is that memory: a capacity-bounded,
//! thread-safe map shared by every [`crate::rewrite::Rewriter`] a peer
//! creates, caching
//!
//! * compiled complement DFAs (safe games) and target DFAs (possible
//!   games), per schema and target slot;
//! * fully solved [`SafeGame`]/[`PossibleGame`] values — the verdict,
//!   the marked/viable sets the executor walks, and (memoized on first
//!   request) the extracted [`Decision`] plan — per children word.
//!
//! # Keys
//!
//! Entries are keyed by **full structural keys**, not hashes of them:
//! `(schema fingerprint, target slot, children word, k, build mode,
//! state limit)`. The [`Compiled::fingerprint`] component is itself a
//! deterministic structural hash of the schema, so one cache safely
//! serves several compiled schemas (a peer's own vocabulary and the
//! exchange schemas it ships documents under) without aliasing. The
//! fast [`axml_support::hash::FxHasher`] only routes keys to buckets;
//! equality always compares the complete key, so a hit can never hand
//! back an artifact built for different inputs — warm results are
//! bit-identical to cold ones by construction.
//!
//! # Eviction
//!
//! Bounded LRU with a monotone touch tick: every hit or insert stamps
//! the entry with the next tick, and inserting into a full cache evicts
//! the entry with the smallest tick. Ticks are totally ordered, so
//! eviction is deterministic given the same operation sequence.
//!
//! # Concurrency
//!
//! One [`axml_support::sync::Mutex`] guards the map; it is held only
//! for lookups and inserts, never while compiling a DFA or solving a
//! game. Two threads missing the same key may both build the artifact —
//! construction is deterministic, the first insert wins, and both
//! share the winner afterwards. This trades a little duplicated work
//! for never serializing solver work across enforcement threads.

use crate::possible::PossibleGame;
use crate::safe::{BuildMode, Decision, SafeGame};
use axml_automata::{Dfa, Symbol};
use axml_obs::{Counter, Gauge, Histogram, Registry, LATENCY_NS_BOUNDS};
use axml_support::hash::FxHashMap;
use axml_support::sync::Mutex;
use std::sync::{Arc, OnceLock};

#[allow(unused_imports)] // doc links
use axml_schema::Compiled;

/// Default entry bound for caches created without an explicit capacity.
pub const DEFAULT_CAPACITY: usize = 512;

/// Which target regex of the schema a cached artifact derives from.
/// Together with the schema fingerprint this pins down the regex itself,
/// so keys never need to serialize the expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetSlot {
    /// The content model of an element symbol.
    Content(Symbol),
    /// `τ_in` of a function-like symbol.
    Input(Symbol),
    /// `τ_out` of a function-like symbol.
    Output(Symbol),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    /// Completed + complemented target DFA (safe games).
    Comp { schema: u64, slot: TargetSlot },
    /// Determinized target DFA (possible games).
    Target { schema: u64, slot: TargetSlot },
    /// A solved safe game for one children word.
    Safe {
        schema: u64,
        slot: TargetSlot,
        word: Box<[Symbol]>,
        k: u32,
        mode: BuildMode,
        max_states: usize,
    },
    /// A solved possible game for one children word.
    Possible {
        schema: u64,
        slot: TargetSlot,
        word: Box<[Symbol]>,
        k: u32,
        max_states: usize,
    },
}

/// A solved, immutable [`SafeGame`] plus its lazily extracted plan.
/// Dereferences to the game, so call sites read like before.
#[derive(Debug)]
pub struct SolvedSafe {
    game: SafeGame,
    plan: OnceLock<Option<Vec<Decision>>>,
}

impl SolvedSafe {
    /// Wraps a freshly solved game.
    pub fn new(game: SafeGame) -> Self {
        SolvedSafe {
            game,
            plan: OnceLock::new(),
        }
    }

    /// The root strategy plan, extracted once and memoized — repeated
    /// callers (the CLI `plan` command, schema-level checks) share one
    /// extraction per cached game.
    pub fn plan_cached(&self) -> Option<&[Decision]> {
        self.plan.get_or_init(|| self.game.plan()).as_deref()
    }
}

impl std::ops::Deref for SolvedSafe {
    type Target = SafeGame;
    fn deref(&self) -> &SafeGame {
        &self.game
    }
}

/// A solved, immutable [`PossibleGame`] plus its lazily extracted plan.
#[derive(Debug)]
pub struct SolvedPossible {
    game: PossibleGame,
    plan: OnceLock<Option<Vec<Decision>>>,
}

impl SolvedPossible {
    /// Wraps a freshly solved game.
    pub fn new(game: PossibleGame) -> Self {
        SolvedPossible {
            game,
            plan: OnceLock::new(),
        }
    }

    /// The root strategy plan, extracted once and memoized.
    pub fn plan_cached(&self) -> Option<&[Decision]> {
        self.plan.get_or_init(|| self.game.plan()).as_deref()
    }
}

impl std::ops::Deref for SolvedPossible {
    type Target = PossibleGame;
    fn deref(&self) -> &PossibleGame {
        &self.game
    }
}

#[derive(Clone)]
enum Value {
    Dfa(Arc<Dfa>),
    Safe(Arc<SolvedSafe>),
    Possible(Arc<SolvedPossible>),
}

struct Entry {
    value: Value,
    tick: u64,
}

#[derive(Default)]
struct Table {
    map: FxHashMap<Key, Entry>,
    tick: u64,
}

struct CacheState {
    table: Mutex<Table>,
    capacity: usize,
    lookups: Counter,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
    entries: Gauge,
    compile_ns: Histogram,
    solve_ns: Histogram,
}

/// A shared, thread-safe, capacity-bounded solver cache. Cloning is
/// cheap (one `Arc`); clones address the same entries.
#[derive(Clone)]
pub struct SolveCache {
    state: Arc<CacheState>,
}

impl std::fmt::Debug for SolveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveCache")
            .field("capacity", &self.state.capacity)
            .field("entries", &self.len())
            .finish()
    }
}

impl SolveCache {
    /// A cache bounded to `capacity` entries, publishing `solve_cache.*`
    /// instruments into the process-wide [`axml_obs::global`] registry.
    /// A zero capacity is promoted to one entry.
    pub fn new(capacity: usize) -> Self {
        Self::with_registry(capacity, &axml_obs::global())
    }

    /// Like [`SolveCache::new`], but publishing into the given registry
    /// (tests; or a private registry to keep metrics out of `stats`).
    pub fn with_registry(capacity: usize, registry: &Registry) -> Self {
        let capacity = capacity.max(1);
        let entries = registry.gauge("solve_cache.entries");
        entries.set(0);
        SolveCache {
            state: Arc::new(CacheState {
                table: Mutex::new(Table::default()),
                capacity,
                lookups: registry.counter("solve_cache.lookups_total"),
                hits: registry.counter("solve_cache.hits_total"),
                misses: registry.counter("solve_cache.misses_total"),
                insertions: registry.counter("solve_cache.insertions_total"),
                evictions: registry.counter("solve_cache.evictions_total"),
                entries,
                compile_ns: registry.histogram("solve_cache.compile_ns", LATENCY_NS_BOUNDS),
                solve_ns: registry.histogram("solve_cache.solve_ns", LATENCY_NS_BOUNDS),
            }),
        }
    }

    /// Like [`SolveCache::new`], but instruments go to a throwaway
    /// registry — the default for rewriters that were not handed a
    /// shared cache, so their private churn never pollutes daemon stats.
    pub fn unpublished(capacity: usize) -> Self {
        Self::with_registry(capacity, &Registry::new())
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.state.capacity
    }

    /// Current number of cached entries (all kinds).
    pub fn len(&self) -> usize {
        self.state.table.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (capacity and counters are kept).
    pub fn clear(&self) {
        let mut table = self.state.table.lock();
        table.map.clear();
        self.state.entries.set(0);
    }

    fn lookup(&self, key: &Key) -> Option<Value> {
        let mut table = self.state.table.lock();
        table.tick += 1;
        let tick = table.tick;
        let found = table.map.get_mut(key).map(|e| {
            e.tick = tick;
            e.value.clone()
        });
        self.state.lookups.inc();
        match &found {
            Some(_) => self.state.hits.inc(),
            None => self.state.misses.inc(),
        }
        found
    }

    /// Inserts `value` unless the key was raced in meanwhile; returns
    /// the cached value either way, evicting the least-recently-touched
    /// entry when full.
    fn insert(&self, key: Key, value: Value) -> Value {
        let mut table = self.state.table.lock();
        table.tick += 1;
        let tick = table.tick;
        if let Some(existing) = table.map.get_mut(&key) {
            // Lost a build race: share the first-inserted artifact so
            // every thread agrees on one instance.
            existing.tick = tick;
            return existing.value.clone();
        }
        if table.map.len() >= self.state.capacity {
            // Deterministic LRU: ticks are unique, so the minimum is.
            if let Some(victim) = table
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                table.map.remove(&victim);
                self.state.evictions.inc();
            }
        }
        table.map.insert(key, Entry { value: value.clone(), tick });
        self.state.insertions.inc();
        self.state.entries.set(table.map.len() as i64);
        value
    }

    /// The completed-and-complemented target DFA for `slot` of the
    /// schema fingerprinted `schema`, building (outside the lock) and
    /// caching it on first use.
    pub fn comp_dfa(&self, schema: u64, slot: TargetSlot, build: impl FnOnce() -> Dfa) -> Arc<Dfa> {
        self.dfa(Key::Comp { schema, slot }, build)
    }

    /// The determinized target DFA for `slot` (possible-game side).
    pub fn target_dfa(
        &self,
        schema: u64,
        slot: TargetSlot,
        build: impl FnOnce() -> Dfa,
    ) -> Arc<Dfa> {
        self.dfa(Key::Target { schema, slot }, build)
    }

    fn dfa(&self, key: Key, build: impl FnOnce() -> Dfa) -> Arc<Dfa> {
        if let Some(Value::Dfa(d)) = self.lookup(&key) {
            return d;
        }
        let started = std::time::Instant::now();
        let built = Arc::new(build());
        self.state
            .compile_ns
            .observe(started.elapsed().as_nanos() as u64);
        match self.insert(key, Value::Dfa(built)) {
            Value::Dfa(d) => d,
            _ => unreachable!("DFA keys only ever hold DFA values"),
        }
    }

    /// The solved safe game for `(schema, slot, word, k, mode,
    /// max_states)`, solving and caching on first use. `build` errors
    /// (e.g. `A_w^k` growing past its limits) are returned uncached, so
    /// a later call with a higher limit is not poisoned.
    #[allow(clippy::too_many_arguments)]
    pub fn safe_game<E>(
        &self,
        schema: u64,
        slot: TargetSlot,
        word: &[Symbol],
        k: u32,
        mode: BuildMode,
        max_states: usize,
        build: impl FnOnce() -> Result<SafeGame, E>,
    ) -> Result<Arc<SolvedSafe>, E> {
        let key = Key::Safe {
            schema,
            slot,
            word: word.into(),
            k,
            mode,
            max_states,
        };
        if let Some(Value::Safe(g)) = self.lookup(&key) {
            return Ok(g);
        }
        let started = std::time::Instant::now();
        let solved = Arc::new(SolvedSafe::new(build()?));
        self.state
            .solve_ns
            .observe(started.elapsed().as_nanos() as u64);
        match self.insert(key, Value::Safe(solved)) {
            Value::Safe(g) => Ok(g),
            _ => unreachable!("safe keys only ever hold safe games"),
        }
    }

    /// The solved possible game for `(schema, slot, word, k,
    /// max_states)`, solving and caching on first use.
    pub fn possible_game<E>(
        &self,
        schema: u64,
        slot: TargetSlot,
        word: &[Symbol],
        k: u32,
        max_states: usize,
        build: impl FnOnce() -> Result<PossibleGame, E>,
    ) -> Result<Arc<SolvedPossible>, E> {
        let key = Key::Possible {
            schema,
            slot,
            word: word.into(),
            k,
            max_states,
        };
        if let Some(Value::Possible(g)) = self.lookup(&key) {
            return Ok(g);
        }
        let started = std::time::Instant::now();
        let solved = Arc::new(SolvedPossible::new(build()?));
        self.state
            .solve_ns
            .observe(started.elapsed().as_nanos() as u64);
        match self.insert(key, Value::Possible(solved)) {
            Value::Possible(g) => Ok(g),
            _ => unreachable!("possible keys only ever hold possible games"),
        }
    }

    /// Every cached entry with its full structural key, ordered from
    /// least- to most-recently touched.
    ///
    /// This is the snapshot surface for `axml-store`: the order is the
    /// LRU order, so a consumer that replays entries through
    /// [`SolveCache::preload`] in sequence reconstructs both the
    /// contents *and* the relative eviction order of this cache.
    /// Values are shared (`Arc`), so exporting copies no solved game.
    pub fn export_entries(&self) -> Vec<CacheEntry> {
        let table = self.state.table.lock();
        let mut entries: Vec<(&Key, &Entry)> = table.map.iter().collect();
        entries.sort_by_key(|(_, e)| e.tick);
        entries
            .into_iter()
            .map(|(key, entry)| match (key, &entry.value) {
                (&Key::Comp { schema, slot }, Value::Dfa(dfa)) => CacheEntry::CompDfa {
                    schema,
                    slot,
                    dfa: Arc::clone(dfa),
                },
                (&Key::Target { schema, slot }, Value::Dfa(dfa)) => CacheEntry::TargetDfa {
                    schema,
                    slot,
                    dfa: Arc::clone(dfa),
                },
                (
                    &Key::Safe {
                        schema,
                        slot,
                        ref word,
                        k,
                        mode,
                        max_states,
                    },
                    Value::Safe(game),
                ) => CacheEntry::SafeGame {
                    schema,
                    slot,
                    word: word.clone(),
                    k,
                    mode,
                    max_states,
                    game: Arc::clone(game),
                },
                (
                    &Key::Possible {
                        schema,
                        slot,
                        ref word,
                        k,
                        max_states,
                    },
                    Value::Possible(game),
                ) => CacheEntry::PossibleGame {
                    schema,
                    slot,
                    word: word.clone(),
                    k,
                    max_states,
                    game: Arc::clone(game),
                },
                _ => unreachable!("cache keys always hold their own value kind"),
            })
            .collect()
    }

    /// Seeds the cache with entries exported earlier (typically decoded
    /// from a snapshot). Returns how many were actually installed.
    ///
    /// Insertions follow the normal path — they count as
    /// `solve_cache.insertions_total`, respect the capacity bound
    /// (evicting LRU entries if the snapshot is larger than this
    /// cache), and lose gracefully to already-present keys. Lookup
    /// counters are untouched: preloading is not traffic, so hit-rate
    /// metrics still measure only real requests.
    pub fn preload(&self, entries: impl IntoIterator<Item = CacheEntry>) -> usize {
        let mut installed = 0;
        for entry in entries {
            let (key, value) = match entry {
                CacheEntry::CompDfa { schema, slot, dfa } => {
                    (Key::Comp { schema, slot }, Value::Dfa(dfa))
                }
                CacheEntry::TargetDfa { schema, slot, dfa } => {
                    (Key::Target { schema, slot }, Value::Dfa(dfa))
                }
                CacheEntry::SafeGame {
                    schema,
                    slot,
                    word,
                    k,
                    mode,
                    max_states,
                    game,
                } => (
                    Key::Safe {
                        schema,
                        slot,
                        word,
                        k,
                        mode,
                        max_states,
                    },
                    Value::Safe(game),
                ),
                CacheEntry::PossibleGame {
                    schema,
                    slot,
                    word,
                    k,
                    max_states,
                    game,
                } => (
                    Key::Possible {
                        schema,
                        slot,
                        word,
                        k,
                        max_states,
                    },
                    Value::Possible(game),
                ),
            };
            self.insert(key, value);
            installed += 1;
        }
        installed
    }

    /// Point-in-time counter values, read directly off this cache's
    /// instruments (they may be shared with a registry snapshot).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.state.lookups.get(),
            hits: self.state.hits.get(),
            misses: self.state.misses.get(),
            insertions: self.state.insertions.get(),
            evictions: self.state.evictions.get(),
            entries: self.len(),
            capacity: self.state.capacity,
        }
    }
}

impl Default for SolveCache {
    fn default() -> Self {
        SolveCache::new(DEFAULT_CAPACITY)
    }
}

/// One exported cache entry: the full structural key (the same
/// components [`SolveCache::safe_game`] and friends key by) plus the
/// shared value. Produced by [`SolveCache::export_entries`], consumed
/// by [`SolveCache::preload`]; `axml-store` serializes these.
#[derive(Debug, Clone)]
pub enum CacheEntry {
    /// Completed + complemented target DFA (safe-game side).
    CompDfa {
        /// [`Compiled::fingerprint`] of the owning schema.
        schema: u64,
        /// Which target regex of the schema the DFA derives from.
        slot: TargetSlot,
        /// The complement DFA.
        dfa: Arc<Dfa>,
    },
    /// Determinized target DFA (possible-game side).
    TargetDfa {
        /// [`Compiled::fingerprint`] of the owning schema.
        schema: u64,
        /// Which target regex of the schema the DFA derives from.
        slot: TargetSlot,
        /// The determinized target DFA.
        dfa: Arc<Dfa>,
    },
    /// A solved safe game for one children word.
    SafeGame {
        /// [`Compiled::fingerprint`] of the owning schema.
        schema: u64,
        /// Which target regex the game plays against.
        slot: TargetSlot,
        /// The children word the game was built for.
        word: Box<[Symbol]>,
        /// Rewriting depth bound.
        k: u32,
        /// Eager or lazy product construction.
        mode: BuildMode,
        /// The `A_w^k` state limit in force when the game was built.
        max_states: usize,
        /// The solved game.
        game: Arc<SolvedSafe>,
    },
    /// A solved possible game for one children word.
    PossibleGame {
        /// [`Compiled::fingerprint`] of the owning schema.
        schema: u64,
        /// Which target regex the game plays against.
        slot: TargetSlot,
        /// The children word the game was built for.
        word: Box<[Symbol]>,
        /// Rewriting depth bound.
        k: u32,
        /// The `A_w^k` state limit in force when the game was built.
        max_states: usize,
        /// The solved game.
        game: Arc<SolvedPossible>,
    },
}

/// Point-in-time accounting of a [`SolveCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups (`hits + misses` once the cache is quiescent).
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries actually inserted (misses minus lost build races).
    pub insertions: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Current entry count.
    pub entries: usize,
    /// Configured entry bound.
    pub capacity: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_automata::{Nfa, Regex};

    fn tiny_dfa(seed: usize) -> Dfa {
        let mut ab = axml_automata::Alphabet::new();
        let pattern = format!("a{}", "*".repeat(seed % 2));
        let re = Regex::parse(&pattern, &mut ab).unwrap();
        Dfa::determinize(&Nfa::thompson(&re, ab.len()))
    }

    #[test]
    fn dfa_hits_share_one_arc() {
        let cache = SolveCache::unpublished(8);
        let a = cache.comp_dfa(1, TargetSlot::Content(0), || tiny_dfa(0));
        let b = cache.comp_dfa(1, TargetSlot::Content(0), || panic!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn comp_and_target_do_not_alias() {
        let cache = SolveCache::unpublished(8);
        let _ = cache.comp_dfa(1, TargetSlot::Content(0), || tiny_dfa(0));
        // Same schema and slot, different artifact kind: must rebuild.
        let mut built = false;
        let _ = cache.target_dfa(1, TargetSlot::Content(0), || {
            built = true;
            tiny_dfa(0)
        });
        assert!(built);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn schemas_do_not_alias() {
        let cache = SolveCache::unpublished(8);
        let _ = cache.comp_dfa(1, TargetSlot::Content(0), || tiny_dfa(0));
        let mut built = false;
        let _ = cache.comp_dfa(2, TargetSlot::Content(0), || {
            built = true;
            tiny_dfa(1)
        });
        assert!(built, "different fingerprints must not share entries");
    }

    #[test]
    fn capacity_bound_holds_with_lru_eviction() {
        let cache = SolveCache::unpublished(2);
        let _ = cache.comp_dfa(0, TargetSlot::Content(0), || tiny_dfa(0));
        let _ = cache.comp_dfa(0, TargetSlot::Content(1), || tiny_dfa(1));
        // Touch slot 0 so slot 1 is the LRU victim.
        let _ = cache.comp_dfa(0, TargetSlot::Content(0), || panic!("hit"));
        let _ = cache.comp_dfa(0, TargetSlot::Content(2), || tiny_dfa(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // Slot 0 survived, slot 1 was evicted.
        let _ = cache.comp_dfa(0, TargetSlot::Content(0), || panic!("hit"));
        let mut rebuilt = false;
        let _ = cache.comp_dfa(0, TargetSlot::Content(1), || {
            rebuilt = true;
            tiny_dfa(1)
        });
        assert!(rebuilt);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let cache = SolveCache::unpublished(8);
        let fail: Result<Arc<SolvedSafe>, &str> = cache.safe_game(
            0,
            TargetSlot::Content(0),
            &[],
            1,
            BuildMode::Lazy,
            10,
            || Err("too large"),
        );
        assert!(fail.is_err());
        assert_eq!(cache.len(), 0);
    }
}
