//! Streaming bounded-memory schema enforcement.
//!
//! The DOM enforcement path ([`crate::rewrite::enforce_with`]) parses the
//! whole document, decodes it into an [`ITree`], rewrites, and serializes —
//! four full-document materializations. This module drives the same
//! three-stage rewrite incrementally off the pull parser
//! ([`axml_xml::Reader`]) instead:
//!
//! * **Streaming copy.** Each open element carries a frame with its
//!   content-model DFA state (exactly like
//!   [`axml_schema::StreamValidator`]). Conforming extensional regions are
//!   re-emitted to the output sink as they are parsed — in the same compact
//!   normal form `ITree::to_xml` produces — and never buffered. Borrowed
//!   text spans whose escaped form equals the raw input span are written
//!   zero-copy and counted as `bytes_copied`; everything reconstructed
//!   (tags, re-escaped runs, spliced rewrites) counts as `bytes_rewritten`.
//!   The identity `bytes_copied + bytes_rewritten == bytes_out` always
//!   holds.
//! * **Detection-based materialization.** When an `int:fun` child appears
//!   under an element `P`, `P` enters *tail mode*: the remaining children
//!   are materialized into DOM form (with the exact normalization of
//!   [`axml_schema::forest_from_nodes`]) while the already-emitted prefix
//!   stays streamed. At `P`'s close the suffix is rewritten with
//!   [`Rewriter::rewrite_suffix`]: the game is built over `P`'s *full*
//!   children word (prefix symbols included, so it is the same `A_w^k`
//!   the DOM path solves, warm in the shared [`SolveCache`]), the prefix
//!   is advanced through forced letter moves, and only the tail items are
//!   executed. If [`Compiled::admits_functions`] says `P`'s content model
//!   admits function symbols and the element is already valid as parsed,
//!   the tail is spliced verbatim without games or invocations — mirroring
//!   the DOM validate-short-circuit. Inside wildcard (`Any`) content, only
//!   the `int:fun` subtree itself is materialized and re-serialized; no
//!   game is played, matching the DOM rewriter's verbatim copy.
//! * **Universal fallback.** Any anomaly — parse error, unknown label, a
//!   dead DFA move, malformed intensional markup, a failing suffix
//!   rewrite — abandons streaming and re-runs the DOM pipeline on the same
//!   input, so output bytes, typed errors, and leftmost-error-wins order
//!   are identical to [`enforce_dom`] by construction. A prefix that dies
//!   in the DFA is function-free, so the DOM rewriter could not have fixed
//!   it either (rewriting only changes the word at function positions);
//!   the fallback exists to reproduce the DOM error verbatim. Note that
//!   invocations performed before the anomaly are *not* undone: a stateful
//!   invoker may see calls repeated by the fallback run.
//!
//! Memory: the engine holds the frame stack of open elements (with one
//! recorded child-symbol word per open element) plus at most one in-flight
//! materialized region. [`StreamReport::peak_buffer_bytes`] reports the
//! largest raw-input span buffered for materialization; per-frame word
//! recording is O(children of open elements) and is not included in that
//! figure.

use crate::invoke::Invoker;
use crate::rewrite::{
    enforce_possible_with, enforce_with, RewriteError, RewriteReport, Rewriter, Strategy,
};
use crate::solve_cache::{SolveCache, TargetSlot, DEFAULT_CAPACITY};
use axml_automata::{Dfa, Regex, Symbol, NO_STATE};
use axml_schema::{forest_from_nodes, validate, words_of, Compiled, CompiledContent, ITree, INT_NS};
use axml_xml::{
    element_to_string, escape_text, parse_document, Attribute, Element, Event, Node, QName, Reader,
    StreamWriter, WriteOptions,
};
use std::borrow::Cow;
use std::io;

/// Options for streaming enforcement.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Depth bound `k` of the rewriting (Def. 7).
    pub k: u32,
    /// Safe or possible rewriting.
    pub strategy: Strategy,
    /// Worker threads for the DOM fallback's parallel subtree pass
    /// (the streaming path itself is single-threaded).
    pub workers: usize,
    /// Shared solver cache; `None` uses a private unpublished cache.
    pub cache: Option<SolveCache>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            k: 2,
            strategy: Strategy::Safe,
            workers: 1,
            cache: None,
        }
    }
}

/// Statistics of one streaming enforcement run.
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Total bytes emitted.
    pub bytes_out: u64,
    /// Bytes written zero-copy from the input (borrowed text spans whose
    /// escaped form equals the raw span).
    pub bytes_copied: u64,
    /// Bytes reconstructed: tags, re-escaped text, spliced rewrites, and
    /// the whole output on fallback. `bytes_copied + bytes_rewritten ==
    /// bytes_out` always holds.
    pub bytes_rewritten: u64,
    /// Number of subtree regions materialized into DOM form.
    pub subtrees_materialized: u64,
    /// Peak raw-input bytes buffered for an in-flight materialized region.
    pub peak_buffer_bytes: u64,
    /// Whether the engine abandoned streaming and re-ran the DOM pipeline.
    pub fell_back: bool,
    /// Invocation and game statistics of the rewriting work performed.
    pub rewrite: RewriteReport,
}

/// Why the engine stopped short of a streamed result.
enum Stop {
    /// Abandon streaming and re-run the DOM pipeline (parity fallback).
    Fallback(String),
    /// The output sink failed; no fallback, surface the error.
    Io(io::Error),
}

impl From<io::Error> for Stop {
    fn from(e: io::Error) -> Self {
        Stop::Io(e)
    }
}

/// An invoker that may not exist yet: purely extensional documents never
/// pay for constructing one.
enum Inv<'x, 'i> {
    Ready(&'x mut dyn Invoker),
    Lazy {
        make: &'x mut dyn FnMut() -> Box<dyn Invoker + Send + 'i>,
        built: Option<Box<dyn Invoker + Send + 'i>>,
    },
}

impl Inv<'_, '_> {
    fn get(&mut self) -> &mut dyn Invoker {
        match self {
            Inv::Ready(i) => &mut **i,
            Inv::Lazy { make, built } => {
                if built.is_none() {
                    *built = Some(make());
                }
                &mut **built.as_mut().expect("just built")
            }
        }
    }
}

/// A pending text run, merged across adjacent text events the way
/// `parse_document` merges adjacent text nodes. Stays borrowed as long as
/// it is a single unescaped span of the input (the zero-copy case).
enum Run<'a> {
    None,
    Borrowed(&'a str),
    Owned(String),
}

impl<'a> Run<'a> {
    fn push(&mut self, t: Cow<'a, str>) {
        *self = match std::mem::replace(self, Run::None) {
            Run::None => match t {
                Cow::Borrowed(s) => Run::Borrowed(s),
                Cow::Owned(s) => Run::Owned(s),
            },
            Run::Borrowed(p) => {
                let mut s = String::with_capacity(p.len() + t.len());
                s.push_str(p);
                s.push_str(&t);
                Run::Owned(s)
            }
            Run::Owned(mut p) => {
                p.push_str(&t);
                Run::Owned(p)
            }
        };
    }

    fn take(&mut self) -> Run<'a> {
        std::mem::replace(self, Run::None)
    }
}

/// Per-open-element state.
enum Kind<'c> {
    /// Regular content model: DFA advanced per child symbol.
    Model {
        sym: Symbol,
        dfa: &'c Dfa,
        state: u32,
        regex: &'c Regex,
    },
    /// Atomic content: text children only.
    Data,
    /// Wildcard content: children stream without validation.
    Any,
}

struct Frame<'c, 'a> {
    label: String,
    kind: Kind<'c>,
    /// Child symbols consumed so far — the streamed prefix word, needed
    /// when a later `int:fun` child forces a suffix rewrite.
    word: Vec<Symbol>,
    run: Run<'a>,
}

enum TailKind {
    /// Remaining children of the owning element (suffix rewrite at close).
    Suffix,
    /// A single `int:fun` subtree inside wildcard content.
    FunRegion,
}

/// An in-flight materialized region, built with `parse_document`'s exact
/// merge rules so `forest_from_nodes` normalizes identically to the DOM
/// path.
struct Tail {
    kind: TailKind,
    start_pos: usize,
    nodes: Vec<Node>,
    open: Vec<Element>,
}

struct Engine<'c, 'a, 'w, 'r> {
    compiled: &'c Compiled,
    reader: Reader<'a>,
    writer: StreamWriter<&'w mut dyn io::Write>,
    stack: Vec<Frame<'c, 'a>>,
    tail: Option<Tail>,
    report: &'r mut StreamReport,
}

impl<'c, 'a> Engine<'c, 'a, '_, '_> {
    fn run(
        &mut self,
        rw: &mut Rewriter<'c>,
        strategy: Strategy,
        inv: &mut Inv<'_, '_>,
    ) -> Result<(), Stop> {
        loop {
            let ev = self
                .reader
                .next_event()
                .map_err(|e| Stop::Fallback(format!("parse error: {e}")))?;
            if self.tail.is_some() {
                self.feed_tail(ev, rw, strategy, inv)?;
                continue;
            }
            match ev {
                Event::StartElement {
                    name,
                    attributes,
                    ns_decls,
                    ..
                } => self.on_start(name, attributes, ns_decls)?,
                Event::EndElement { .. } => self.on_end()?,
                Event::Text(t) => {
                    if let Some(top) = self.stack.last_mut() {
                        top.run.push(t);
                    }
                }
                // Comments and PIs vanish from the normal form but break
                // text-run adjacency, exactly like the DOM builder.
                Event::Comment(_) | Event::Pi { .. } => self.finalize_run()?,
                Event::Eof => break,
            }
        }
        self.report.bytes_out = self.writer.bytes_written();
        Ok(())
    }

    fn on_start(
        &mut self,
        name: QName,
        attributes: Vec<Attribute>,
        ns_decls: Vec<(String, String)>,
    ) -> Result<(), Stop> {
        self.finalize_run()?;
        let is_fun = name.matches(INT_NS, "fun");
        enum Top {
            Root,
            Any,
            Data,
            Model,
        }
        let top = match self.stack.last() {
            None => Top::Root,
            Some(f) => match f.kind {
                Kind::Any => Top::Any,
                Kind::Data => Top::Data,
                Kind::Model { .. } => Top::Model,
            },
        };
        match top {
            Top::Data => {
                let label = &self.stack.last().expect("data frame").label;
                return Err(Stop::Fallback(format!(
                    "'{label}' is atomic but has element children"
                )));
            }
            Top::Root if is_fun => {
                return Err(Stop::Fallback(
                    "intensional function at document root".into(),
                ));
            }
            Top::Any | Top::Model if is_fun => {
                let kind = if matches!(top, Top::Any) {
                    TailKind::FunRegion
                } else {
                    TailKind::Suffix
                };
                self.tail = Some(Tail {
                    kind,
                    start_pos: self.reader.pos(),
                    nodes: Vec::new(),
                    open: vec![Element {
                        name,
                        attributes,
                        ns_decls,
                        children: Vec::new(),
                    }],
                });
                return Ok(());
            }
            _ => {}
        }
        // An ordinary element child: advance the parent's DFA (if any),
        // then open its own frame.
        if let Some(Frame {
            kind: Kind::Model { dfa, state, .. },
            word,
            label,
            ..
        }) = self.stack.last_mut()
        {
            let sym = self.compiled.classify_label(&name.local);
            let next = dfa.next(*state, sym);
            if next == NO_STATE {
                return Err(Stop::Fallback(format!(
                    "unexpected '{}' in content of '{label}'",
                    self.compiled.alphabet().name(sym)
                )));
            }
            *state = next;
            word.push(sym);
        }
        let frame = match top {
            // Wildcard content is copied without classification; unknown
            // labels are fine there, as in the DOM path.
            Top::Any => Frame {
                label: name.local.clone(),
                kind: Kind::Any,
                word: Vec::new(),
                run: Run::None,
            },
            _ => self.open_frame(&name.local)?,
        };
        let n = self.writer.start(&name.local)?;
        self.report.bytes_rewritten += n as u64;
        self.stack.push(frame);
        Ok(())
    }

    fn open_frame(&self, label: &str) -> Result<Frame<'c, 'a>, Stop> {
        let sym = self.compiled.classify_label(label);
        let kind = match self.compiled.content(sym) {
            None => return Err(Stop::Fallback(format!("unknown element '{label}'"))),
            Some(CompiledContent::Data) => Kind::Data,
            Some(CompiledContent::Any) => Kind::Any,
            Some(CompiledContent::Model { regex, dfa }) => Kind::Model {
                sym,
                dfa,
                state: dfa.start,
                regex,
            },
        };
        Ok(Frame {
            label: label.to_owned(),
            kind,
            word: Vec::new(),
            run: Run::None,
        })
    }

    fn on_end(&mut self) -> Result<(), Stop> {
        self.finalize_run()?;
        let frame = self.stack.pop().expect("reader guarantees balanced tags");
        if let Kind::Model { dfa, state, .. } = frame.kind {
            if !dfa.finals[state as usize] {
                return Err(Stop::Fallback(format!(
                    "children of '{}' stop before the content model is satisfied",
                    frame.label
                )));
            }
        }
        let n = self.writer.end(&frame.label)?;
        self.report.bytes_rewritten += n as u64;
        Ok(())
    }

    /// Flushes the pending text run of the top frame: trim, drop when
    /// whitespace-only, otherwise consume a data symbol and emit the
    /// escaped text (zero-copy when the span is borrowed and clean).
    fn finalize_run(&mut self) -> Result<(), Stop> {
        let Some(top) = self.stack.last_mut() else {
            return Ok(());
        };
        let (text, borrowed): (Cow<'a, str>, bool) = match top.run.take() {
            Run::None => return Ok(()),
            Run::Borrowed(s) => (Cow::Borrowed(s), true),
            Run::Owned(s) => (Cow::Owned(s), false),
        };
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Ok(());
        }
        if let Kind::Model { dfa, state, .. } = &mut top.kind {
            let data = self.compiled.data_sym();
            let next = dfa.next(*state, data);
            if next == NO_STATE {
                return Err(Stop::Fallback(format!(
                    "unexpected text in content of '{}'",
                    top.label
                )));
            }
            *state = next;
            top.word.push(data);
        }
        let escaped = escape_text(trimmed);
        let zero_copy = borrowed && matches!(escaped, Cow::Borrowed(_));
        let n = self.writer.raw(&escaped)?;
        let text_len = escaped.len() as u64;
        if zero_copy {
            self.report.bytes_copied += text_len;
        } else {
            self.report.bytes_rewritten += text_len;
        }
        // A lazily-closed `>` may precede the span; it is reconstruction.
        self.report.bytes_rewritten += n as u64 - text_len;
        Ok(())
    }

    fn feed_tail(
        &mut self,
        ev: Event<'a>,
        rw: &mut Rewriter<'c>,
        strategy: Strategy,
        inv: &mut Inv<'_, '_>,
    ) -> Result<(), Stop> {
        let tail = self.tail.as_mut().expect("in tail mode");
        match ev {
            Event::StartElement {
                name,
                attributes,
                ns_decls,
                ..
            } => {
                tail.open.push(Element {
                    name,
                    attributes,
                    ns_decls,
                    children: Vec::new(),
                });
            }
            Event::EndElement { .. } => match tail.open.pop() {
                Some(done) => match tail.open.last_mut() {
                    Some(parent) => parent.children.push(Node::Element(done)),
                    None => {
                        tail.nodes.push(Node::Element(done));
                        if matches!(tail.kind, TailKind::FunRegion) {
                            return self.finish_fun_region();
                        }
                    }
                },
                // The owning element itself closes: rewrite the suffix.
                None => return self.finish_suffix(rw, strategy, inv),
            },
            Event::Text(t) => {
                let list = match tail.open.last_mut() {
                    Some(e) => &mut e.children,
                    None => &mut tail.nodes,
                };
                if let Some(Node::Text(prev)) = list.last_mut() {
                    prev.push_str(&t);
                } else if !t.trim().is_empty() {
                    list.push(Node::Text(t.into_owned()));
                }
            }
            Event::Comment(c) => {
                let list = match tail.open.last_mut() {
                    Some(e) => &mut e.children,
                    None => &mut tail.nodes,
                };
                list.push(Node::Comment(c.to_owned()));
            }
            Event::Pi { target, data } => {
                let list = match tail.open.last_mut() {
                    Some(e) => &mut e.children,
                    None => &mut tail.nodes,
                };
                list.push(Node::Pi {
                    target: target.to_owned(),
                    data: data.to_owned(),
                });
            }
            Event::Eof => {
                return Err(Stop::Fallback(
                    "input ended inside a materialized region".into(),
                ));
            }
        }
        Ok(())
    }

    fn account_region(&mut self, start_pos: usize) {
        self.report.subtrees_materialized += 1;
        let span = self.reader.pos().saturating_sub(start_pos) as u64;
        if span > self.report.peak_buffer_bytes {
            self.report.peak_buffer_bytes = span;
        }
    }

    /// An `int:fun` inside wildcard content: decode just the call subtree
    /// and splice its canonical serialization — the DOM rewriter copies
    /// `Any` content verbatim, no game is played.
    fn finish_fun_region(&mut self) -> Result<(), Stop> {
        let tail = self.tail.take().expect("in tail mode");
        self.account_region(tail.start_pos);
        let Some(Node::Element(e)) = tail.nodes.last() else {
            return Err(Stop::Fallback("empty materialized region".into()));
        };
        let t = ITree::from_xml(e).map_err(Stop::Fallback)?;
        let s = serialize_item(&t);
        let n = self.writer.raw(&s)?;
        self.report.bytes_rewritten += n as u64;
        Ok(())
    }

    /// The owning element of a suffix tail closes: decode the tail,
    /// short-circuit when the element is already valid and its content
    /// model admits functions, otherwise run the suffix rewrite.
    fn finish_suffix(
        &mut self,
        rw: &mut Rewriter<'c>,
        strategy: Strategy,
        inv: &mut Inv<'_, '_>,
    ) -> Result<(), Stop> {
        let tail = self.tail.take().expect("in tail mode");
        self.account_region(tail.start_pos);
        let frame = self.stack.pop().expect("suffix tail has an owner frame");
        let Kind::Model {
            sym,
            dfa,
            state,
            regex,
        } = frame.kind
        else {
            return Err(Stop::Fallback("suffix tail under non-model frame".into()));
        };
        let items = forest_from_nodes(&tail.nodes).map_err(Stop::Fallback)?;
        let tail_word = words_of(&items, self.compiled).expect("words_of is total");
        // Validate-tail-first: when the content model admits function
        // symbols and the element is valid as parsed, splice the tail
        // verbatim — the DOM path would have short-circuited too.
        let mut shortcut = false;
        if self.compiled.admits_functions(sym) {
            let mut st = state;
            let mut alive = true;
            for &s in &tail_word {
                st = dfa.next(st, s);
                if st == NO_STATE {
                    alive = false;
                    break;
                }
            }
            shortcut = alive
                && dfa.finals[st as usize]
                && items.iter().all(|t| validate(t, self.compiled).is_ok());
        }
        let out: Vec<ITree> = if shortcut {
            items
        } else {
            rw.rewrite_suffix(
                &frame.word,
                &items,
                regex,
                TargetSlot::Content(sym),
                &frame.label,
                strategy,
                inv.get(),
                &mut self.report.rewrite,
            )
            .map_err(|e| Stop::Fallback(format!("suffix rewrite failed: {e}")))?
        };
        for t in &out {
            let s = serialize_item(t);
            let n = self.writer.raw(&s)?;
            self.report.bytes_rewritten += n as u64;
        }
        let n = self.writer.end(&frame.label)?;
        self.report.bytes_rewritten += n as u64;
        Ok(())
    }
}

/// Serializes one rewritten item in the compact normal form the DOM path
/// emits (`element_to_string` of `ITree::to_xml`; bare text is escaped).
fn serialize_item(t: &ITree) -> String {
    match t {
        ITree::Text(s) => escape_text(s).into_owned(),
        other => element_to_string(&other.to_xml(), &WriteOptions::compact()),
    }
}

fn run_engine<'c>(
    compiled: &'c Compiled,
    input: &str,
    rw: &mut Rewriter<'c>,
    strategy: Strategy,
    inv: &mut Inv<'_, '_>,
    sink: &mut dyn io::Write,
    report: &mut StreamReport,
) -> Result<(), Stop> {
    let mut eng = Engine {
        compiled,
        reader: Reader::new(input),
        writer: StreamWriter::new(sink),
        stack: Vec::new(),
        tail: None,
        report,
    };
    eng.run(rw, strategy, inv)
}

fn resolve_cache(opts: &StreamOptions) -> SolveCache {
    opts.cache
        .clone()
        .unwrap_or_else(|| SolveCache::unpublished(DEFAULT_CAPACITY))
}

fn publish(report: &StreamReport) {
    let m = axml_obs::global();
    m.counter("enforce.stream.runs").inc();
    m.counter("enforce.stream.bytes_out").add(report.bytes_out);
    m.counter("enforce.stream.bytes_copied").add(report.bytes_copied);
    m.counter("enforce.stream.bytes_rewritten")
        .add(report.bytes_rewritten);
    m.counter("enforce.stream.subtrees_materialized")
        .add(report.subtrees_materialized);
    let fallbacks = m.counter("enforce.stream.fallbacks");
    if report.fell_back {
        fallbacks.inc();
    }
    m.gauge("enforce.stream.peak_buffer_bytes")
        .set(report.peak_buffer_bytes as i64);
}

fn dom_with_cache<'i>(
    compiled: &Compiled,
    input: &str,
    opts: &StreamOptions,
    cache: &SolveCache,
    make_invoker: &mut dyn FnMut() -> Box<dyn Invoker + Send + 'i>,
) -> Result<(String, RewriteReport), RewriteError> {
    let doc = parse_document(input).map_err(|e| RewriteError::Invalid(e.to_string()))?;
    let tree = ITree::from_xml(&doc.root).map_err(RewriteError::Invalid)?;
    let (out, rep) = match opts.strategy {
        Strategy::Safe => enforce_with(compiled, &tree, opts.k, cache, opts.workers, make_invoker)?,
        Strategy::Possible => {
            let mut inv = make_invoker();
            enforce_possible_with(compiled, &tree, opts.k, cache, &mut *inv)?
        }
    };
    Ok((
        element_to_string(&out.to_xml(), &WriteOptions::compact()),
        rep,
    ))
}

/// The DOM reference pipeline: parse → decode → enforce → serialize in the
/// compact normal form. Streaming enforcement is byte-identical to this
/// (and falls back to it on any anomaly); tests, benches, and CI gates
/// compare against it directly.
pub fn enforce_dom<'i>(
    compiled: &Compiled,
    input: &str,
    opts: &StreamOptions,
    make_invoker: &mut dyn FnMut() -> Box<dyn Invoker + Send + 'i>,
) -> Result<(String, RewriteReport), RewriteError> {
    let cache = resolve_cache(opts);
    dom_with_cache(compiled, input, opts, &cache, make_invoker)
}

/// Enforces the schema over the XML text of an intensional document in a
/// single streaming pass, returning the serialized result and a
/// [`StreamReport`].
///
/// Output is byte-identical to [`enforce_dom`] with the same options, and
/// error cases surface the identical typed [`RewriteError`]: the engine
/// re-runs the DOM pipeline on any anomaly (see the module docs; the
/// output buffer makes the fallback invisible to the caller). Use
/// [`Rewriter::rewrite_stream`] to stream into an [`io::Write`] sink
/// without buffering the output.
///
/// `make_invoker` is only called when a rewrite actually needs to invoke —
/// purely extensional documents never construct an invoker (the DOM
/// fallback may call it again; stateful invokers can observe repeated
/// calls, see the module docs).
pub fn enforce_stream<'i>(
    compiled: &Compiled,
    input: &str,
    opts: &StreamOptions,
    make_invoker: &mut dyn FnMut() -> Box<dyn Invoker + Send + 'i>,
) -> Result<(String, StreamReport), RewriteError> {
    let cache = resolve_cache(opts);
    let mut inv = Inv::Lazy {
        make: make_invoker,
        built: None,
    };
    enforce_stream_buffered(compiled, input, opts, &cache, &mut inv)
}

/// Like [`enforce_stream`], but materializing calls through a borrowed
/// [`Invoker`] instead of a factory. The DOM fallback is single-threaded
/// here (the factory form is what allows parallel subtree workers).
pub fn enforce_stream_with(
    compiled: &Compiled,
    input: &str,
    opts: &StreamOptions,
    invoker: &mut dyn Invoker,
) -> Result<(String, StreamReport), RewriteError> {
    let cache = resolve_cache(opts);
    let mut inv = Inv::Ready(invoker);
    enforce_stream_buffered(compiled, input, opts, &cache, &mut inv)
}

/// Like [`enforce_stream_with`], but streaming the enforced output into
/// `sink` instead of buffering it — the convenience wrapper the network
/// layer's chunked shipping path drives, so a document larger than RAM
/// never exists in one allocation on the sender. Fallback semantics are
/// [`Rewriter::rewrite_stream`]'s: a fallback after bytes were written
/// surfaces the divergence error rather than corrupting `sink`.
pub fn enforce_stream_to(
    compiled: &Compiled,
    input: &str,
    opts: &StreamOptions,
    invoker: &mut dyn Invoker,
    sink: &mut dyn io::Write,
) -> Result<StreamReport, RewriteError> {
    let cache = resolve_cache(opts);
    Rewriter::new(compiled)
        .with_k(opts.k)
        .with_cache(&cache)
        .rewrite_stream(input, opts.strategy, invoker, sink)
}

fn enforce_stream_buffered(
    compiled: &Compiled,
    input: &str,
    opts: &StreamOptions,
    cache: &SolveCache,
    inv: &mut Inv<'_, '_>,
) -> Result<(String, StreamReport), RewriteError> {
    let mut report = StreamReport::default();
    let mut buf: Vec<u8> = Vec::new();
    let res = {
        let mut rw = Rewriter::new(compiled).with_k(opts.k).with_cache(cache);
        run_engine(
            compiled,
            input,
            &mut rw,
            opts.strategy,
            inv,
            &mut buf,
            &mut report,
        )
    };
    match res {
        Ok(()) => {
            publish(&report);
            let out = String::from_utf8(buf).expect("serializer emits UTF-8");
            Ok((out, report))
        }
        Err(Stop::Io(e)) => Err(RewriteError::Invalid(format!("output write error: {e}"))),
        Err(Stop::Fallback(_)) => {
            report.fell_back = true;
            report.bytes_copied = 0;
            report.bytes_rewritten = 0;
            report.bytes_out = 0;
            let dom = match inv {
                Inv::Lazy { make, .. } => dom_with_cache(compiled, input, opts, cache, *make),
                Inv::Ready(i) => Rewriter::new(compiled)
                    .with_k(opts.k)
                    .with_cache(cache)
                    .dom_fallback(input, opts.strategy, &mut **i),
            };
            match dom {
                Ok((out, rep)) => {
                    report.bytes_out = out.len() as u64;
                    report.bytes_rewritten = out.len() as u64;
                    report.rewrite = rep;
                    publish(&report);
                    Ok((out, report))
                }
                Err(e) => {
                    publish(&report);
                    Err(e)
                }
            }
        }
    }
}

impl<'c> Rewriter<'c> {
    /// Streams `input` through schema enforcement directly into `sink` —
    /// the bounded-memory path: conforming regions are written as they are
    /// parsed and never buffered.
    ///
    /// Because bytes may already have been written when an anomaly forces
    /// the DOM fallback, parity degrades gracefully rather than silently:
    /// with nothing written yet the fallback output is streamed into
    /// `sink` as usual; otherwise the DOM pipeline is consulted for its
    /// verdict — its typed error is returned (anomalies coincide with DOM
    /// failures; see the module docs), and in the unexpected case where it
    /// succeeds, an error reports the divergence instead of corrupting
    /// `sink`. Callers that need transparent fallback should use
    /// [`enforce_stream`]. On error the sink's contents are unspecified.
    pub fn rewrite_stream(
        &mut self,
        input: &str,
        strategy: Strategy,
        invoker: &mut dyn Invoker,
        sink: &mut dyn io::Write,
    ) -> Result<StreamReport, RewriteError> {
        let compiled = self.compiled();
        let mut report = StreamReport::default();
        let res = {
            let mut inv = Inv::Ready(&mut *invoker);
            run_engine(
                compiled, input, self, strategy, &mut inv, sink, &mut report,
            )
        };
        match res {
            Ok(()) => {
                publish(&report);
                Ok(report)
            }
            Err(Stop::Io(e)) => Err(RewriteError::Invalid(format!("output write error: {e}"))),
            Err(Stop::Fallback(reason)) => {
                report.fell_back = true;
                let written = report.bytes_copied + report.bytes_rewritten;
                report.bytes_copied = 0;
                report.bytes_rewritten = 0;
                report.bytes_out = 0;
                match self.dom_fallback(input, strategy, invoker) {
                    Err(e) => {
                        publish(&report);
                        Err(e)
                    }
                    Ok((out, rep)) => {
                        report.rewrite = rep;
                        if written == 0 {
                            sink.write_all(out.as_bytes()).map_err(|e| {
                                RewriteError::Invalid(format!("output write error: {e}"))
                            })?;
                            report.bytes_out = out.len() as u64;
                            report.bytes_rewritten = out.len() as u64;
                            publish(&report);
                            Ok(report)
                        } else {
                            publish(&report);
                            Err(RewriteError::Invalid(format!(
                                "streaming enforcement diverged after {written} bytes were \
                                 written ({reason}); use enforce_stream for buffered fallback"
                            )))
                        }
                    }
                }
            }
        }
    }

    /// The DOM pipeline with this rewriter's configuration (`k`, cache,
    /// call budget), used when [`Rewriter::rewrite_stream`] falls back.
    fn dom_fallback(
        &mut self,
        input: &str,
        strategy: Strategy,
        invoker: &mut dyn Invoker,
    ) -> Result<(String, RewriteReport), RewriteError> {
        let doc = parse_document(input).map_err(|e| RewriteError::Invalid(e.to_string()))?;
        let tree = ITree::from_xml(&doc.root).map_err(RewriteError::Invalid)?;
        if validate(&tree, self.compiled()).is_ok() {
            return Ok((
                element_to_string(&tree.to_xml(), &WriteOptions::compact()),
                RewriteReport::default(),
            ));
        }
        let (out, rep) = match strategy {
            Strategy::Safe => self.rewrite_safe(&tree, invoker)?,
            Strategy::Possible => self.rewrite_possible(&tree, invoker)?,
        };
        Ok((element_to_string(&out.to_xml(), &WriteOptions::compact()), rep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invoke::ScriptedInvoker;
    use axml_schema::{NoOracle, Schema};

    fn compiled(root_model: &str) -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("newspaper", root_model)
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    /// Schema (*): calls admitted where they stand.
    fn star() -> Compiled {
        compiled("title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
    }

    /// Schema (**): temp must be materialized, TimeOut may stay.
    fn star_star() -> Compiled {
        compiled("title.date.temp.(TimeOut|exhibit*)")
    }

    fn scripted() -> Box<dyn Invoker + Send> {
        Box::new(
            ScriptedInvoker::new()
                .answer("Get_Temp", vec![ITree::data("temp", "15 C")])
                .answer("Get_Date", vec![ITree::data("date", "04/10/2002")]),
        )
    }

    fn paper_xml() -> String {
        axml_schema::newspaper_example().to_xml().to_pretty_xml()
    }

    fn both(c: &Compiled, input: &str, opts: &StreamOptions) -> (String, StreamReport) {
        let (dom, dom_rep) = enforce_dom(c, input, opts, &mut || scripted()).unwrap();
        let (out, rep) = enforce_stream(c, input, opts, &mut || scripted()).unwrap();
        assert_eq!(out, dom, "streaming and DOM outputs differ");
        assert_eq!(
            rep.rewrite.invoked, dom_rep.invoked,
            "invocation lists differ"
        );
        assert_eq!(
            rep.bytes_copied + rep.bytes_rewritten,
            rep.bytes_out,
            "byte accounting identity broken"
        );
        (out, rep)
    }

    #[test]
    fn extensional_document_streams_zero_copy() {
        let c = star_star();
        let input =
            "<newspaper><title>The Daily Moon</title><date>04/10/2002</date><temp>15 C</temp>\
             </newspaper>";
        let (out, rep) = both(&c, input, &StreamOptions::default());
        assert!(out.contains("<temp>15 C</temp>"));
        assert!(!rep.fell_back);
        assert_eq!(rep.subtrees_materialized, 0);
        assert_eq!(rep.peak_buffer_bytes, 0);
        assert!(rep.bytes_copied > 0, "text spans should be zero-copy");
        assert!(rep.rewrite.invoked.is_empty());
    }

    #[test]
    fn suffix_rewrite_materializes_required_call() {
        let c = star_star();
        let input = paper_xml();
        let (out, rep) = both(&c, &input, &StreamOptions { k: 1, ..StreamOptions::default() });
        assert!(out.contains("<temp>15 C</temp>"), "{out}");
        assert!(out.contains("methodName=\"TimeOut\""), "{out}");
        assert!(!rep.fell_back);
        assert_eq!(rep.rewrite.invoked, vec!["Get_Temp".to_owned()]);
        assert_eq!(rep.subtrees_materialized, 1);
        assert!(rep.peak_buffer_bytes > 0);
    }

    #[test]
    fn admitted_calls_shortcut_without_invocation() {
        let c = star();
        let input = paper_xml();
        let (out, rep) = both(&c, &input, &StreamOptions::default());
        assert!(out.contains("methodName=\"Get_Temp\""), "{out}");
        assert!(!rep.fell_back);
        assert!(rep.rewrite.invoked.is_empty());
        assert_eq!(rep.rewrite.games, 0, "shortcut must not build games");
    }

    #[test]
    fn invalid_document_falls_back_with_identical_error() {
        let c = star_star();
        // Wrong child order: function-free and invalid.
        let input = "<newspaper><date>d</date><title>t</title><temp>1</temp></newspaper>";
        let opts = StreamOptions::default();
        let dom_err = enforce_dom(&c, input, &opts, &mut || scripted()).unwrap_err();
        let err = enforce_stream(&c, input, &opts, &mut || scripted()).unwrap_err();
        assert_eq!(err.to_string(), dom_err.to_string());
        assert_eq!(err, dom_err);
    }

    #[test]
    fn parse_error_falls_back_with_identical_error() {
        let c = star_star();
        let input = "<newspaper><title>t</title>";
        let opts = StreamOptions::default();
        let dom_err = enforce_dom(&c, input, &opts, &mut || scripted()).unwrap_err();
        let err = enforce_stream(&c, input, &opts, &mut || scripted()).unwrap_err();
        assert_eq!(err, dom_err);
    }

    #[test]
    fn possible_strategy_matches_dom() {
        let c = star_star();
        let input = paper_xml();
        let opts = StreamOptions {
            k: 1,
            strategy: Strategy::Possible,
            ..StreamOptions::default()
        };
        let (out, _rep) = both(&c, &input, &opts);
        assert!(out.contains("<temp>15 C</temp>"), "{out}");
    }

    #[test]
    fn wildcard_content_streams_and_keeps_calls() {
        let c = Compiled::new(
            Schema::builder()
                .element("r", "blob.a")
                .any_element("blob")
                .data_element("a")
                .function("F", "a", "a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let input = r#"<r><blob><x note="kept-nowhere"><y>deep</y></x><int:fun
            xmlns:int="http://www.activexml.com/ns/int" methodName="F"><int:params>
            <int:param><a>1</a></int:param></int:params></int:fun></blob><a>2</a></r>"#;
        let (out, rep) = both(&c, input, &StreamOptions::default());
        assert!(out.contains("methodName=\"F\""), "{out}");
        assert!(!out.contains("note="), "attributes are normalized away");
        assert!(!rep.fell_back);
        assert_eq!(rep.subtrees_materialized, 1);
        assert!(rep.rewrite.invoked.is_empty());
    }

    #[test]
    fn mixed_runs_comments_and_cdata_normalize_like_dom() {
        let c = star_star();
        let input = "<newspaper>\n  <title>a &amp; b<!-- note --><![CDATA[ <raw> ]]></title>\n\
                     <date>d</date><temp>1</temp></newspaper>";
        let (out, rep) = both(&c, input, &StreamOptions::default());
        assert!(out.contains("a &amp; b"), "{out}");
        assert!(out.contains("&lt;raw&gt;"), "{out}");
        assert!(!rep.fell_back);
    }

    #[test]
    fn rewrite_stream_direct_sink_matches_buffered() {
        let c = star_star();
        let input = paper_xml();
        let (buffered, _) =
            enforce_stream(&c, &input, &StreamOptions { k: 1, ..StreamOptions::default() }, &mut || {
                scripted()
            })
            .unwrap();
        let mut sink = Vec::new();
        let mut inv = scripted();
        let rep = Rewriter::new(&c)
            .with_k(1)
            .rewrite_stream(&input, Strategy::Safe, &mut *inv, &mut sink)
            .unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), buffered);
        assert_eq!(rep.bytes_out as usize, buffered.len());
    }

    #[test]
    fn rewrite_stream_clean_fallback_before_first_byte() {
        // A root-level anomaly (unknown element) falls back before any
        // byte is written, so the direct-sink path still succeeds.
        let c = star_star();
        let input = "<mystery/>";
        let mut sink = Vec::new();
        let mut inv = scripted();
        let err = Rewriter::new(&c)
            .rewrite_stream(input, Strategy::Safe, &mut *inv, &mut sink)
            .unwrap_err();
        // The DOM pipeline rejects it too; the typed error is its verdict.
        let dom_err = enforce_dom(&c, input, &StreamOptions::default(), &mut || scripted())
            .unwrap_err();
        assert_eq!(err, dom_err);
    }
}
