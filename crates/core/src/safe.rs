//! Safe rewriting (Sec. 4, Fig. 3).
//!
//! A word `w` safely rewrites into a target language `R` iff the rewriter
//! has a *strategy* — a choice of invoke/skip at every fork of [`Awk`] —
//! such that every word the services may produce lands in `R`.
//!
//! Following the paper, we build the cartesian product of `A_w^k` with the
//! *complete deterministic complement* `Ā` of `R` and mark the nodes from
//! which the adversary (the services' actual answers) can force a word of
//! `lang(Ā)` — i.e. a word outside `R`:
//!
//! * accepting product nodes (word complete, `Ā` accepting) are marked;
//! * a *regular* node is marked if **some** successor is marked (the
//!   adversary picks the continuation);
//! * a *fork* node is marked only if **both** its options lead to marked
//!   nodes (the rewriter picks the option).
//!
//! A safe rewriting exists iff the initial node is unmarked (Fig. 3,
//! step 18). The lazy build mode implements the Sec. 7 optimization: the
//! product is constructed on the fly, nodes whose complement state is an
//! accepting *sink* are marked immediately without exploring their
//! successors, and exploration is pruned below nodes already known marked
//! (Fig. 12).

use crate::awk::{Awk, EdgeId, StateKind};
use axml_automata::Dfa;
use std::collections::HashMap;

/// Product node identifier.
pub type NodeId = u32;

/// How the product graph is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BuildMode {
    /// Build every reachable product node, then mark (Fig. 3 as printed).
    #[default]
    Eager,
    /// Build on the fly with sink/marked pruning (Sec. 7 variant).
    Lazy,
}

/// Construction and marking statistics (used by the Fig. 12 reproduction
/// and the lazy-vs-eager bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GameStats {
    /// Product nodes created.
    pub nodes: usize,
    /// Product edges created.
    pub edges: usize,
    /// Nodes marked by the sink rule without exploring successors.
    pub sink_pruned: usize,
    /// Nodes whose expansion was skipped because they were already marked.
    pub mark_pruned: usize,
}

/// The safe-rewriting game over `A_w^k × Ā`.
#[derive(Debug)]
pub struct SafeGame {
    /// The expansion automaton.
    pub awk: Awk,
    /// Complete DFA for the complement of the target language.
    pub comp: Dfa,
    /// Node table: `(awk state, complement state)` per node id.
    pairs: Vec<(u32, u32)>,
    ids: HashMap<(u32, u32), NodeId>,
    /// Outgoing product edges: `(awk edge, successor node)`.
    out: Vec<Vec<(EdgeId, NodeId)>>,
    /// Reverse adjacency for marking.
    rev: Vec<Vec<NodeId>>,
    /// The marking; `marked[start]` decides safety.
    marked: Vec<bool>,
    /// Initial node.
    pub start: NodeId,
    /// Statistics.
    pub stats: GameStats,
}

impl SafeGame {
    /// Builds and solves the game. `comp` must be a complete DFA over the
    /// same effective alphabet as `awk` (use
    /// `Dfa::determinize(..).completed(n).complemented()` on the target).
    ///
    /// Construction metrics are published to the [`axml_obs::global`]
    /// registry; use [`SafeGame::solve_in`] to direct them elsewhere.
    pub fn solve(awk: Awk, comp: Dfa, mode: BuildMode) -> SafeGame {
        Self::solve_in(awk, comp, mode, &axml_obs::global())
    }

    /// Like [`SafeGame::solve`], but publishes node/edge/prune counts and
    /// solve latency to `metrics` (the `solver.safe.*` catalogue entries)
    /// instead of the process-wide registry. `self.stats` carries the
    /// same numbers either way.
    pub fn solve_in(awk: Awk, comp: Dfa, mode: BuildMode, metrics: &axml_obs::Registry) -> SafeGame {
        assert!(comp.is_complete(), "complement automaton must be complete");
        assert_eq!(comp.num_symbols, awk.num_symbols, "alphabet mismatch");
        let started = std::time::Instant::now();
        let mut game = SafeGame {
            awk,
            comp,
            pairs: Vec::new(),
            ids: HashMap::new(),
            out: Vec::new(),
            rev: Vec::new(),
            marked: Vec::new(),
            start: 0,
            stats: GameStats::default(),
        };
        game.build(mode);
        game.fixpoint();
        metrics.counter("solver.safe.solves_total").inc();
        metrics
            .counter("solver.safe.nodes_total")
            .add(game.stats.nodes as u64);
        metrics
            .counter("solver.safe.edges_total")
            .add(game.stats.edges as u64);
        metrics
            .counter("solver.safe.sink_pruned_total")
            .add(game.stats.sink_pruned as u64);
        metrics
            .counter("solver.safe.mark_pruned_total")
            .add(game.stats.mark_pruned as u64);
        metrics
            .histogram("solver.safe.solve_ns", axml_obs::LATENCY_NS_BOUNDS)
            .observe(started.elapsed().as_nanos() as u64);
        game
    }

    /// Reassembles a solved game from its serialized parts (the
    /// snapshot decode path in `axml-store`).
    ///
    /// Only `pairs`, `out`, `marked`, `start`, and `stats` need to be
    /// persisted: the pair-to-node index and the reverse adjacency are
    /// derived here (`rev` is a per-edge multiset, so deriving it from
    /// `out` reproduces the original exactly). Validation guards
    /// *memory safety* — every index must be in range, every pair
    /// unique — not logical correctness of the marking; that is the
    /// job of the snapshot checksum and the structural cache key. A
    /// game that fails validation is reported as an error, never a
    /// panic.
    pub fn from_solved_parts(
        awk: Awk,
        comp: Dfa,
        pairs: Vec<(u32, u32)>,
        out: Vec<Vec<(EdgeId, NodeId)>>,
        marked: Vec<bool>,
        start: NodeId,
        stats: GameStats,
    ) -> Result<SafeGame, String> {
        if !comp.is_complete() {
            return Err("complement automaton is not complete".to_owned());
        }
        if comp.num_symbols != awk.num_symbols {
            return Err("complement/expansion alphabet mismatch".to_owned());
        }
        let nodes = pairs.len();
        if out.len() != nodes || marked.len() != nodes {
            return Err("node table lengths disagree".to_owned());
        }
        if nodes == 0 || (start as usize) >= nodes {
            return Err(format!("start node {start} out of range ({nodes} nodes)"));
        }
        let mut ids = HashMap::with_capacity(nodes);
        for (i, &(s, q)) in pairs.iter().enumerate() {
            if (s as usize) >= awk.num_states() || (q as usize) >= comp.num_states() {
                return Err(format!("node {i} pair ({s},{q}) out of range"));
            }
            if ids.insert((s, q), i as NodeId).is_some() {
                return Err(format!("pair ({s},{q}) interned twice"));
            }
        }
        let mut rev = vec![Vec::new(); nodes];
        for (n, succs) in out.iter().enumerate() {
            for &(eid, m) in succs {
                if (eid as usize) >= awk.num_edges() {
                    return Err(format!("node {n}: product edge {eid} out of range"));
                }
                if (m as usize) >= nodes {
                    return Err(format!("node {n}: successor {m} out of range"));
                }
                rev[m as usize].push(n as NodeId);
            }
        }
        Ok(SafeGame {
            awk,
            comp,
            pairs,
            ids,
            out,
            rev,
            marked,
            start,
            stats,
        })
    }

    fn intern(&mut self, pair: (u32, u32)) -> (NodeId, bool) {
        if let Some(&id) = self.ids.get(&pair) {
            return (id, false);
        }
        let id = self.pairs.len() as NodeId;
        self.ids.insert(pair, id);
        self.pairs.push(pair);
        self.out.push(Vec::new());
        self.rev.push(Vec::new());
        self.marked.push(false);
        self.stats.nodes += 1;
        (id, true)
    }

    fn is_bad_accepting(&self, node: NodeId) -> bool {
        let (s, q) = self.pairs[node as usize];
        s == self.awk.finish && self.comp.finals[q as usize]
    }

    fn build(&mut self, mode: BuildMode) {
        let (start, _) = self.intern((self.awk.start, self.comp.start));
        self.start = start;
        let mut stack = vec![start];
        // In lazy mode, marks discovered during construction are propagated
        // immediately so exploration can be pruned below them.
        if mode == BuildMode::Lazy && self.is_bad_accepting(start) {
            self.marked[start as usize] = true;
        }
        while let Some(node) = stack.pop() {
            if mode == BuildMode::Lazy && self.marked[node as usize] {
                self.stats.mark_pruned += 1;
                continue;
            }
            let (s, q) = self.pairs[node as usize];
            for i in 0..self.awk.out_edges(s).len() {
                let eid = self.awk.out_edges(s)[i];
                let edge = self.awk.edge(eid);
                let q2 = match edge.label {
                    None => q,
                    Some(sym) => self.comp.next(q, sym),
                };
                let (succ, fresh) = self.intern((edge.to, q2));
                self.out[node as usize].push((eid, succ));
                self.rev[succ as usize].push(node);
                self.stats.edges += 1;
                if fresh {
                    let mut prune = false;
                    if mode == BuildMode::Lazy {
                        // Sink rule: complement accepting sink ⇒ every
                        // completion below is bad; mark and do not explore.
                        if self.comp.is_accepting_sink(q2) {
                            self.mark_and_propagate(succ);
                            self.stats.sink_pruned += 1;
                            prune = true;
                        } else if self.is_bad_accepting(succ) {
                            self.mark_and_propagate(succ);
                            prune = true;
                        }
                    }
                    if !prune {
                        stack.push(succ);
                    }
                } else if mode == BuildMode::Lazy && self.marked[succ as usize] {
                    // A known-marked successor may newly mark `node`.
                    self.propagate_from(node);
                }
            }
        }
    }

    /// Marks `node` and propagates backwards.
    fn mark_and_propagate(&mut self, node: NodeId) {
        if self.marked[node as usize] {
            return;
        }
        self.marked[node as usize] = true;
        let preds = self.rev[node as usize].clone();
        for p in preds {
            self.propagate_from(p);
        }
    }

    /// Re-evaluates the marking rule at `node` (monotone step).
    fn propagate_from(&mut self, node: NodeId) {
        if self.marked[node as usize] {
            return;
        }
        if self.eval_rule(node) {
            self.mark_and_propagate(node);
        }
    }

    /// Applies the marking rule at `node` given current successor marks.
    ///
    /// Note the fork rule needs *both* options marked; an unexplored option
    /// counts as unmarked (it can only become marked later, at which point
    /// propagation re-evaluates).
    fn eval_rule(&self, node: NodeId) -> bool {
        let (s, _) = self.pairs[node as usize];
        let succ_marked = |&(_, t): &(EdgeId, NodeId)| -> bool { self.marked[t as usize] };
        match self.awk.kind(s) {
            StateKind::Regular => self.out[node as usize].iter().any(succ_marked),
            StateKind::Fork { skip, invoke, .. } => {
                let opt = |target_edge: EdgeId| {
                    self.out[node as usize]
                        .iter()
                        .filter(|(e, _)| *e == target_edge)
                        .any(&succ_marked)
                };
                opt(skip) && opt(invoke)
            }
        }
    }

    /// Global least-fixpoint marking over the constructed graph.
    fn fixpoint(&mut self) {
        let mut queue: Vec<NodeId> = Vec::new();
        for n in 0..self.pairs.len() as NodeId {
            if !self.marked[n as usize] && self.is_bad_accepting(n) {
                self.marked[n as usize] = true;
            }
            if self.marked[n as usize] {
                queue.push(n);
            }
        }
        while let Some(n) = queue.pop() {
            let preds = self.rev[n as usize].clone();
            for p in preds {
                if !self.marked[p as usize] && self.eval_rule(p) {
                    self.marked[p as usize] = true;
                    queue.push(p);
                }
            }
        }
    }

    /// True iff a k-depth left-to-right safe rewriting exists (Fig. 3,
    /// step 18: the initial state is not marked).
    pub fn is_safe(&self) -> bool {
        !self.marked[self.start as usize]
    }

    /// Whether `node` is marked.
    pub fn is_marked(&self, node: NodeId) -> bool {
        self.marked[node as usize]
    }

    /// The `(awk state, complement state)` pair of `node`.
    pub fn pair(&self, node: NodeId) -> (u32, u32) {
        self.pairs[node as usize]
    }

    /// Product successors of `node` as `(awk edge, node)` pairs.
    pub fn successors(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
        &self.out[node as usize]
    }

    /// Number of product nodes.
    pub fn num_nodes(&self) -> usize {
        self.pairs.len()
    }

    /// The product node for an `(awk state, complement state)` pair, if
    /// that pair was reached during construction. The inverse of
    /// [`SafeGame::pair`], for callers walking the game graph externally
    /// (e.g. a strategic adversary replaying answer choices).
    pub fn node(&self, awk_state: u32, comp_state: u32) -> Option<NodeId> {
        self.ids.get(&(awk_state, comp_state)).copied()
    }

    /// The adversary's preferred move from `node`: a successor that stays
    /// *marked* (keeps the rewriter losing), if any. Ties break on the
    /// lowest edge id so strategic opponents replay deterministically.
    pub fn adversarial_successor(&self, node: NodeId) -> Option<(EdgeId, NodeId)> {
        self.out[node as usize]
            .iter()
            .copied()
            .find(|&(_, t)| self.marked[t as usize])
            .or_else(|| self.out[node as usize].first().copied())
    }

    /// The static rewriting decisions for the *original* function
    /// occurrences of `w`, in left-to-right order: `true` = invoke.
    ///
    /// Skipping is preferred whenever it is safe, which minimizes the number
    /// of invocations (Fig. 3, step 23: each decision is independent, and
    /// not calling is always cheapest).
    ///
    /// Returns `None` when no safe rewriting exists.
    pub fn plan(&self) -> Option<Vec<Decision>> {
        if !self.is_safe() {
            return None;
        }
        let mut decisions = Vec::new();
        let mut cur = self.start;
        // Walk the spine of the original word. Every node on an unmarked
        // walk stays unmarked: adversary nodes have all successors unmarked
        // and unmarked forks have at least one unmarked option.
        loop {
            let (s, _) = self.pair(cur);
            if s == self.awk.finish {
                break;
            }
            match self.awk.kind(s) {
                StateKind::Fork {
                    func,
                    skip,
                    invoke,
                    depth,
                } => {
                    debug_assert_eq!(depth, 1, "plan walks only the original word");
                    let skip_target = self.target_of(cur, skip);
                    let take_skip = skip_target.is_some_and(|t| !self.marked[t as usize]);
                    if take_skip {
                        decisions.push(Decision {
                            func,
                            invoke: false,
                        });
                        cur = skip_target.expect("checked");
                    } else {
                        decisions.push(Decision { func, invoke: true });
                        // Continue through the output copy along any
                        // unmarked path (a representative service answer)
                        // until the copy exits back onto the spine at the
                        // skip edge's target awk-state.
                        let spine_next = self.awk.edge(skip).to;
                        let entry = self
                            .target_of(cur, invoke)
                            .expect("invoke option exists on forks");
                        cur = self
                            .bfs_unmarked_to_awk_state(entry, spine_next)
                            .expect("unmarked invoke option reaches the spine");
                    }
                }
                StateKind::Regular => {
                    // Exactly one spine successor: the next letter of w or
                    // the ε into the next fork.
                    let next = self.out[cur as usize]
                        .iter()
                        .find(|&&(_, t)| !self.marked[t as usize])
                        .map(|&(_, t)| t);
                    match next {
                        Some(t) => cur = t,
                        None => break,
                    }
                }
            }
        }
        Some(decisions)
    }

    /// BFS through unmarked product nodes from `from` to the first node
    /// whose awk component is `goal` (used to hop over an invoked call in
    /// the static plan).
    fn bfs_unmarked_to_awk_state(&self, from: NodeId, goal: u32) -> Option<NodeId> {
        let mut seen = vec![false; self.pairs.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[from as usize] = true;
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            if self.pairs[n as usize].0 == goal {
                return Some(n);
            }
            for &(_, t) in &self.out[n as usize] {
                if !seen[t as usize] && !self.marked[t as usize] {
                    seen[t as usize] = true;
                    queue.push_back(t);
                }
            }
        }
        None
    }

    fn target_of(&self, node: NodeId, edge: EdgeId) -> Option<NodeId> {
        self.out[node as usize]
            .iter()
            .find(|(e, _)| *e == edge)
            .map(|&(_, t)| t)
    }
}

/// A static decision for one original function occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The function symbol.
    pub func: axml_automata::Symbol,
    /// Whether to invoke (`true`) or keep the call intensional (`false`).
    pub invoke: bool,
}

/// Builds the complete complement DFA `Ā` for a target regex (Fig. 3,
/// step 4) over an alphabet of `num_symbols` symbols.
pub fn complement_of(target: &axml_automata::Regex, num_symbols: usize) -> Dfa {
    let nfa = axml_automata::Nfa::thompson(target, num_symbols);
    Dfa::determinize(&nfa).completed(num_symbols).complemented()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awk::AwkLimits;
    use axml_automata::{Regex, Symbol};
    use axml_schema::{Compiled, NoOracle, Schema};

    fn paper_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    fn word(c: &Compiled, names: &[&str]) -> Vec<Symbol> {
        names
            .iter()
            .map(|n| c.alphabet().lookup(n).unwrap())
            .collect()
    }

    fn solve(c: &Compiled, w: &[&str], target: &str, k: u32, mode: BuildMode) -> SafeGame {
        let w = word(c, w);
        let awk = Awk::build(&w, c, k, &AwkLimits::default()).unwrap();
        let mut ab = c.alphabet().clone();
        let re = Regex::parse(target, &mut ab).unwrap();
        assert_eq!(ab.len(), c.alphabet().len(), "target uses declared symbols");
        let comp = complement_of(&re, c.alphabet().len());
        SafeGame::solve(awk, comp, mode)
    }

    #[test]
    fn figure6_safe_into_star_star() {
        // Figs. 5–6: w = title.date.Get_Temp.TimeOut safely rewrites into
        // title.date.temp.(TimeOut | exhibit*): invoke Get_Temp, keep TimeOut.
        let c = paper_compiled();
        let game = solve(
            &c,
            &["title", "date", "Get_Temp", "TimeOut"],
            "title.date.temp.(TimeOut|exhibit*)",
            1,
            BuildMode::Eager,
        );
        assert!(game.is_safe());
        let plan = game.plan().unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].func, c.alphabet().lookup("Get_Temp").unwrap());
        assert!(plan[0].invoke, "Get_Temp needs to be invoked");
        assert_eq!(plan[1].func, c.alphabet().lookup("TimeOut").unwrap());
        assert!(!plan[1].invoke, "TimeOut should not be invoked");
    }

    #[test]
    fn figure8_unsafe_into_star_star_star() {
        // Figs. 7–8: no safe rewriting into title.date.temp.exhibit*
        // because TimeOut may return performance elements.
        let c = paper_compiled();
        let game = solve(
            &c,
            &["title", "date", "Get_Temp", "TimeOut"],
            "title.date.temp.exhibit*",
            1,
            BuildMode::Eager,
        );
        assert!(!game.is_safe());
        assert!(game.plan().is_none());
    }

    #[test]
    fn already_conforming_word_is_safe_with_empty_plan_decisions() {
        let c = paper_compiled();
        let game = solve(
            &c,
            &["title", "date", "temp"],
            "title.date.temp.(TimeOut|exhibit*)",
            1,
            BuildMode::Eager,
        );
        assert!(game.is_safe());
        assert_eq!(game.plan().unwrap(), vec![]);
    }

    #[test]
    fn lazy_and_eager_agree_and_lazy_prunes() {
        let c = paper_compiled();
        for (target, expect_safe) in [
            ("title.date.temp.(TimeOut|exhibit*)", true),
            ("title.date.temp.exhibit*", false),
            ("title.date.(Get_Temp|temp).(TimeOut|exhibit*)", true),
            ("title.date", false),
        ] {
            let eager = solve(
                &c,
                &["title", "date", "Get_Temp", "TimeOut"],
                target,
                1,
                BuildMode::Eager,
            );
            let lazy = solve(
                &c,
                &["title", "date", "Get_Temp", "TimeOut"],
                target,
                1,
                BuildMode::Lazy,
            );
            assert_eq!(eager.is_safe(), expect_safe, "eager on {target}");
            assert_eq!(lazy.is_safe(), expect_safe, "lazy on {target}");
            assert!(
                lazy.stats.nodes <= eager.stats.nodes,
                "lazy must not build more nodes ({} vs {}) on {target}",
                lazy.stats.nodes,
                eager.stats.nodes
            );
        }
    }

    #[test]
    fn figure12_lazy_explores_strictly_fewer_nodes() {
        // The Fig. 6/12 instance: pruning skips the sink regions.
        let c = paper_compiled();
        let eager = solve(
            &c,
            &["title", "date", "Get_Temp", "TimeOut"],
            "title.date.temp.(TimeOut|exhibit*)",
            1,
            BuildMode::Eager,
        );
        let lazy = solve(
            &c,
            &["title", "date", "Get_Temp", "TimeOut"],
            "title.date.temp.(TimeOut|exhibit*)",
            1,
            BuildMode::Lazy,
        );
        assert!(lazy.stats.nodes < eager.stats.nodes);
        assert!(lazy.stats.sink_pruned > 0);
    }

    #[test]
    fn unsafe_when_mandatory_function_not_invocable() {
        // Same Fig. 6 instance but Get_Temp is not invocable: the target
        // requires temp, so no safe (legal) rewriting exists.
        let c = Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .non_invocable_function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let game = solve(
            &c,
            &["title", "date", "Get_Temp", "TimeOut"],
            "title.date.temp.(TimeOut|exhibit*)",
            1,
            BuildMode::Eager,
        );
        assert!(!game.is_safe());
    }

    #[test]
    fn depth_matters_for_nested_outputs() {
        // Get_Exhibits returns Get_Exhibit*; flattening to exhibit* requires
        // depth 2 — and even then it is safe only because every returned
        // Get_Exhibit can itself be invoked.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "Get_Exhibits|exhibit*")
                .element("exhibit", "")
                .function("Get_Exhibits", "", "Get_Exhibit*")
                .function("Get_Exhibit", "", "exhibit")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let mk = |k| {
            let w = vec![c.alphabet().lookup("Get_Exhibits").unwrap()];
            let awk = Awk::build(&w, &c, k, &AwkLimits::default()).unwrap();
            let mut ab = c.alphabet().clone();
            let re = Regex::parse("exhibit*", &mut ab).unwrap();
            let comp = complement_of(&re, c.alphabet().len());
            SafeGame::solve(awk, comp, BuildMode::Eager)
        };
        assert!(!mk(1).is_safe(), "depth 1 cannot flatten nested handles");
        assert!(mk(2).is_safe(), "depth 2 can invoke the returned handles");
    }

    #[test]
    fn adversarial_star_outputs_block_safety() {
        // f returns (a|b)*; target a* — unsafe since b may come back.
        // g returns a*; target a* — safe.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "(f|g|a)*")
                .data_element("a")
                .data_element("b")
                .function("f", "", "(a|b)*")
                .function("g", "", "a*")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let mut ab = c.alphabet().clone();
        let target = Regex::parse("a*", &mut ab).unwrap();
        let comp = complement_of(&target, c.alphabet().len());
        let wf = vec![c.alphabet().lookup("f").unwrap()];
        let wg = vec![c.alphabet().lookup("g").unwrap()];
        let gf = SafeGame::solve(
            Awk::build(&wf, &c, 1, &AwkLimits::default()).unwrap(),
            comp.clone(),
            BuildMode::Eager,
        );
        let gg = SafeGame::solve(
            Awk::build(&wg, &c, 1, &AwkLimits::default()).unwrap(),
            comp,
            BuildMode::Eager,
        );
        assert!(!gf.is_safe());
        assert!(gg.is_safe());
        assert!(gg.plan().unwrap()[0].invoke);
    }
}

impl SafeGame {
    /// When no safe rewriting exists, extracts a *doomed trace*: a word the
    /// adversary can force no matter how the rewriter plays, ending outside
    /// the target language. Symbols are the letters read along the trace
    /// (function letters mean the call was left intensional on that branch).
    ///
    /// Returns `None` when the game is safe.
    pub fn counterexample(&self) -> Option<Vec<axml_automata::Symbol>> {
        if self.is_safe() {
            return None;
        }
        match self.extract_counterexample() {
            Some(word) => Some(word),
            None => {
                // Lazily built games prune the successors of marked nodes,
                // which can leave no walkable path to a bad completion.
                // Re-solve eagerly: same verdict, full graph.
                let eager = SafeGame::solve(self.awk.clone(), self.comp.clone(), BuildMode::Eager);
                debug_assert!(!eager.is_safe());
                eager.extract_counterexample()
            }
        }
    }

    fn extract_counterexample(&self) -> Option<Vec<axml_automata::Symbol>> {
        // Walk marked nodes only: at regular (adversary) nodes follow any
        // marked successor; at forks both options are marked — follow the
        // skip option so the trace shows the uninvoked call. Every step
        // strictly decreases the BFS distance to a bad accepting node, so
        // compute distances first to guarantee termination.
        let n = self.pairs.len();
        let mut dist = vec![u32::MAX; n];
        let mut rev_queue = std::collections::VecDeque::new();
        for v in 0..n as NodeId {
            if self.is_bad_accepting(v) && self.marked[v as usize] {
                dist[v as usize] = 0;
                rev_queue.push_back(v);
            }
        }
        // Backward BFS over marked nodes (via rev edges).
        while let Some(v) = rev_queue.pop_front() {
            for &p in &self.rev[v as usize] {
                if self.marked[p as usize] && dist[p as usize] == u32::MAX {
                    // Only legitimate if the marking rule at p is satisfied
                    // through v; for a trace we just need *a* marked path,
                    // and fork nodes have both options marked when marked.
                    dist[p as usize] = dist[v as usize] + 1;
                    rev_queue.push_back(p);
                }
            }
        }
        let mut word = Vec::new();
        let mut cur = self.start;
        let mut guard = 0;
        while !self.is_bad_accepting(cur) {
            guard += 1;
            if guard > 100_000 {
                return None; // defensive: malformed game
            }
            let next = self.out[cur as usize]
                .iter()
                .filter(|&&(_, t)| self.marked[t as usize] && dist[t as usize] < dist[cur as usize])
                .min_by_key(|&&(_, t)| dist[t as usize])
                .copied()?;
            if let Some(sym) = self.awk.edge(next.0).label {
                word.push(sym);
            }
            cur = next.1;
        }
        Some(word)
    }
}

#[cfg(test)]
mod counterexample_tests {
    use super::*;
    use crate::awk::AwkLimits;
    use axml_automata::{Nfa, Regex};
    use axml_schema::{Compiled, NoOracle, Schema};

    #[test]
    fn unsafe_games_yield_bad_words() {
        // The Fig. 8 instance: the counterexample must be a word outside
        // title.date.temp.exhibit* that the adversary can force.
        let c = Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let w: Vec<_> = ["title", "date", "Get_Temp", "TimeOut"]
            .iter()
            .map(|s| c.alphabet().lookup(s).unwrap())
            .collect();
        let mut ab = c.alphabet().clone();
        let target = Regex::parse("title.date.temp.exhibit*", &mut ab).unwrap();
        let awk = Awk::build(&w, &c, 1, &AwkLimits::default()).unwrap();
        let game = SafeGame::solve(
            awk,
            complement_of(&target, c.alphabet().len()),
            BuildMode::Eager,
        );
        assert!(!game.is_safe());
        let bad = game.counterexample().expect("unsafe game has a trace");
        // The bad word is NOT in the target language…
        let nfa = Nfa::thompson(&target, c.alphabet().len());
        assert!(!nfa.accepts(&bad), "counterexample must violate the target");
        // …but it is a 1-depth rewriting outcome of w.
        let awk2 = Awk::build(&w, &c, 1, &AwkLimits::default()).unwrap();
        let words = awk2.enumerate_words(bad.len(), 100_000);
        assert!(
            words.contains(&bad),
            "counterexample must be a reachable rewriting outcome: {}",
            c.alphabet().format_word(&bad)
        );
    }

    #[test]
    fn safe_games_have_no_counterexample() {
        let c = Compiled::new(
            Schema::builder()
                .element("r", "a")
                .data_element("a")
                .function("f", "", "a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let w = vec![c.alphabet().lookup("f").unwrap()];
        let mut ab = c.alphabet().clone();
        let target = Regex::parse("a", &mut ab).unwrap();
        let awk = Awk::build(&w, &c, 1, &AwkLimits::default()).unwrap();
        let game = SafeGame::solve(
            awk,
            complement_of(&target, c.alphabet().len()),
            BuildMode::Eager,
        );
        assert!(game.is_safe());
        assert_eq!(game.counterexample(), None);
    }
}

/// Decides k-depth **right-to-left** safe rewriting (footnote 4 of the
/// paper): the children word is processed from the right, so decisions for
/// right-hand occurrences may not depend on the results of left-hand
/// invocations. Implemented by mirroring: build `A_{wᴿ}^k` with reversed
/// output types and play against the complement of the reversed target.
pub fn safe_exists_rtl(
    w: &[axml_automata::Symbol],
    compiled: &axml_schema::Compiled,
    target: &axml_automata::Regex,
    k: u32,
    limits: &crate::awk::AwkLimits,
) -> Result<bool, crate::awk::AwkTooLarge> {
    let awk = Awk::build_directed(w, compiled, k, limits, crate::awk::Direction::RightToLeft)?;
    let comp = complement_of(&target.reversed(), compiled.alphabet().len());
    Ok(SafeGame::solve(awk, comp, BuildMode::Lazy).is_safe())
}

#[cfg(test)]
mod direction_tests {
    use super::*;
    use crate::awk::AwkLimits;
    use axml_automata::Regex;
    use axml_schema::{Compiled, NoOracle, Schema};

    fn setup() -> Compiled {
        // τ_out(f) = a|cc ; τ_out(g) = b. Target R = a.b | cc.g:
        //  * left-to-right IS safe: invoke f first; if it returns a, invoke
        //    g (a.b ∈ R); if it returns cc, keep g (cc.g ∈ R).
        //  * right-to-left is NOT safe: g must be decided before f's answer
        //    is known, and both choices can be beaten by the adversary.
        Compiled::new(
            Schema::builder()
                .element("r", "a.b|cc.g")
                .data_element("a")
                .data_element("b")
                .data_element("cc")
                .function("f", "", "a|cc")
                .function("g", "", "b")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    #[test]
    fn directions_can_disagree() {
        let c = setup();
        let w = vec![
            c.alphabet().lookup("f").unwrap(),
            c.alphabet().lookup("g").unwrap(),
        ];
        let mut ab = c.alphabet().clone();
        let target = Regex::parse("a.b|cc.g", &mut ab).unwrap();
        let limits = AwkLimits::default();
        // Left-to-right: safe.
        let awk = Awk::build(&w, &c, 1, &limits).unwrap();
        let ltr = SafeGame::solve(
            awk,
            complement_of(&target, c.alphabet().len()),
            BuildMode::Eager,
        )
        .is_safe();
        assert!(ltr, "left-to-right is safe on this instance");
        // Right-to-left: unsafe.
        let rtl = safe_exists_rtl(&w, &c, &target, 1, &limits).unwrap();
        assert!(!rtl, "right-to-left cannot use f's answer when deciding g");
    }

    #[test]
    fn mirrored_instance_flips_the_verdict() {
        // The mirror image: R = b.a | g.cc with word g.f — now RTL wins.
        let c = Compiled::new(
            Schema::builder()
                .element("r", "b.a|g.cc")
                .data_element("a")
                .data_element("b")
                .data_element("cc")
                .function("f", "", "a|cc")
                .function("g", "", "b")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let w = vec![
            c.alphabet().lookup("g").unwrap(),
            c.alphabet().lookup("f").unwrap(),
        ];
        let mut ab = c.alphabet().clone();
        let target = Regex::parse("b.a|g.cc", &mut ab).unwrap();
        let limits = AwkLimits::default();
        let awk = Awk::build(&w, &c, 1, &limits).unwrap();
        let ltr = SafeGame::solve(
            awk,
            complement_of(&target, c.alphabet().len()),
            BuildMode::Eager,
        )
        .is_safe();
        let rtl = safe_exists_rtl(&w, &c, &target, 1, &limits).unwrap();
        assert!(!ltr, "left-to-right decides f before g's answer is known");
        assert!(rtl, "right-to-left is safe on the mirrored instance");
    }

    #[test]
    fn directions_agree_on_the_paper_instance() {
        let c = Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let w: Vec<_> = ["title", "date", "Get_Temp", "TimeOut"]
            .iter()
            .map(|s| c.alphabet().lookup(s).unwrap())
            .collect();
        let mut ab = c.alphabet().clone();
        let limits = AwkLimits::default();
        for (model, expected) in [
            ("title.date.temp.(TimeOut|exhibit*)", true),
            ("title.date.temp.exhibit*", false),
        ] {
            let target = Regex::parse(model, &mut ab).unwrap();
            let awk = Awk::build(&w, &c, 1, &limits).unwrap();
            let ltr = SafeGame::solve(
                awk,
                complement_of(&target, c.alphabet().len()),
                BuildMode::Eager,
            )
            .is_safe();
            let rtl = safe_exists_rtl(&w, &c, &target, 1, &limits).unwrap();
            assert_eq!(ltr, expected);
            assert_eq!(rtl, expected, "directions agree on {model}");
        }
    }
}

#[cfg(test)]
mod lazy_counterexample_tests {
    use super::*;
    use crate::awk::AwkLimits;
    use axml_automata::{Nfa, Regex};
    use axml_schema::{Compiled, NoOracle, Schema};

    #[test]
    fn lazy_games_also_yield_counterexamples() {
        let c = Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let w: Vec<_> = ["title", "date", "Get_Temp", "TimeOut"]
            .iter()
            .map(|s| c.alphabet().lookup(s).unwrap())
            .collect();
        let mut ab = c.alphabet().clone();
        let target = Regex::parse("title.date.temp.exhibit*", &mut ab).unwrap();
        let awk = Awk::build(&w, &c, 1, &AwkLimits::default()).unwrap();
        let game = SafeGame::solve(
            awk,
            complement_of(&target, c.alphabet().len()),
            BuildMode::Lazy,
        );
        assert!(!game.is_safe());
        let bad = game
            .counterexample()
            .expect("unsafe lazy games must still produce a trace");
        let nfa = Nfa::thompson(&target, c.alphabet().len());
        assert!(!nfa.accepts(&bad));
    }
}
