//! Strategic adversaries over the solved rewriting games.
//!
//! The paper's Def. 4 lets a service answer a call with *any* instance of
//! its output type. Random type-correct answers (the default simulated
//! adversary) explore that freedom blindly; the related rewriting-games
//! literature (*Games for Active XML Revisited*, *Transducer-based
//! Rewriting Games for Active XML*) characterizes the **worst-case**
//! opponent instead: one that plays the game graph. This module extracts
//! that opponent's moves from an already-solved [`PossibleGame`].
//!
//! The adversary's freedom for one call to `f` is the path it picks
//! through the output-type copy that [`Awk`] spliced in for `f`'s fork:
//! each labeled edge on the path is one symbol of the answer word. A
//! *trapping* answer is a path whose product node (or target-DFA state)
//! leaves the viable region — after splicing it, no continuation of the
//! rewriting can reach the target language, so a possible-mode rewriter
//! is forced to backtrack and, with no alternatives, to report a typed
//! `Exhausted` failure. [`worst_answer`] finds such a path when one
//! exists; [`SafeGame::counterexample`] is the safe-game analogue (the
//! full adversary-forced bad word).
//!
//! [`Awk`]: crate::awk::Awk

use crate::awk::{EdgeId, StateId, StateKind};
use crate::possible::PossibleGame;
use axml_automata::{Symbol, NO_STATE};

/// The answer the strategic adversary wants to give for one call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorstAnswer {
    /// The answer word (a word of the function's output type).
    pub word: Vec<Symbol>,
    /// Whether this answer provably traps the rewriter: after splicing
    /// it, the product leaves the viable region, so no continuation
    /// conforms. `false` means every type-correct answer keeps the
    /// rewriter viable — the adversary cannot win this call.
    pub trapping: bool,
}

/// Walks the solved possible game and returns the adversary's preferred
/// answer word for the first depth-1 occurrence of `func` in the word the
/// game was built over. Returns `None` when `func` has no depth-1 fork in
/// the expansion (the rewriter never asks the adversary anything).
///
/// The walk starts at the fork's `invoke` edge and chooses successors in
/// the output-type copy, preferring edges whose product node is
/// non-viable (or whose label is dead in the target DFA — those pairs are
/// pruned from the product). Deeper forks inside the copy are traversed
/// through their `skip` edge only: the answer must be a word of the
/// output type itself, not of its further expansion. Every step either
/// strictly decreases a precomputed distance to the copy's exit or is the
/// single move into the trapped region, so the walk terminates without a
/// fuel bound.
pub fn worst_answer(game: &PossibleGame, func: Symbol) -> Option<WorstAnswer> {
    let awk = &game.awk;
    // The first depth-1 fork for `func`: fork states are created in
    // left-to-right word order, so the lowest state id is the first
    // occurrence.
    let fork = (0..awk.num_states() as StateId).find(|&s| {
        matches!(
            awk.kind(s),
            StateKind::Fork { func: f, depth: 1, .. } if f == func
        )
    })?;
    let StateKind::Fork { skip, invoke, .. } = awk.kind(fork) else {
        unreachable!("state found by fork filter");
    };
    let entry = awk.edge(invoke).to;
    let exit = awk.edge(skip).to;

    // The target-DFA state the rewriter is in when it invokes: read it
    // off a product node sitting on the fork. Prefer a viable one (the
    // rewriter only invokes from viable nodes).
    let q0 = (0..game.num_nodes() as u32)
        .filter(|&n| game.pair(n).0 == fork)
        .max_by_key(|&n| game.is_viable(n))
        .map(|n| game.pair(n).1)?;

    let dist = distances_to(awk, exit);
    dist[entry as usize]?; // the copy must be able to complete an answer

    let mut word = Vec::new();
    let mut s = entry;
    // `None` target state = the answer already fell off the target DFA.
    let mut q = Some(q0);
    let mut trapped = !alive(game, s, q);
    while s != exit {
        let candidates = answer_edges(awk, s);
        let pick = candidates
            .iter()
            .copied()
            .filter(|&e| dist[awk.edge(e).to as usize].is_some())
            .min_by_key(|&e| {
                let edge = awk.edge(e);
                let q2 = step(game, q, edge.label);
                // Trap first (non-viable beats viable), then shortest way
                // out, then lowest edge id for determinism.
                (alive(game, edge.to, q2), dist[edge.to as usize], e)
            })?;
        let edge = awk.edge(pick);
        q = step(game, q, edge.label);
        if let Some(sym) = edge.label {
            word.push(sym);
        }
        s = edge.to;
        trapped = trapped || !alive(game, s, q);
    }
    Some(WorstAnswer {
        word,
        trapping: trapped,
    })
}

/// Steps the game's target DFA; `None` is the dead (trapped) state.
fn step(game: &PossibleGame, q: Option<u32>, label: Option<Symbol>) -> Option<u32> {
    match (q, label) {
        (q, None) => q,
        (None, Some(_)) => None,
        (Some(q), Some(sym)) => match game.target.next(q, sym) {
            NO_STATE => None,
            t => Some(t),
        },
    }
}

/// Whether the pair `(awk state, target state)` is still a viable product
/// node. A dead target state, a pair pruned from the product, or a
/// non-viable node all mean the rewriter has already lost.
fn alive(game: &PossibleGame, s: StateId, q: Option<u32>) -> bool {
    match q {
        None => false,
        Some(q) => game.node(s, q).is_some_and(|n| game.is_viable(n)),
    }
}

/// The edges an *answer* may take from `s`: all of a regular state's
/// edges, but only the `skip` edge of a deeper fork (taking `invoke`
/// would emit a word of the expansion, not of the output type).
fn answer_edges(awk: &crate::awk::Awk, s: StateId) -> Vec<EdgeId> {
    match awk.kind(s) {
        StateKind::Regular => awk.out_edges(s).to_vec(),
        StateKind::Fork { skip, .. } => vec![skip],
    }
}

/// BFS distance (in edges) from every awk state to `exit`, restricted to
/// answer edges. `None` = `exit` unreachable along answer paths.
fn distances_to(awk: &crate::awk::Awk, exit: StateId) -> Vec<Option<u32>> {
    let n = awk.num_states();
    // Reverse adjacency over answer edges.
    let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for s in 0..n as StateId {
        for e in answer_edges(awk, s) {
            rev[awk.edge(e).to as usize].push(s);
        }
    }
    let mut dist = vec![None; n];
    dist[exit as usize] = Some(0);
    let mut queue = std::collections::VecDeque::from([exit]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize].expect("queued states have distances");
        for &p in &rev[v as usize] {
            if dist[p as usize].is_none() {
                dist[p as usize] = Some(d + 1);
                queue.push_back(p);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awk::{Awk, AwkLimits};
    use crate::possible::{target_of, PossibleGame};
    use axml_automata::Regex;
    use axml_schema::{Compiled, NoOracle, Schema};

    fn marketplace_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("offer", "title.price")
                .data_element("title")
                .data_element("price")
                .data_element("apology")
                .function("Get_Quote", "title", "price|apology|Get_Quote")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    fn game(c: &Compiled, w: &[&str], target: &str, k: u32) -> PossibleGame {
        let word: Vec<Symbol> = w
            .iter()
            .map(|n| c.alphabet().lookup(n).unwrap())
            .collect();
        let awk = Awk::build(&word, c, k, &AwkLimits::default()).unwrap();
        let mut ab = c.alphabet().clone();
        let re = Regex::parse(target, &mut ab).unwrap();
        assert_eq!(ab.len(), c.alphabet().len());
        PossibleGame::solve(awk, target_of(&re, c.alphabet().len()))
    }

    #[test]
    fn adversary_finds_the_trapping_answer() {
        // The rewriter must turn title.Get_Quote into title.price; the
        // output type also admits `apology`, which no continuation can
        // repair. The strategic adversary must find it.
        let c = marketplace_compiled();
        let g = game(&c, &["title", "Get_Quote"], "title.price", 1);
        assert!(g.is_possible());
        let quote = c.alphabet().lookup("Get_Quote").unwrap();
        let answer = worst_answer(&g, quote).expect("Get_Quote has a fork");
        assert!(answer.trapping, "apology traps the rewriter");
        let apology = c.alphabet().lookup("apology").unwrap();
        assert_eq!(answer.word, vec![apology]);
    }

    #[test]
    fn trapping_answers_survive_deeper_expansion() {
        // At k = 2 the Get_Quote continuation inside the output type is
        // itself expanded; the answer walk must stay inside the depth-1
        // copy (skip edges only) and still find `apology`.
        let c = marketplace_compiled();
        let g = game(&c, &["title", "Get_Quote"], "title.price", 2);
        let quote = c.alphabet().lookup("Get_Quote").unwrap();
        let answer = worst_answer(&g, quote).expect("Get_Quote has a fork");
        assert!(answer.trapping);
        let apology = c.alphabet().lookup("apology").unwrap();
        assert_eq!(answer.word, vec![apology]);
    }

    #[test]
    fn no_trap_when_every_answer_keeps_the_rewriter_viable() {
        // Get_Date's output type is exactly `date`: the adversary has no
        // freedom, so no trapping answer exists.
        let c = Compiled::new(
            Schema::builder()
                .element("exhibit", "title.date")
                .data_element("title")
                .data_element("date")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let g = game(&c, &["title", "Get_Date"], "title.date", 1);
        let get_date = c.alphabet().lookup("Get_Date").unwrap();
        let answer = worst_answer(&g, get_date).expect("Get_Date has a fork");
        assert!(!answer.trapping);
        let date = c.alphabet().lookup("date").unwrap();
        assert_eq!(answer.word, vec![date]);
    }

    #[test]
    fn no_fork_means_no_answer() {
        let c = marketplace_compiled();
        let g = game(&c, &["title", "price"], "title.price", 1);
        let quote = c.alphabet().lookup("Get_Quote").unwrap();
        assert!(worst_answer(&g, quote).is_none());
    }

    #[test]
    fn successor_queries_agree_with_the_walk() {
        // The exposed node()/trapping_successor() queries let callers
        // replay the walk by hand: from the start, some path of
        // trapping_successor moves reaches a non-viable node exactly when
        // the game is winnable by the adversary at that fork.
        let c = marketplace_compiled();
        let g = game(&c, &["title", "Get_Quote"], "title.price", 1);
        let (s0, q0) = g.pair(g.start);
        assert_eq!(g.node(s0, q0), Some(g.start));
        let (_, n) = g.trapping_successor(g.start).expect("start has moves");
        assert!(g.node(g.pair(n).0, g.pair(n).1) == Some(n));
    }
}
