//! Per-crate property tests for the schema layer, under the in-repo
//! harness (`axml-support`): generation, validation, and the streaming
//! validator must agree on arbitrary seeds and schema instances.

use axml_schema::{
    generate_instance, validate, validate_xml_stream, Compiled, GenConfig, ITree, NoOracle, Schema,
};
use axml_support::prelude::*;
use axml_support::rng::{SeedableRng, StdRng};

fn paper_compiled() -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated instance validates against the schema it was
    /// generated from, for any seed and any generation budget.
    #[test]
    fn generated_instances_validate(seed in 0u64..100_000, depth in 2u32..6) {
        let c = paper_compiled();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig { max_depth: depth as usize, ..GenConfig::default() };
        let doc = generate_instance(&c, "newspaper", &mut rng, &cfg).unwrap();
        validate(&doc, &c)
            .map_err(|e| TestCaseError::fail(format!("invalid instance {doc}: {e}")))?;
    }

    /// The streaming validator agrees with the tree validator on
    /// generated (hence extensional-or-intensional) instances.
    #[test]
    fn stream_and_tree_validators_agree(seed in 0u64..100_000) {
        let c = paper_compiled();
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = generate_instance(&c, "newspaper", &mut rng, &GenConfig::default()).unwrap();
        let tree_verdict = validate(&doc, &c).is_ok();
        let xml = doc.to_xml().to_xml();
        let stream_verdict = validate_xml_stream(&xml, &c).is_ok();
        prop_assert_eq!(tree_verdict, stream_verdict, "validators disagree on {}", xml);
    }

    /// XML round-trips preserve generated instances exactly: generation
    /// never produces adjacent text nodes, so no normalization applies.
    #[test]
    fn generated_instances_roundtrip_via_xml(seed in 0u64..100_000) {
        let c = paper_compiled();
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = generate_instance(&c, "newspaper", &mut rng, &GenConfig::default()).unwrap();
        let xml = doc.to_xml().to_xml();
        let parsed = axml_xml::parse_document(&xml).unwrap();
        let back = ITree::from_xml(&parsed.root).unwrap();
        prop_assert_eq!(back, doc);
    }
}
