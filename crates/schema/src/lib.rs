//! Intensional schemas for Active XML documents.
//!
//! This crate implements the schema layer of *Exchanging Intensional XML
//! Data* (SIGMOD 2003):
//!
//! * the simple `(L, F, P, τ)` document-schema model of Sec. 2 — element
//!   content models, function signatures, function patterns with name
//!   predicates, wildcards, and the invocable/non-invocable partition
//!   (Sec. 2.1) — built through [`Schema::builder`];
//! * the intensional document model of Def. 1 ([`ITree`]) with the XML
//!   encoding of Sec. 7 (`int:fun` elements);
//! * compilation onto a finite *effective alphabet* ([`Compiled`]) so that
//!   every algorithm downstream is a plain finite-automaton construction;
//! * validation (Def. 3) and random instance generation (the `∀ output
//!   instance` adversary of Def. 4);
//! * an **XML Schema_int** front-end ([`xsd::parse_xml_schema`]) accepting
//!   the XML syntax of Sec. 7 (`element`, `complexType`, `sequence`,
//!   `choice`, `function`, `functionPattern`, `any`, `minOccurs` /
//!   `maxOccurs`).
//!
//! ```
//! use axml_schema::{Schema, Compiled, NoOracle, validate, newspaper_example};
//!
//! let schema = Schema::builder()
//!     .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
//!     .data_element("title").data_element("date")
//!     .data_element("temp").data_element("city")
//!     .element("exhibit", "title.(Get_Date|date)")
//!     .data_element("performance")
//!     .function("Get_Temp", "city", "temp")
//!     .function("TimeOut", "data", "(exhibit|performance)*")
//!     .function("Get_Date", "title", "date")
//!     .build().unwrap();
//! let compiled = Compiled::new(schema, &NoOracle).unwrap();
//! validate(&newspaper_example(), &compiled).unwrap();
//! ```

#![warn(missing_docs)]

mod compile;
mod def;
mod doc;
pub mod dsl;
mod generate;
pub mod path;
mod refine;
mod stream;
mod validate;
pub mod xsd;

pub use compile::{Compiled, CompiledContent, SigInfo, SymKind, MAX_PATTERNS};
pub use def::{
    merge, overlay, Content, ElementDef, FunctionDef, NameKind, NoOracle, PatternDef,
    PatternOracle, Predicate, Schema, SchemaBuilder, SchemaError, ANY_ELEMENT, ANY_FUNCTION, DATA,
};
pub use doc::{forest_from_nodes, newspaper_example, FuncNode, ITree, INT_NS};
pub use generate::{
    generate_instance, generate_output_instance, generate_word_instance, GenConfig, GenError,
};
pub use path::{PathError, PathQuery, Step};
pub use refine::{schema_refines, RefineFailure};
pub use stream::{validate_xml_stream, StreamValidator};
pub use validate::{validate, validate_output_instance, words_of};
