//! Streaming validation: check conformance while parsing, without
//! materializing a DOM.
//!
//! The validator runs one content-model DFA per open element (and one
//! input-type DFA per open `int:fun`), advancing on child events — the
//! same single pass a SAX-based implementation of the paper's module makes
//! (the authors' own parser was SAX-based, Sec. 7).

use crate::compile::{Compiled, CompiledContent};
use crate::def::SchemaError;
use crate::doc::INT_NS;
use axml_automata::Dfa;
use axml_xml::{Event, Reader};

enum Frame<'c> {
    /// Inside an element with a regular content model.
    Model {
        label: String,
        dfa: &'c Dfa,
        state: u32,
    },
    /// Inside an atomic (`data`) element: text children only.
    Data { label: String },
    /// Inside wildcard content: everything below is accepted.
    Skip { depth: usize },
    /// Inside an `int:fun` element: runs the input-type DFA over params.
    Fun {
        name: String,
        dfa: &'c Dfa,
        state: u32,
    },
    /// Inside `int:params`.
    Params,
    /// Inside one `int:param` (exactly one tree allowed).
    Param { seen: bool },
}

/// Validates the XML text of an intensional document against `compiled`
/// in a single streaming pass.
pub fn validate_xml_stream(text: &str, compiled: &Compiled) -> Result<(), SchemaError> {
    let mut reader = Reader::new(text);
    let mut v = StreamValidator::new(compiled);
    loop {
        let event = reader.next_event().map_err(|e| SchemaError::Malformed {
            message: e.message,
            line: e.line,
            offset: e.offset,
        })?;
        if !v.feed(&event)? {
            return Ok(());
        }
    }
}

/// Incremental validator; feed it pull-parser events.
pub struct StreamValidator<'c> {
    compiled: &'c Compiled,
    stack: Vec<Frame<'c>>,
}

impl<'c> StreamValidator<'c> {
    /// Creates a validator over a compiled schema.
    pub fn new(compiled: &'c Compiled) -> Self {
        StreamValidator {
            compiled,
            stack: Vec::new(),
        }
    }

    fn invalid(message: impl Into<String>) -> SchemaError {
        SchemaError::Invalid {
            message: message.into(),
        }
    }

    /// Advances the innermost word consumer by one symbol.
    fn consume_symbol(&mut self, sym: axml_automata::Symbol) -> Result<(), SchemaError> {
        match self.stack.last_mut() {
            None => Ok(()), // the root itself is not part of any word
            Some(Frame::Skip { .. }) => Ok(()),
            Some(Frame::Model { label, dfa, state }) => {
                let next = dfa.next(*state, sym);
                if next == axml_automata::NO_STATE {
                    return Err(Self::invalid(format!(
                        "unexpected '{}' in content of '{label}'",
                        self.compiled.alphabet().name(sym)
                    )));
                }
                *state = next;
                Ok(())
            }
            Some(Frame::Data { label }) => Err(Self::invalid(format!(
                "'{label}' is atomic but has structured children"
            ))),
            Some(Frame::Fun { name, .. }) => Err(Self::invalid(format!(
                "only int:params is allowed directly inside the call to '{name}'"
            ))),
            Some(Frame::Params) => {
                Err(Self::invalid("only int:param is allowed inside int:params"))
            }
            Some(Frame::Param { seen }) => {
                if *seen {
                    return Err(Self::invalid("int:param must hold a single tree"));
                }
                *seen = true;
                // The symbol belongs to the enclosing function's input word.
                let fun_pos = self
                    .stack
                    .iter()
                    .rposition(|f| matches!(f, Frame::Fun { .. }))
                    .ok_or_else(|| Self::invalid("int:param outside int:fun"))?;
                if let Frame::Fun { name, dfa, state } = &mut self.stack[fun_pos] {
                    let next = dfa.next(*state, sym);
                    if next == axml_automata::NO_STATE {
                        return Err(Self::invalid(format!(
                            "parameters of '{name}' do not match its input type"
                        )));
                    }
                    *state = next;
                }
                Ok(())
            }
        }
    }

    /// Processes one event; returns `false` once the document is complete
    /// and valid.
    pub fn feed(&mut self, event: &Event) -> Result<bool, SchemaError> {
        match event {
            Event::StartElement {
                name, attributes, ..
            } => {
                // The reader emits a synthetic EndElement after
                // self-closing tags, so frames are always pushed here and
                // always popped there.
                // Inside wildcard content everything is accepted.
                if let Some(Frame::Skip { depth }) = self.stack.last_mut() {
                    *depth += 1;
                    return Ok(true);
                }
                if name.matches(INT_NS, "fun") {
                    let method = attributes
                        .iter()
                        .find(|a| a.name.local == "methodName")
                        .map(|a| a.value.clone())
                        .ok_or_else(|| Self::invalid("int:fun without methodName"))?;
                    let sym = self.compiled.classify_func(&method);
                    self.consume_symbol(sym)?;
                    let sig = self
                        .compiled
                        .sig(sym)
                        .expect("function symbols carry signatures");
                    self.stack.push(Frame::Fun {
                        name: method,
                        dfa: &sig.input_dfa,
                        state: sig.input_dfa.start,
                    });
                    return Ok(true);
                }
                if name.matches(INT_NS, "params") {
                    if !matches!(self.stack.last(), Some(Frame::Fun { .. })) {
                        return Err(Self::invalid("int:params outside int:fun"));
                    }
                    self.stack.push(Frame::Params);
                    return Ok(true);
                }
                if name.matches(INT_NS, "param") {
                    if !matches!(self.stack.last(), Some(Frame::Params)) {
                        return Err(Self::invalid("int:param outside int:params"));
                    }
                    self.stack.push(Frame::Param { seen: false });
                    return Ok(true);
                }
                // An ordinary element.
                let sym = self.compiled.classify_label(&name.local);
                self.consume_symbol(sym)?;
                let content = self
                    .compiled
                    .content(sym)
                    .ok_or_else(|| Self::invalid(format!("unknown element '{}'", name.local)))?;
                let frame = match content {
                    CompiledContent::Data => Frame::Data {
                        label: name.local.clone(),
                    },
                    CompiledContent::Any => Frame::Skip { depth: 0 },
                    CompiledContent::Model { dfa, .. } => Frame::Model {
                        label: name.local.clone(),
                        dfa,
                        state: dfa.start,
                    },
                };
                self.stack.push(frame);
                Ok(true)
            }
            Event::EndElement { .. } => {
                match self.stack.last_mut() {
                    Some(Frame::Skip { depth }) if *depth > 0 => {
                        *depth -= 1;
                        return Ok(true);
                    }
                    _ => {}
                }
                let frame = self
                    .stack
                    .pop()
                    .ok_or_else(|| Self::invalid("unbalanced end element"))?;
                match frame {
                    Frame::Model { label, dfa, state } => {
                        if !dfa.finals[state as usize] {
                            return Err(Self::invalid(format!(
                                "children of '{label}' stop before the content model is satisfied"
                            )));
                        }
                    }
                    Frame::Fun { name, dfa, state } => {
                        if !dfa.finals[state as usize] {
                            return Err(Self::invalid(format!(
                                "parameters of '{name}' stop before the input type is satisfied"
                            )));
                        }
                    }
                    Frame::Param { seen } => {
                        if !seen {
                            return Err(Self::invalid("empty int:param"));
                        }
                    }
                    Frame::Data { .. } | Frame::Skip { .. } | Frame::Params => {}
                }
                Ok(!self.stack.is_empty())
            }
            Event::Text(t) => {
                if t.trim().is_empty() {
                    return Ok(true);
                }
                match self.stack.last_mut() {
                    Some(Frame::Data { .. }) | Some(Frame::Skip { .. }) | None => Ok(true),
                    Some(Frame::Param { .. }) | Some(Frame::Model { .. }) => {
                        let data = self.compiled.data_sym();
                        self.consume_symbol(data)?;
                        Ok(true)
                    }
                    Some(Frame::Fun { .. }) | Some(Frame::Params) => Err(Self::invalid(
                        "text is not allowed between int:fun wrappers",
                    )),
                }
            }
            Event::Comment(_) | Event::Pi { .. } => Ok(true),
            Event::Eof => {
                if self.stack.is_empty() {
                    Ok(false)
                } else {
                    Err(Self::invalid("document ended with open elements"))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{NoOracle, Schema};
    use crate::doc::newspaper_example;
    use crate::generate::{generate_instance, GenConfig};
    use crate::validate::validate;
    use axml_support::rng::SeedableRng;

    fn paper_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    #[test]
    fn streams_the_paper_document() {
        let c = paper_compiled();
        let xml = newspaper_example().to_xml().to_pretty_xml();
        validate_xml_stream(&xml, &c).unwrap();
    }

    #[test]
    fn agrees_with_dom_validation_on_random_instances() {
        let c = paper_compiled();
        let mut rng = axml_support::rng::StdRng::seed_from_u64(77);
        for _ in 0..100 {
            let doc = generate_instance(&c, "newspaper", &mut rng, &GenConfig::default()).unwrap();
            let xml = doc.to_xml().to_pretty_xml();
            assert!(validate(&doc, &c).is_ok());
            validate_xml_stream(&xml, &c)
                .unwrap_or_else(|e| panic!("stream rejected valid doc {doc}: {e}"));
        }
    }

    #[test]
    fn rejects_what_dom_validation_rejects() {
        let c = paper_compiled();
        // Wrong order.
        let bad = "<newspaper><date>d</date><title>t</title><temp>1</temp></newspaper>";
        assert!(validate_xml_stream(bad, &c).is_err());
        // Missing mandatory children.
        assert!(validate_xml_stream("<newspaper><title>t</title></newspaper>", &c).is_err());
        // Unknown element.
        assert!(validate_xml_stream("<mystery/>", &c).is_err());
        // Structured children under data element.
        assert!(validate_xml_stream("<newspaper><title><b>t</b></title></newspaper>", &c).is_err());
        // Empty element whose model demands content.
        assert!(validate_xml_stream("<newspaper/>", &c).is_err());
    }

    #[test]
    fn validates_function_parameters_in_stream() {
        let c = paper_compiled();
        // Get_Temp with a date parameter instead of city.
        let bad = r#"<newspaper xmlns:int="http://www.activexml.com/ns/int">
            <title>t</title><date>d</date>
            <int:fun methodName="Get_Temp">
              <int:params><int:param><date>x</date></int:param></int:params>
            </int:fun>
            <int:fun methodName="TimeOut">
              <int:params><int:param>all</int:param></int:params>
            </int:fun>
        </newspaper>"#;
        let err = validate_xml_stream(bad, &c).unwrap_err();
        assert!(err.to_string().contains("Get_Temp"), "{err}");
        // Same but correct city parameter.
        let good = bad.replace("<date>x</date>", "<city>Paris</city>");
        validate_xml_stream(&good, &c).unwrap();
    }

    #[test]
    fn malformed_intensional_markup_rejected() {
        let c = paper_compiled();
        let no_method = r#"<newspaper xmlns:int="http://www.activexml.com/ns/int">
            <title>t</title><date>d</date><int:fun/></newspaper>"#;
        assert!(validate_xml_stream(no_method, &c).is_err());
        let stray_param = r#"<newspaper xmlns:int="http://www.activexml.com/ns/int">
            <title>t</title><date>d</date><temp>1</temp>
            <int:param><city>x</city></int:param></newspaper>"#;
        assert!(validate_xml_stream(stray_param, &c).is_err());
        let two_trees = r#"<newspaper xmlns:int="http://www.activexml.com/ns/int">
            <title>t</title><date>d</date>
            <int:fun methodName="Get_Temp">
              <int:params><int:param><city>a</city><city>b</city></int:param></int:params>
            </int:fun><temp>u</temp></newspaper>"#;
        assert!(validate_xml_stream(two_trees, &c).is_err());
    }

    #[test]
    fn wildcard_subtrees_skipped() {
        let c = Compiled::new(
            Schema::builder()
                .element("r", "blob.a")
                .any_element("blob")
                .data_element("a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let xml = "<r><blob><x><y>deep</y></x><z/></blob><a>1</a></r>";
        validate_xml_stream(xml, &c).unwrap();
        // The wildcard does not leak: 'a' is still required after blob.
        assert!(validate_xml_stream("<r><blob><x/></blob></r>", &c).is_err());
    }
}
