//! Intensional documents (Def. 1 of the paper).
//!
//! An intensional document is an ordered labeled tree with two node kinds:
//! *data* nodes (elements and text) and *function* nodes (embedded service
//! calls). Function nodes carry the call parameters as their children.
//!
//! The XML encoding follows Sec. 7 of the paper: a function node is an
//! element `int:fun` in the namespace [`INT_NS`] with `methodName`,
//! `endpointURL` and `namespaceURI` attributes, and its parameters wrapped
//! in `int:params`/`int:param`.

use axml_xml::{Element, Node};
use std::fmt;

/// The namespace used to mark intensional (function-call) elements.
pub const INT_NS: &str = "http://www.activexml.com/ns/int";

/// A service-call node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncNode {
    /// The operation name (identifies the Web service operation).
    pub name: String,
    /// SOAP endpoint URL, if known.
    pub endpoint: Option<String>,
    /// SOAP namespace URI, if known.
    pub namespace: Option<String>,
    /// Call parameters — themselves intensional trees.
    pub params: Vec<ITree>,
}

/// An intensional tree: element, text, or embedded function call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ITree {
    /// A data element with a label and ordered children.
    Elem {
        /// The element label.
        label: String,
        /// Ordered children.
        children: Vec<ITree>,
    },
    /// A text leaf (an atomic data value in `𝒟`).
    Text(String),
    /// A function node (a square node in the paper's figures).
    Func(FuncNode),
}

impl ITree {
    /// Creates an element node.
    pub fn elem(label: &str, children: Vec<ITree>) -> Self {
        ITree::Elem {
            label: label.to_owned(),
            children,
        }
    }

    /// Creates an element node holding a single text child.
    pub fn data(label: &str, text: &str) -> Self {
        ITree::elem(label, vec![ITree::text(text)])
    }

    /// Creates a text leaf.
    pub fn text(t: &str) -> Self {
        ITree::Text(t.to_owned())
    }

    /// Creates a function node with parameters.
    pub fn func(name: &str, params: Vec<ITree>) -> Self {
        ITree::Func(FuncNode {
            name: name.to_owned(),
            endpoint: None,
            namespace: None,
            params,
        })
    }

    /// The element label or function name, if the node has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            ITree::Elem { label, .. } => Some(label),
            ITree::Func(f) => Some(&f.name),
            ITree::Text(_) => None,
        }
    }

    /// True if this is a function node.
    pub fn is_func(&self) -> bool {
        matches!(self, ITree::Func(_))
    }

    /// Children of an element, parameters of a function, empty for text.
    pub fn children(&self) -> &[ITree] {
        match self {
            ITree::Elem { children, .. } => children,
            ITree::Func(f) => &f.params,
            ITree::Text(_) => &[],
        }
    }

    /// Mutable children/parameters.
    pub fn children_mut(&mut self) -> Option<&mut Vec<ITree>> {
        match self {
            ITree::Elem { children, .. } => Some(children),
            ITree::Func(f) => Some(&mut f.params),
            ITree::Text(_) => None,
        }
    }

    /// Total number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(ITree::size).sum::<usize>()
    }

    /// Number of function nodes in the subtree.
    pub fn num_funcs(&self) -> usize {
        let own = usize::from(self.is_func());
        own + self.children().iter().map(ITree::num_funcs).sum::<usize>()
    }

    /// Maximum nesting depth of function nodes within function parameters.
    pub fn func_nesting(&self) -> usize {
        let below = self
            .children()
            .iter()
            .map(ITree::func_nesting)
            .max()
            .unwrap_or(0);
        if self.is_func() {
            below + 1
        } else {
            below
        }
    }

    /// Depth-first pre-order visit of every node.
    pub fn visit(&self, f: &mut impl FnMut(&ITree)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Encodes the tree as XML (Sec. 7 encoding for function nodes).
    pub fn to_xml(&self) -> Element {
        match self {
            ITree::Elem { label, children } => {
                let mut e = Element::new(label);
                for c in children {
                    push_xml(&mut e, c);
                }
                e
            }
            ITree::Text(t) => {
                // A bare text tree is wrapped when used as a root; callers
                // normally encode under an element.
                Element::new("text").text(t)
            }
            ITree::Func(f) => func_to_xml(f),
        }
    }

    /// Decodes from XML, recognizing `int:fun` elements as function nodes.
    pub fn from_xml(e: &Element) -> Result<ITree, String> {
        if e.name.matches(INT_NS, "fun") {
            return Ok(ITree::Func(func_from_xml(e)?));
        }
        Ok(ITree::Elem {
            label: e.name.local.clone(),
            children: forest_from_nodes(&e.children)?,
        })
    }
}

/// Decodes a DOM child list the way [`ITree::from_xml`] treats element
/// content: elements recurse (recognizing `int:fun`), text is trimmed and
/// dropped when whitespace-only, comments and PIs vanish. Exposed so the
/// streaming enforcer can materialize a tail forest with identical
/// normalization to the DOM path.
pub fn forest_from_nodes(nodes: &[Node]) -> Result<Vec<ITree>, String> {
    let mut children = Vec::new();
    for c in nodes {
        match c {
            Node::Element(el) => children.push(ITree::from_xml(el)?),
            Node::Text(t) => {
                let trimmed = t.trim();
                if !trimmed.is_empty() {
                    children.push(ITree::text(trimmed));
                }
            }
            Node::Comment(_) | Node::Pi { .. } => {}
        }
    }
    Ok(children)
}

impl fmt::Display for ITree {
    /// Compact term-like rendering used in tests and logs:
    /// `newspaper[title["The Sun"], Get_Temp!(city["Paris"])]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ITree::Text(t) => write!(f, "{t:?}"),
            ITree::Elem { label, children } => {
                write!(f, "{label}")?;
                write_children(f, children)
            }
            ITree::Func(fun) => {
                write!(f, "{}!", fun.name)?;
                if fun.params.is_empty() {
                    Ok(())
                } else {
                    write!(f, "(")?;
                    for (i, p) in fun.params.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, ")")
                }
            }
        }
    }
}

fn write_children(f: &mut fmt::Formatter<'_>, children: &[ITree]) -> fmt::Result {
    if children.is_empty() {
        return Ok(());
    }
    write!(f, "[")?;
    for (i, c) in children.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{c}")?;
    }
    write!(f, "]")
}

fn push_xml(parent: &mut Element, tree: &ITree) {
    match tree {
        ITree::Text(t) => parent.children.push(Node::Text(t.clone())),
        other => parent.children.push(Node::Element(other.to_xml())),
    }
}

fn func_to_xml(f: &FuncNode) -> Element {
    let mut e = Element::with_ns("int", "fun", INT_NS)
        .xmlns("int", INT_NS)
        .attr("methodName", &f.name);
    if let Some(url) = &f.endpoint {
        e = e.attr("endpointURL", url);
    }
    if let Some(ns) = &f.namespace {
        e = e.attr("namespaceURI", ns);
    }
    if !f.params.is_empty() {
        let mut params = Element::with_ns("int", "params", INT_NS);
        for p in &f.params {
            let mut param = Element::with_ns("int", "param", INT_NS);
            push_xml(&mut param, p);
            params.children.push(Node::Element(param));
        }
        e.children.push(Node::Element(params));
    }
    e
}

fn func_from_xml(e: &Element) -> Result<FuncNode, String> {
    let name = e
        .attribute("methodName")
        .ok_or("int:fun element is missing methodName")?
        .to_owned();
    let mut params = Vec::new();
    for c in e.child_elements() {
        if c.name.matches(INT_NS, "params") {
            for p in c.child_elements() {
                if !p.name.matches(INT_NS, "param") {
                    return Err(format!("unexpected element '{}' inside int:params", p.name));
                }
                // A param holds exactly one tree: an element or bare text.
                let elems: Vec<_> = p.child_elements().collect();
                match elems.len() {
                    0 => {
                        let t = p.text_content();
                        if t.is_empty() {
                            return Err("empty int:param".to_owned());
                        }
                        params.push(ITree::Text(t));
                    }
                    1 => params.push(ITree::from_xml(elems[0])?),
                    _ => return Err("int:param must hold a single tree".to_owned()),
                }
            }
        } else {
            return Err(format!("unexpected element '{}' inside int:fun", c.name));
        }
    }
    Ok(FuncNode {
        name,
        endpoint: e.attribute("endpointURL").map(str::to_owned),
        namespace: e.attribute("namespaceURI").map(str::to_owned),
        params,
    })
}

/// Builds the paper's running example: the newspaper document of Fig. 2.a.
pub fn newspaper_example() -> ITree {
    ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", "The Sun"),
            ITree::data("date", "04/10/2002"),
            ITree::func("Get_Temp", vec![ITree::data("city", "Paris")]),
            ITree::func("TimeOut", vec![ITree::text("exhibits")]),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::parse_document;

    #[test]
    fn builders_and_accessors() {
        let doc = newspaper_example();
        assert_eq!(doc.name(), Some("newspaper"));
        assert_eq!(doc.children().len(), 4);
        assert_eq!(doc.num_funcs(), 2);
        assert_eq!(doc.func_nesting(), 1);
        assert_eq!(doc.size(), 10);
        let mut labels = Vec::new();
        doc.visit(&mut |n| {
            if let Some(n) = n.name() {
                labels.push(n.to_owned());
            }
        });
        assert_eq!(labels[0], "newspaper");
        assert!(labels.contains(&"Get_Temp".to_owned()));
    }

    #[test]
    fn display_is_compact() {
        let doc = newspaper_example();
        let s = doc.to_string();
        assert!(s.starts_with("newspaper[title["));
        assert!(s.contains("Get_Temp!(city["));
    }

    #[test]
    fn xml_roundtrip() {
        let doc = newspaper_example();
        let xml = doc.to_xml();
        let text = xml.to_pretty_xml();
        let parsed = parse_document(&text).unwrap();
        let back = ITree::from_xml(&parsed.root).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn paper_xml_decodes_to_function_nodes() {
        // Sec. 7 document (with corrected end tags).
        let text = r#"<newspaper xmlns:int="http://www.activexml.com/ns/int">
  <title> The Sun </title>
  <date> 04/10/2002 </date>
  <int:fun endpointURL="http://www.forecast.com/soap" methodName="Get_Temp"
           namespaceURI="urn:xmethods-weather">
    <int:params><int:param><city>Paris</city></int:param></int:params>
  </int:fun>
  <int:fun endpointURL="http://www.timeout.com/paris" methodName="TimeOut"
           namespaceURI="urn:timeout-program">
    <int:params><int:param> exhibits </int:param></int:params>
  </int:fun>
</newspaper>"#;
        let parsed = parse_document(text).unwrap();
        let tree = ITree::from_xml(&parsed.root).unwrap();
        assert_eq!(tree.num_funcs(), 2);
        match &tree.children()[2] {
            ITree::Func(f) => {
                assert_eq!(f.name, "Get_Temp");
                assert_eq!(f.endpoint.as_deref(), Some("http://www.forecast.com/soap"));
                assert_eq!(f.params.len(), 1);
                assert_eq!(f.params[0].name(), Some("city"));
            }
            other => panic!("expected function node, got {other}"),
        }
        match &tree.children()[3] {
            ITree::Func(f) => {
                assert_eq!(f.params[0], ITree::text("exhibits"));
            }
            other => panic!("expected function node, got {other}"),
        }
    }

    #[test]
    fn nested_function_params_roundtrip() {
        let doc = ITree::elem(
            "r",
            vec![ITree::func(
                "outer",
                vec![ITree::elem(
                    "wrap",
                    vec![ITree::func("inner", vec![ITree::text("x")])],
                )],
            )],
        );
        assert_eq!(doc.func_nesting(), 2);
        let xml = doc.to_xml().to_xml();
        let back = ITree::from_xml(&parse_document(&xml).unwrap().root).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn malformed_int_fun_rejected() {
        let bad = r#"<r xmlns:int="http://www.activexml.com/ns/int"><int:fun/></r>"#;
        let parsed = parse_document(bad).unwrap();
        assert!(ITree::from_xml(&parsed.root).is_err());

        let bad2 = r#"<r xmlns:int="http://www.activexml.com/ns/int">
            <int:fun methodName="f"><int:params><int:param/></int:params></int:fun></r>"#;
        let parsed = parse_document(bad2).unwrap();
        assert!(ITree::from_xml(&parsed.root).is_err());
    }
}
