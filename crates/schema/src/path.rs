//! A small path-query language over intensional trees.
//!
//! The paper's peers provide "some Web services, defined declaratively as
//! queries/updates on top of the repository documents" (Sec. 7). This
//! module supplies the query language: an XPath-flavored subset that is
//! enough to express the document/children/filter services the examples
//! need, while staying aware of intensional nodes (`call(name)` steps
//! select embedded service calls).
//!
//! Grammar:
//!
//! ```text
//! path  := step ('/' step)*
//! step  := '/'? axis
//! axis  := label            -- child element with that label
//!        | '*'              -- any child element
//!        | '**'             -- any descendant element (self excluded)
//!        | 'text()'         -- text children
//!        | 'call(name)'     -- embedded calls to `name`
//!        | 'call(*)'        -- any embedded call
//! ```
//!
//! `newspaper/exhibit/title` selects the titles of all exhibits;
//! `**/call(*)` selects every embedded call in the document.

use crate::doc::ITree;
use std::fmt;

/// One step of a path query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Child elements with this label.
    Child(String),
    /// Any child element.
    AnyChild,
    /// Any descendant element (strict).
    Descendant,
    /// Text children.
    Text,
    /// Embedded calls with this name (`None` = any call).
    Call(Option<String>),
}

/// A parsed path query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathQuery {
    steps: Vec<Step>,
}

/// Path parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathError(pub String);

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path query error: {}", self.0)
    }
}

impl std::error::Error for PathError {}

impl PathQuery {
    /// Parses a path expression.
    pub fn parse(text: &str) -> Result<PathQuery, PathError> {
        let text = text.trim().trim_start_matches('/');
        if text.is_empty() {
            return Err(PathError("empty path".to_owned()));
        }
        let mut steps = Vec::new();
        for part in text.split('/') {
            let part = part.trim();
            let step = match part {
                "" => return Err(PathError("empty step ('//' is written '**')".to_owned())),
                "*" => Step::AnyChild,
                "**" => Step::Descendant,
                "text()" => Step::Text,
                _ => {
                    if let Some(inner) = part.strip_prefix("call(") {
                        let name = inner
                            .strip_suffix(')')
                            .ok_or_else(|| PathError(format!("unterminated call step '{part}'")))?;
                        if name == "*" {
                            Step::Call(None)
                        } else {
                            Step::Call(Some(name.to_owned()))
                        }
                    } else if part
                        .chars()
                        .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))
                    {
                        Step::Child(part.to_owned())
                    } else {
                        return Err(PathError(format!("malformed step '{part}'")));
                    }
                }
            };
            steps.push(step);
        }
        Ok(PathQuery { steps })
    }

    /// The parsed steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Evaluates the query against `root`, returning matching nodes in
    /// document order. The first step matches against the root itself when
    /// it is a `Child` step naming the root's label (XPath-like absolute
    /// paths), and against the root's children otherwise.
    pub fn select<'t>(&self, root: &'t ITree) -> Vec<&'t ITree> {
        // Current frontier of context nodes.
        let mut frontier: Vec<&'t ITree> = Vec::new();
        let mut steps = self.steps.as_slice();
        // Absolute-style head: `newspaper/...` rooted at a newspaper node.
        match steps.first() {
            Some(Step::Child(label)) if root.name() == Some(label) && !root.is_func() => {
                frontier.push(root);
                steps = &steps[1..];
            }
            _ => frontier.push(root),
        }
        for step in steps {
            let mut next: Vec<&'t ITree> = Vec::new();
            for node in frontier {
                match step {
                    Step::Child(label) => next.extend(
                        node.children()
                            .iter()
                            .filter(|c| !c.is_func() && c.name() == Some(label)),
                    ),
                    Step::AnyChild => next.extend(
                        node.children()
                            .iter()
                            .filter(|c| matches!(c, ITree::Elem { .. })),
                    ),
                    Step::Descendant => collect_descendants(node, &mut next),
                    Step::Text => next.extend(
                        node.children()
                            .iter()
                            .filter(|c| matches!(c, ITree::Text(_))),
                    ),
                    Step::Call(name) => next.extend(node.children().iter().filter(|c| match c {
                        ITree::Func(f) => name.as_deref().is_none_or(|n| n == f.name),
                        _ => false,
                    })),
                }
            }
            frontier = next;
        }
        frontier
    }

    /// Convenience: evaluates and clones the matches into a forest.
    pub fn select_cloned(&self, root: &ITree) -> Vec<ITree> {
        self.select(root).into_iter().cloned().collect()
    }
}

fn collect_descendants<'t>(node: &'t ITree, out: &mut Vec<&'t ITree>) {
    for c in node.children() {
        if matches!(c, ITree::Elem { .. }) {
            out.push(c);
        }
        collect_descendants(c, out);
    }
}

impl fmt::Display for PathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            match s {
                Step::Child(l) => write!(f, "{l}")?,
                Step::AnyChild => write!(f, "*")?,
                Step::Descendant => write!(f, "**")?,
                Step::Text => write!(f, "text()")?,
                Step::Call(Some(n)) => write!(f, "call({n})")?,
                Step::Call(None) => write!(f, "call(*)")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::newspaper_example;

    fn doc() -> ITree {
        ITree::elem(
            "newspaper",
            vec![
                ITree::data("title", "The Sun"),
                ITree::data("date", "04/10/2002"),
                ITree::data("temp", "15 C"),
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
                ),
                ITree::elem(
                    "exhibit",
                    vec![
                        ITree::data("title", "Rodin"),
                        ITree::func("Get_Date", vec![ITree::data("title", "Rodin")]),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn child_steps() {
        let q = PathQuery::parse("newspaper/exhibit/title").unwrap();
        let d = doc();
        let hits = q.select(&d);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].text_first(), Some("Monet"));
        assert_eq!(hits[1].text_first(), Some("Rodin"));
    }

    impl ITree {
        /// Test helper: first text child.
        fn text_first(&self) -> Option<&str> {
            self.children().iter().find_map(|c| match c {
                ITree::Text(t) => Some(t.as_str()),
                _ => None,
            })
        }
    }

    #[test]
    fn relative_head_matches_children() {
        // Without the absolute head, 'exhibit' matches the root's children.
        let q = PathQuery::parse("exhibit").unwrap();
        assert_eq!(q.select(&doc()).len(), 2);
    }

    #[test]
    fn wildcard_and_descendant() {
        let q = PathQuery::parse("newspaper/*").unwrap();
        assert_eq!(q.select(&doc()).len(), 5);
        let q = PathQuery::parse("**").unwrap();
        // All descendant elements: 5 children + 4 grandchildren elements.
        assert_eq!(q.select(&doc()).len(), 9);
        let q = PathQuery::parse("**/title").unwrap();
        // Titles under any descendant: the two exhibit titles.
        assert_eq!(q.select(&doc()).len(), 2);
    }

    #[test]
    fn text_step() {
        let q = PathQuery::parse("newspaper/title/text()").unwrap();
        let d = doc();
        let hits = q.select(&d);
        assert_eq!(hits, vec![&ITree::text("The Sun")]);
    }

    #[test]
    fn call_steps() {
        let q = PathQuery::parse("newspaper/exhibit/call(Get_Date)").unwrap();
        assert_eq!(q.select(&doc()).len(), 1);
        let q = PathQuery::parse("newspaper/exhibit/call(*)").unwrap();
        assert_eq!(q.select(&doc()).len(), 1);
        let q = PathQuery::parse("newspaper/call(*)").unwrap();
        assert_eq!(q.select(&doc()).len(), 0);
        // The Fig. 2 document has two top-level calls.
        let q = PathQuery::parse("newspaper/call(*)").unwrap();
        assert_eq!(q.select(&newspaper_example()).len(), 2);
    }

    #[test]
    fn display_roundtrip() {
        for text in [
            "newspaper/exhibit/title",
            "**/call(*)",
            "a/*/text()",
            "x/call(Get_Temp)",
        ] {
            let q = PathQuery::parse(text).unwrap();
            assert_eq!(PathQuery::parse(&q.to_string()).unwrap(), q);
        }
    }

    #[test]
    fn errors() {
        assert!(PathQuery::parse("").is_err());
        assert!(PathQuery::parse("a//b").is_err());
        assert!(PathQuery::parse("call(x").is_err());
        assert!(PathQuery::parse("a/<bad>").is_err());
    }
}
