//! A textual schema language mirroring the paper's notation.
//!
//! The paper writes schemas as equations (Sec. 2):
//!
//! ```text
//! element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
//! element title     = data
//! element exhibit   = title.(Get_Date | date)
//! function Get_Temp : city -> temp
//! function TimeOut  : data -> (exhibit | performance)*   [non-invocable]
//! pattern Forecast  [UDDIF && InACL] : city -> temp
//! root newspaper
//! ```
//!
//! Lines starting with `#` (or `//`) are comments. Element content `data`
//! declares an atomic element, `ANYTREE` a wildcard subtree. Pattern
//! predicates between `[` `]` combine names with `&&`, `||` and `!`:
//! `prefix(Get_)` and `in(a,b,c)` are built in, any other bare name is an
//! external predicate resolved through a
//! [`PatternOracle`](crate::PatternOracle).

use crate::def::{Predicate, Schema, SchemaBuilder, SchemaError};

fn err(line_no: usize, message: impl Into<String>) -> SchemaError {
    SchemaError::Parse {
        context: format!("schema DSL line {line_no}"),
        message: message.into(),
    }
}

/// Parses the textual schema language into a [`Schema`].
pub fn parse_schema_dsl(text: &str) -> Result<Schema, SchemaError> {
    let mut builder = Schema::builder();
    let mut root: Option<String> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let (keyword, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(line_no, format!("incomplete declaration '{line}'")))?;
        let rest = rest.trim();
        builder = match keyword {
            "element" => parse_element(builder, rest, line_no)?,
            "function" => parse_function(builder, rest, line_no, false)?,
            "pattern" => parse_function(builder, rest, line_no, true)?,
            "root" => {
                root = Some(rest.to_owned());
                builder
            }
            other => return Err(err(line_no, format!("unknown keyword '{other}'"))),
        };
    }
    if let Some(r) = root {
        builder = builder.root(&r);
    }
    builder.build()
}

fn parse_element(
    builder: SchemaBuilder,
    rest: &str,
    line_no: usize,
) -> Result<SchemaBuilder, SchemaError> {
    let (name, model) = rest
        .split_once('=')
        .ok_or_else(|| err(line_no, "element declarations need '= <content model>'"))?;
    let name = name.trim();
    let model = model.trim();
    Ok(match model {
        "data" => builder.data_element(name),
        "ANYTREE" => builder.any_element(name),
        _ => builder.element(name, model),
    })
}

fn parse_function(
    builder: SchemaBuilder,
    rest: &str,
    line_no: usize,
    is_pattern: bool,
) -> Result<SchemaBuilder, SchemaError> {
    // name [predicate]? : input -> output [non-invocable]?
    let (head, sig) = rest
        .split_once(':')
        .ok_or_else(|| err(line_no, "signatures need ': <input> -> <output>'"))?;
    let head = head.trim();
    let (name, predicate) = match head.split_once('[') {
        Some((n, p)) => {
            let p = p
                .strip_suffix(']')
                .ok_or_else(|| err(line_no, "unterminated '[' in predicate"))?;
            (n.trim(), Some(parse_predicate(p.trim(), line_no)?))
        }
        None => (head, None),
    };
    let mut sig = sig.trim();
    let mut invocable = true;
    if let Some(stripped) = sig.strip_suffix("[non-invocable]") {
        sig = stripped.trim();
        invocable = false;
    }
    let (input, output) = sig
        .split_once("->")
        .ok_or_else(|| err(line_no, "signatures need '->' between input and output"))?;
    let input = normalize_type(input.trim());
    let output = normalize_type(output.trim());
    if is_pattern {
        let predicate = predicate.unwrap_or(Predicate::True);
        let b = builder.pattern(name, predicate, &input, &output);
        Ok(if invocable { b } else { b.non_invocable(name) })
    } else {
        if predicate.is_some() {
            return Err(err(line_no, "only patterns take a [predicate]"));
        }
        Ok(if invocable {
            builder.function(name, &input, &output)
        } else {
            builder.non_invocable_function(name, &input, &output)
        })
    }
}

/// `()` denotes the empty input in the paper (`() -> temp`).
fn normalize_type(t: &str) -> String {
    if t == "()" {
        String::new()
    } else {
        t.to_owned()
    }
}

/// Predicate grammar: `||` (lowest), `&&`, `!`, atoms
/// `prefix(P)` / `in(a,b,…)` / `true` / external name.
fn parse_predicate(text: &str, line_no: usize) -> Result<Predicate, SchemaError> {
    let mut parser = PredParser {
        input: text,
        pos: 0,
        line_no,
    };
    let p = parser.or_expr()?;
    parser.skip_ws();
    if parser.pos < parser.input.len() {
        return Err(err(line_no, "trailing input in predicate"));
    }
    Ok(p)
}

struct PredParser<'a> {
    input: &'a str,
    pos: usize,
    line_no: usize,
}

impl PredParser<'_> {
    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(' ') {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn or_expr(&mut self) -> Result<Predicate, SchemaError> {
        let mut parts = vec![self.and_expr()?];
        while self.eat("||") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Predicate::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Predicate, SchemaError> {
        let mut parts = vec![self.atom()?];
        while self.eat("&&") {
            parts.push(self.atom()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Predicate::And(parts)
        })
    }

    fn atom(&mut self) -> Result<Predicate, SchemaError> {
        self.skip_ws();
        if self.eat("!") {
            return Ok(Predicate::Not(Box::new(self.atom()?)));
        }
        if self.eat("(") {
            let inner = self.or_expr()?;
            if !self.eat(")") {
                return Err(err(self.line_no, "expected ')' in predicate"));
            }
            return Ok(inner);
        }
        let rest = &self.input[self.pos..];
        let end = rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-'))
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(err(self.line_no, "expected a predicate atom"));
        }
        let name = &rest[..end];
        self.pos += end;
        if self.eat("(") {
            let args_end = self.input[self.pos..]
                .find(')')
                .ok_or_else(|| err(self.line_no, "unterminated predicate arguments"))?;
            let args = &self.input[self.pos..self.pos + args_end];
            self.pos += args_end + 1;
            match name {
                "prefix" => Ok(Predicate::NamePrefix(args.trim().to_owned())),
                "in" => Ok(Predicate::NameIn(
                    args.split(',').map(|s| s.trim().to_owned()).collect(),
                )),
                other => Err(err(
                    self.line_no,
                    format!("unknown predicate function '{other}'"),
                )),
            }
        } else if name == "true" {
            Ok(Predicate::True)
        } else {
            Ok(Predicate::External(name.to_owned()))
        }
    }
}

/// Renders a schema back into the DSL (round-trips with
/// [`parse_schema_dsl`]).
pub fn write_schema_dsl(schema: &Schema) -> String {
    use crate::def::Content;
    let mut out = String::new();
    for e in schema.elements.values() {
        let model = match &e.content {
            Content::Data => "data".to_owned(),
            Content::Any => "ANYTREE".to_owned(),
            Content::Model(re) => {
                let shown = re.display(&schema.alphabet).to_string();
                if shown.is_empty() {
                    "()".to_owned()
                } else {
                    shown
                }
            }
        };
        out.push_str(&format!("element {} = {}\n", e.name, model));
    }
    for f in schema.functions.values() {
        out.push_str(&format!(
            "function {} : {} -> {}{}\n",
            f.name,
            type_str(&f.input, schema),
            type_str(&f.output, schema),
            if f.invocable { "" } else { " [non-invocable]" }
        ));
    }
    for p in schema.patterns.values() {
        out.push_str(&format!(
            "pattern {} [{}] : {} -> {}{}\n",
            p.name,
            predicate_str(&p.predicate),
            type_str(&p.input, schema),
            type_str(&p.output, schema),
            if p.invocable { "" } else { " [non-invocable]" }
        ));
    }
    if let Some(r) = &schema.root {
        out.push_str(&format!("root {r}\n"));
    }
    out
}

fn type_str(re: &axml_automata::Regex, schema: &Schema) -> String {
    let shown = re.display(&schema.alphabet).to_string();
    if shown == "ε" || shown.is_empty() {
        "()".to_owned()
    } else {
        shown
    }
}

fn predicate_str(p: &Predicate) -> String {
    match p {
        Predicate::True => "true".to_owned(),
        Predicate::NamePrefix(s) => format!("prefix({s})"),
        Predicate::NameIn(set) => {
            format!("in({})", set.iter().cloned().collect::<Vec<_>>().join(","))
        }
        Predicate::External(name) => name.clone(),
        Predicate::Not(inner) => format!("!({})", predicate_str(inner)),
        Predicate::And(parts) => parts
            .iter()
            .map(|q| format!("({})", predicate_str(q)))
            .collect::<Vec<_>>()
            .join(" && "),
        Predicate::Or(parts) => parts
            .iter()
            .map(|q| format!("({})", predicate_str(q)))
            .collect::<Vec<_>>()
            .join(" || "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiled;
    use crate::def::{NoOracle, PatternOracle};
    use crate::doc::newspaper_example;
    use crate::validate::validate;

    const PAPER_DSL: &str = r#"
# The paper's schema (*) from Sec. 2.
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
element title     = data
element date      = data
element temp      = data
element city      = data
element exhibit   = title.(Get_Date | date)
element performance = data

function Get_Temp : city -> temp
function TimeOut  : data -> (exhibit | performance)*
function Get_Date : title -> date
root newspaper
"#;

    #[test]
    fn parses_the_paper_schema() {
        let schema = parse_schema_dsl(PAPER_DSL).unwrap();
        assert_eq!(schema.elements.len(), 7);
        assert_eq!(schema.functions.len(), 3);
        assert_eq!(schema.root.as_deref(), Some("newspaper"));
        let compiled = Compiled::new(schema, &NoOracle).unwrap();
        validate(&newspaper_example(), &compiled).unwrap();
    }

    #[test]
    fn dsl_roundtrip() {
        let schema = parse_schema_dsl(PAPER_DSL).unwrap();
        let text = write_schema_dsl(&schema);
        let again = parse_schema_dsl(&text).unwrap();
        assert_eq!(again.elements.len(), schema.elements.len());
        assert_eq!(again.functions.len(), schema.functions.len());
        assert_eq!(again.root, schema.root);
        let c1 = Compiled::new(schema, &NoOracle).unwrap();
        let c2 = Compiled::new(again, &NoOracle).unwrap();
        assert_eq!(
            validate(&newspaper_example(), &c1).is_ok(),
            validate(&newspaper_example(), &c2).is_ok()
        );
    }

    #[test]
    fn patterns_with_predicates() {
        let text = r#"
element r = Forecast | temp
element temp = data
element city = data
pattern Forecast [prefix(Get_) && !in(Get_Evil) && UDDIF] : city -> temp
function Get_Temp : city -> temp
"#;
        let schema = parse_schema_dsl(text).unwrap();
        let p = &schema.patterns["Forecast"];
        struct Yes;
        impl PatternOracle for Yes {
            fn check(&self, _p: &str, _f: &str) -> bool {
                true
            }
        }
        assert!(p.predicate.eval("Get_Temp", &Yes));
        assert!(!p.predicate.eval("Get_Evil", &Yes));
        assert!(!p.predicate.eval("Get_Temp", &NoOracle)); // UDDIF false
    }

    #[test]
    fn non_invocable_and_empty_input() {
        let text = r#"
element r = f | a
element a = data
function f : () -> a [non-invocable]
"#;
        let schema = parse_schema_dsl(text).unwrap();
        let f = &schema.functions["f"];
        assert!(!f.invocable);
        assert_eq!(f.input, axml_automata::Regex::Epsilon);
    }

    #[test]
    fn wildcard_content() {
        let text = "element blob = ANYTREE\n";
        let schema = parse_schema_dsl(text).unwrap();
        assert!(matches!(
            schema.elements["blob"].content,
            crate::def::Content::Any
        ));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_schema_dsl("element a = data\nbogus line here\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        assert!(parse_schema_dsl("element x\n").is_err());
        assert!(parse_schema_dsl("function f : city temp\nelement city = data\n").is_err());
        assert!(parse_schema_dsl("pattern P [oops : a -> b\nelement a = data\n").is_err());
        assert!(parse_schema_dsl("function f [p] : a -> a\nelement a = data\n").is_err());
    }

    #[test]
    fn or_predicates_parse() {
        let text = r#"
element r = P | a
element a = data
pattern P [prefix(A_) || (prefix(B_) && !X)] : () -> a
"#;
        let schema = parse_schema_dsl(text).unwrap();
        let p = &schema.patterns["P"].predicate;
        assert!(p.eval("A_service", &NoOracle));
        assert!(p.eval("B_service", &NoOracle)); // X external → false → !X true
        assert!(!p.eval("C_service", &NoOracle));
    }
}
