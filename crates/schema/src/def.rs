//! Schema definitions: the paper's `(L, F, P, τ)` model (Sec. 2 and 2.1).
//!
//! A [`Schema`] maps element labels to content models, function names to
//! signatures (input/output types), and function-pattern names to a boolean
//! name-predicate plus a signature. Content models are regular expressions
//! over *particles*: labels, functions, pattern references and wildcards.

use axml_automata::{Alphabet, Regex};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Reserved particle name: wildcard matching any element (`<any/>`).
pub const ANY_ELEMENT: &str = "ANY";
/// Reserved particle name: wildcard matching any function call.
pub const ANY_FUNCTION: &str = "ANYFUN";
/// Reserved particle name: an atomic data value (the paper's `data`
/// keyword, usable in function signatures, e.g. `τ_in(TimeOut) = data`).
pub const DATA: &str = "data";

/// Content of an element type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Content {
    /// Atomic data (`τ(title) = data`): children are text only.
    Data,
    /// A regular expression over particles.
    Model(Regex),
    /// Unconstrained subtree (wildcard content): anything validates.
    Any,
}

/// An element type declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDef {
    /// The element label.
    pub name: String,
    /// Its content model.
    pub content: Content,
}

/// A Web-service function declaration (a WSDL description in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionDef {
    /// The function name.
    pub name: String,
    /// Input type `τ_in(f)`: regular expression over particles.
    pub input: Regex,
    /// Output type `τ_out(f)`.
    pub output: Regex,
    /// Whether rewritings may invoke this function (Sec. 2.1,
    /// *Restricted service invocations*).
    pub invocable: bool,
}

/// A boolean predicate over function names (Sec. 2.1, *Function patterns*).
///
/// `External` predicates (like the paper's `UDDIF` and `InACL`) are
/// evaluated through a [`PatternOracle`] — in the real system these are Web
/// services themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true.
    True,
    /// True if the function name starts with the prefix.
    NamePrefix(String),
    /// True if the function name is in the set.
    NameIn(BTreeSet<String>),
    /// Deferred to a [`PatternOracle`] under the given predicate name.
    External(String),
    /// Negation.
    Not(Box<Predicate>),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate on a function name.
    pub fn eval(&self, function: &str, oracle: &dyn PatternOracle) -> bool {
        match self {
            Predicate::True => true,
            Predicate::NamePrefix(p) => function.starts_with(p.as_str()),
            Predicate::NameIn(set) => set.contains(function),
            Predicate::External(name) => oracle.check(name, function),
            Predicate::Not(inner) => !inner.eval(function, oracle),
            Predicate::And(parts) => parts.iter().all(|p| p.eval(function, oracle)),
            Predicate::Or(parts) => parts.iter().any(|p| p.eval(function, oracle)),
        }
    }
}

/// Evaluator for [`Predicate::External`] — the paper implements these as Web
/// services taking a function name and returning true/false (e.g. a UDDI
/// registry lookup, an access-control list).
pub trait PatternOracle {
    /// Evaluates external predicate `predicate` on `function`.
    fn check(&self, predicate: &str, function: &str) -> bool;
}

/// An oracle that rejects every external predicate.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOracle;

impl PatternOracle for NoOracle {
    fn check(&self, _predicate: &str, _function: &str) -> bool {
        false
    }
}

/// A function-pattern declaration: predicate + required signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternDef {
    /// The pattern name (used as a particle in content models).
    pub name: String,
    /// Name predicate a function must satisfy.
    pub predicate: Predicate,
    /// Required input type.
    pub input: Regex,
    /// Required output type.
    pub output: Regex,
    /// Whether functions matched through this pattern may be invoked.
    pub invocable: bool,
}

/// A complete intensional schema `(L, F, P, τ)` with an optional root label.
#[derive(Debug, Clone)]
pub struct Schema {
    /// Shared symbol interner for every regular expression in this schema.
    pub alphabet: Alphabet,
    /// Element declarations by label.
    pub elements: BTreeMap<String, ElementDef>,
    /// Function declarations by name.
    pub functions: BTreeMap<String, FunctionDef>,
    /// Pattern declarations by name.
    pub patterns: BTreeMap<String, PatternDef>,
    /// Distinguished root label (Def. 6 of the paper), if any.
    pub root: Option<String>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// The declared kind of a name, if any.
    pub fn kind_of(&self, name: &str) -> Option<NameKind> {
        if name == ANY_ELEMENT {
            return Some(NameKind::AnyElement);
        }
        if name == ANY_FUNCTION {
            return Some(NameKind::AnyFunction);
        }
        if name == DATA {
            return Some(NameKind::Data);
        }
        if self.elements.contains_key(name) {
            Some(NameKind::Element)
        } else if self.functions.contains_key(name) {
            Some(NameKind::Function)
        } else if self.patterns.contains_key(name) {
            Some(NameKind::Pattern)
        } else {
            None
        }
    }
}

/// The kind of a declared name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameKind {
    /// An element label.
    Element,
    /// A concrete function.
    Function,
    /// A function pattern.
    Pattern,
    /// The `ANY` element wildcard.
    AnyElement,
    /// The `ANYFUN` function wildcard.
    AnyFunction,
    /// The `data` atomic-value particle.
    Data,
}

/// Errors raised while building or compiling schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A content model failed to parse.
    Parse {
        /// Name of the definition being parsed.
        context: String,
        /// Parser message.
        message: String,
    },
    /// A name was declared twice (possibly with different kinds).
    Duplicate {
        /// The offending name.
        name: String,
    },
    /// A content model references an undeclared name.
    Undefined {
        /// The undeclared name.
        name: String,
        /// Where it was referenced.
        context: String,
    },
    /// A content model is not 1-unambiguous (XML Schema determinism).
    Ambiguous {
        /// The definition whose model is ambiguous.
        context: String,
        /// The symbol readable at two competing positions.
        symbol: String,
    },
    /// Too many patterns for feasible class enumeration.
    TooManyPatterns {
        /// Number of declared patterns.
        count: usize,
        /// Maximum supported.
        max: usize,
    },
    /// Validation failure (document does not conform).
    Invalid {
        /// Description of the mismatch.
        message: String,
    },
    /// The document text is not well-formed XML. Unlike [`SchemaError::Invalid`]
    /// this keeps the parser's position fields, so streaming-path errors are
    /// as diagnosable as DOM-path ones.
    Malformed {
        /// Parser message (without position prefix).
        message: String,
        /// 1-based line number where parsing failed.
        line: usize,
        /// Byte offset where parsing failed.
        offset: usize,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Parse { context, message } => {
                write!(f, "in '{context}': {message}")
            }
            SchemaError::Duplicate { name } => write!(f, "duplicate declaration of '{name}'"),
            SchemaError::Undefined { name, context } => {
                write!(f, "'{context}' references undeclared name '{name}'")
            }
            SchemaError::Ambiguous { context, symbol } => write!(
                f,
                "content model of '{context}' is not 1-unambiguous on '{symbol}'"
            ),
            SchemaError::TooManyPatterns { count, max } => {
                write!(f, "{count} patterns declared, at most {max} supported")
            }
            SchemaError::Invalid { message } => write!(f, "invalid document: {message}"),
            // Same rendering the flattened form produced, so messages stay
            // stable while the fields remain matchable.
            SchemaError::Malformed {
                message,
                line,
                offset,
            } => write!(
                f,
                "invalid document: XML parse error at line {line} (byte {offset}): {message}"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Incremental [`Schema`] builder; content models are given in the paper's
/// textual notation and parsed immediately.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    alphabet: Alphabet,
    elements: BTreeMap<String, ElementDef>,
    functions: BTreeMap<String, FunctionDef>,
    patterns: BTreeMap<String, PatternDef>,
    root: Option<String>,
    errors: Vec<SchemaError>,
    /// Skip the 1-unambiguity check (used by benchmarks that exercise the
    /// exponential complement; real XML Schema forbids this).
    allow_ambiguous: bool,
}

impl SchemaBuilder {
    fn parse(&mut self, context: &str, model: &str) -> Regex {
        match Regex::parse(model, &mut self.alphabet) {
            Ok(re) => re,
            Err(e) => {
                self.errors.push(SchemaError::Parse {
                    context: context.to_owned(),
                    message: e.to_string(),
                });
                Regex::Empty
            }
        }
    }

    fn declare(&mut self, name: &str) {
        let dup = self.elements.contains_key(name)
            || self.functions.contains_key(name)
            || self.patterns.contains_key(name)
            || name == ANY_ELEMENT
            || name == ANY_FUNCTION
            || name == DATA;
        if dup {
            self.errors.push(SchemaError::Duplicate {
                name: name.to_owned(),
            });
        }
        self.alphabet.intern(name);
    }

    /// Declares an element with a regular content model.
    pub fn element(mut self, name: &str, model: &str) -> Self {
        self.declare(name);
        let content = Content::Model(self.parse(name, model));
        self.elements.insert(
            name.to_owned(),
            ElementDef {
                name: name.to_owned(),
                content,
            },
        );
        self
    }

    /// Declares an atomic element (`τ(name) = data`).
    pub fn data_element(mut self, name: &str) -> Self {
        self.declare(name);
        self.elements.insert(
            name.to_owned(),
            ElementDef {
                name: name.to_owned(),
                content: Content::Data,
            },
        );
        self
    }

    /// Declares an element with unconstrained content (wildcard subtree).
    pub fn any_element(mut self, name: &str) -> Self {
        self.declare(name);
        self.elements.insert(
            name.to_owned(),
            ElementDef {
                name: name.to_owned(),
                content: Content::Any,
            },
        );
        self
    }

    /// Declares an invocable function with input and output types.
    pub fn function(self, name: &str, input: &str, output: &str) -> Self {
        self.function_with(name, input, output, true)
    }

    /// Declares a function that rewritings must not invoke.
    pub fn non_invocable_function(self, name: &str, input: &str, output: &str) -> Self {
        self.function_with(name, input, output, false)
    }

    fn function_with(mut self, name: &str, input: &str, output: &str, invocable: bool) -> Self {
        self.declare(name);
        let input = self.parse(&format!("τ_in({name})"), input);
        let output = self.parse(&format!("τ_out({name})"), output);
        self.functions.insert(
            name.to_owned(),
            FunctionDef {
                name: name.to_owned(),
                input,
                output,
                invocable,
            },
        );
        self
    }

    /// Declares a function pattern with a predicate and signature.
    pub fn pattern(mut self, name: &str, predicate: Predicate, input: &str, output: &str) -> Self {
        self.declare(name);
        let input = self.parse(&format!("τ_in({name})"), input);
        let output = self.parse(&format!("τ_out({name})"), output);
        self.patterns.insert(
            name.to_owned(),
            PatternDef {
                name: name.to_owned(),
                predicate,
                input,
                output,
                invocable: true,
            },
        );
        self
    }

    /// Marks a previously declared function or pattern as non-invocable.
    pub fn non_invocable(mut self, name: &str) -> Self {
        if let Some(f) = self.functions.get_mut(name) {
            f.invocable = false;
        } else if let Some(p) = self.patterns.get_mut(name) {
            p.invocable = false;
        } else {
            self.errors.push(SchemaError::Undefined {
                name: name.to_owned(),
                context: "non_invocable".to_owned(),
            });
        }
        self
    }

    /// Sets the distinguished root label (Def. 6).
    pub fn root(mut self, name: &str) -> Self {
        self.root = Some(name.to_owned());
        self
    }

    /// Disables the 1-unambiguity check (bench/testing escape hatch; real
    /// XML Schema_int content models must stay deterministic).
    pub fn allow_ambiguous(mut self) -> Self {
        self.allow_ambiguous = true;
        self
    }

    /// Finishes the schema, checking referential integrity and determinism.
    pub fn build(self) -> Result<Schema, SchemaError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let schema = Schema {
            alphabet: self.alphabet,
            elements: self.elements,
            functions: self.functions,
            patterns: self.patterns,
            root: self.root,
        };
        // Referential integrity: every symbol used in a model is declared.
        let check_regex = |context: &str, re: &Regex| -> Result<(), SchemaError> {
            for sym in re.symbols() {
                let name = schema.alphabet.name(sym);
                if schema.kind_of(name).is_none() {
                    return Err(SchemaError::Undefined {
                        name: name.to_owned(),
                        context: context.to_owned(),
                    });
                }
            }
            Ok(())
        };
        for e in schema.elements.values() {
            if let Content::Model(re) = &e.content {
                check_regex(&e.name, re)?;
            }
        }
        for f in schema.functions.values() {
            check_regex(&format!("τ_in({})", f.name), &f.input)?;
            check_regex(&format!("τ_out({})", f.name), &f.output)?;
        }
        for p in schema.patterns.values() {
            check_regex(&format!("τ_in({})", p.name), &p.input)?;
            check_regex(&format!("τ_out({})", p.name), &p.output)?;
        }
        if let Some(root) = &schema.root {
            if !schema.elements.contains_key(root) {
                return Err(SchemaError::Undefined {
                    name: root.clone(),
                    context: "root".to_owned(),
                });
            }
        }
        // Determinism (1-unambiguity) at the particle level.
        if !self.allow_ambiguous {
            let check_det = |context: &str, re: &Regex| -> Result<(), SchemaError> {
                let g = axml_automata::Glushkov::new(re, schema.alphabet.len());
                g.check_unambiguous().map_err(|e| SchemaError::Ambiguous {
                    context: context.to_owned(),
                    symbol: schema.alphabet.name(e.symbol).to_owned(),
                })
            };
            for e in schema.elements.values() {
                if let Content::Model(re) = &e.content {
                    check_det(&e.name, re)?;
                }
            }
            for f in schema.functions.values() {
                check_det(&format!("τ_in({})", f.name), &f.input)?;
                check_det(&format!("τ_out({})", f.name), &f.output)?;
            }
            for p in schema.patterns.values() {
                check_det(&format!("τ_in({})", p.name), &p.input)?;
                check_det(&format!("τ_out({})", p.name), &p.output)?;
            }
        }
        Ok(schema)
    }
}

/// Overlays `extra`'s declarations onto `base` without overriding:
/// declarations already present in `base` win silently (elements may
/// legitimately differ between a sender schema and an exchange schema — the
/// exchange schema's content models drive rewriting), but function
/// signatures must agree (the paper's common-definitions assumption), with
/// invocability intersected.
pub fn overlay(base: &Schema, extra: &Schema) -> Result<Schema, SchemaError> {
    let mut out = base.clone();
    let remap = |re: &Regex, from: &Alphabet, alphabet: &mut Alphabet| {
        re.map_symbols(&mut |sym| Regex::sym(alphabet.intern(from.name(sym))))
    };
    for e in extra.elements.values() {
        if out.elements.contains_key(&e.name) {
            continue;
        }
        if out.functions.contains_key(&e.name) || out.patterns.contains_key(&e.name) {
            return Err(SchemaError::Duplicate {
                name: e.name.clone(),
            });
        }
        out.alphabet.intern(&e.name);
        let content = match &e.content {
            Content::Data => Content::Data,
            Content::Any => Content::Any,
            Content::Model(re) => Content::Model(remap(re, &extra.alphabet, &mut out.alphabet)),
        };
        out.elements.insert(
            e.name.clone(),
            ElementDef {
                name: e.name.clone(),
                content,
            },
        );
    }
    for f in extra.functions.values() {
        let input = remap(&f.input, &extra.alphabet, &mut out.alphabet);
        let output = remap(&f.output, &extra.alphabet, &mut out.alphabet);
        match out.functions.entry(f.name.clone()) {
            Entry::Vacant(v) => {
                if out.elements.contains_key(&f.name) || out.patterns.contains_key(&f.name) {
                    return Err(SchemaError::Duplicate {
                        name: f.name.clone(),
                    });
                }
                v.insert(FunctionDef {
                    name: f.name.clone(),
                    input,
                    output,
                    invocable: f.invocable,
                });
            }
            Entry::Occupied(mut o) => {
                let existing = o.get_mut();
                if existing.input != input || existing.output != output {
                    return Err(SchemaError::Duplicate {
                        name: f.name.clone(),
                    });
                }
                existing.invocable &= f.invocable;
            }
        }
    }
    for p in extra.patterns.values() {
        if out.patterns.contains_key(&p.name) {
            continue;
        }
        if out.elements.contains_key(&p.name) || out.functions.contains_key(&p.name) {
            return Err(SchemaError::Duplicate {
                name: p.name.clone(),
            });
        }
        out.alphabet.intern(&p.name);
        let input = remap(&p.input, &extra.alphabet, &mut out.alphabet);
        let output = remap(&p.output, &extra.alphabet, &mut out.alphabet);
        out.patterns.insert(
            p.name.clone(),
            PatternDef {
                name: p.name.clone(),
                predicate: p.predicate.clone(),
                input,
                output,
                invocable: p.invocable,
            },
        );
    }
    Ok(out)
}

/// Merges several schemas into one (used to combine the sender schema `s0`
/// with the exchange schema `s`; the paper assumes common functions have the
/// same definitions — conflicting duplicates are an error, identical
/// re-declarations are allowed).
pub fn merge(schemas: &[&Schema]) -> Result<Schema, SchemaError> {
    let mut alphabet = Alphabet::new();
    let mut elements: BTreeMap<String, ElementDef> = BTreeMap::new();
    let mut functions: BTreeMap<String, FunctionDef> = BTreeMap::new();
    let mut patterns: BTreeMap<String, PatternDef> = BTreeMap::new();
    for s in schemas {
        // Re-intern all regexes into the merged alphabet.
        let remap = |re: &Regex, alphabet: &mut Alphabet| {
            re.map_symbols(&mut |sym| Regex::sym(alphabet.intern(s.alphabet.name(sym))))
        };
        for e in s.elements.values() {
            alphabet.intern(&e.name);
            let content = match &e.content {
                Content::Data => Content::Data,
                Content::Any => Content::Any,
                Content::Model(re) => Content::Model(remap(re, &mut alphabet)),
            };
            let def = ElementDef {
                name: e.name.clone(),
                content,
            };
            match elements.entry(e.name.clone()) {
                Entry::Vacant(v) => {
                    v.insert(def);
                }
                Entry::Occupied(o) => {
                    if *o.get() != def {
                        return Err(SchemaError::Duplicate {
                            name: e.name.clone(),
                        });
                    }
                }
            }
        }
        for f in s.functions.values() {
            alphabet.intern(&f.name);
            let def = FunctionDef {
                name: f.name.clone(),
                input: remap(&f.input, &mut alphabet),
                output: remap(&f.output, &mut alphabet),
                invocable: f.invocable,
            };
            match functions.entry(f.name.clone()) {
                Entry::Vacant(v) => {
                    v.insert(def);
                }
                Entry::Occupied(mut o) => {
                    // Invocability may legitimately differ (the receiver may
                    // forbid calls the sender allows); conjunction applies.
                    let existing = o.get_mut();
                    if existing.input != def.input || existing.output != def.output {
                        return Err(SchemaError::Duplicate {
                            name: f.name.clone(),
                        });
                    }
                    existing.invocable &= def.invocable;
                }
            }
        }
        for p in s.patterns.values() {
            alphabet.intern(&p.name);
            let def = PatternDef {
                name: p.name.clone(),
                predicate: p.predicate.clone(),
                input: remap(&p.input, &mut alphabet),
                output: remap(&p.output, &mut alphabet),
                invocable: p.invocable,
            };
            match patterns.entry(p.name.clone()) {
                Entry::Vacant(v) => {
                    v.insert(def);
                }
                Entry::Occupied(o) => {
                    if *o.get() != def {
                        return Err(SchemaError::Duplicate {
                            name: p.name.clone(),
                        });
                    }
                }
            }
        }
    }
    // Cross-kind duplicates.
    for name in functions.keys() {
        if elements.contains_key(name) || patterns.contains_key(name) {
            return Err(SchemaError::Duplicate { name: name.clone() });
        }
    }
    for name in patterns.keys() {
        if elements.contains_key(name) {
            return Err(SchemaError::Duplicate { name: name.clone() });
        }
    }
    Ok(Schema {
        alphabet,
        elements,
        functions,
        patterns,
        root: schemas.iter().find_map(|s| s.root.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's schema (*) from Sec. 2.
    pub(crate) fn paper_schema() -> Schema {
        Schema::builder()
            .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .root("newspaper")
            .build()
            .expect("paper schema is well-formed")
    }

    #[test]
    fn builds_paper_schema() {
        let s = paper_schema();
        assert_eq!(s.elements.len(), 7);
        assert_eq!(s.functions.len(), 3);
        assert_eq!(s.kind_of("newspaper"), Some(NameKind::Element));
        assert_eq!(s.kind_of("Get_Temp"), Some(NameKind::Function));
        assert_eq!(s.kind_of("nothing"), None);
        assert_eq!(s.kind_of(ANY_ELEMENT), Some(NameKind::AnyElement));
    }

    #[test]
    fn undefined_reference_rejected() {
        let err = Schema::builder()
            .element("a", "b.c")
            .data_element("b")
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::Undefined { ref name, .. } if name == "c"));
    }

    #[test]
    fn duplicate_rejected() {
        let err = Schema::builder()
            .data_element("a")
            .element("a", "")
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::Duplicate { .. }));
    }

    #[test]
    fn ambiguous_model_rejected_unless_allowed() {
        let build = || Schema::builder().element("r", "a*.a").data_element("a");
        let err = build().build().unwrap_err();
        assert!(matches!(err, SchemaError::Ambiguous { .. }));
        assert!(build().allow_ambiguous().build().is_ok());
    }

    #[test]
    fn bad_model_reports_parse_error() {
        let err = Schema::builder().element("r", "a..b").build().unwrap_err();
        assert!(matches!(err, SchemaError::Parse { .. }));
    }

    #[test]
    fn root_must_exist() {
        let err = Schema::builder()
            .data_element("a")
            .root("missing")
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::Undefined { .. }));
    }

    #[test]
    fn predicates_evaluate() {
        let p = Predicate::And(vec![
            Predicate::NamePrefix("Get_".to_owned()),
            Predicate::Not(Box::new(Predicate::NameIn(
                ["Get_Evil".to_owned()].into_iter().collect(),
            ))),
        ]);
        assert!(p.eval("Get_Temp", &NoOracle));
        assert!(!p.eval("Get_Evil", &NoOracle));
        assert!(!p.eval("TimeOut", &NoOracle));
        assert!(!Predicate::External("UDDIF".to_owned()).eval("f", &NoOracle));
        assert!(Predicate::Or(vec![Predicate::True]).eval("anything", &NoOracle));
    }

    #[test]
    fn merge_combines_and_detects_conflicts() {
        let s0 = paper_schema();
        let s1 = Schema::builder()
            .data_element("extra")
            .data_element("city")
            .data_element("temp")
            .function("Get_Temp", "city", "temp")
            .build()
            .unwrap();
        let merged = merge(&[&s0, &s1]).unwrap();
        assert!(merged.elements.contains_key("extra"));
        assert_eq!(merged.functions.len(), 3);
        assert_eq!(merged.root.as_deref(), Some("newspaper"));

        let conflicting = Schema::builder()
            .function("Get_Temp", "city", "city")
            .data_element("city")
            .data_element("temp")
            .build()
            .unwrap();
        assert!(merge(&[&s0, &conflicting]).is_err());
    }

    #[test]
    fn merge_intersects_invocability() {
        let s0 = Schema::builder()
            .function("f", "", "a")
            .data_element("a")
            .build()
            .unwrap();
        let s1 = Schema::builder()
            .non_invocable_function("f", "", "a")
            .data_element("a")
            .build()
            .unwrap();
        let merged = merge(&[&s0, &s1]).unwrap();
        assert!(!merged.functions["f"].invocable);
    }

    #[test]
    fn non_invocable_marker() {
        let s = Schema::builder()
            .function("f", "", "a")
            .data_element("a")
            .non_invocable("f")
            .build()
            .unwrap();
        assert!(!s.functions["f"].invocable);
        assert!(Schema::builder().non_invocable("ghost").build().is_err());
    }
}
