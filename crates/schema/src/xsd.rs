//! XML Schema_int: the XML syntax for intensional schemas (Sec. 7).
//!
//! The paper extends XML Schema with `function` and `functionPattern`
//! declarations that may appear wherever element particles are allowed.
//! This module parses that syntax into a [`Schema`] and serializes a
//! [`Schema`] back out, supporting the constructs the paper's own parser
//! implemented: global `element` declarations, `complexType` with
//! `sequence` / `choice` / `all` compositors, `element`/`function`/
//! `functionPattern` references, `any` wildcards and
//! `minOccurs`/`maxOccurs`.
//!
//! ```
//! let text = r#"
//! <schema>
//!   <element name="newspaper">
//!     <complexType><sequence>
//!       <element ref="title"/>
//!       <element ref="date"/>
//!       <choice><functionPattern ref="Forecast"/><element ref="temp"/></choice>
//!       <choice><function ref="TimeOut"/>
//!               <element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/></choice>
//!     </sequence></complexType>
//!   </element>
//!   <element name="title" type="data"/>
//!   <element name="date" type="data"/>
//!   <element name="temp" type="data"/>
//!   <element name="city" type="data"/>
//!   <element name="exhibit">
//!     <complexType><sequence>
//!       <element ref="title"/>
//!       <choice><function ref="Get_Date"/><element ref="date"/></choice>
//!     </sequence></complexType>
//!   </element>
//!   <element name="performance" type="data"/>
//!   <functionPattern id="Forecast" methodName="UDDIF">
//!     <params><param><element ref="city"/></param></params>
//!     <result><element ref="temp"/></result>
//!   </functionPattern>
//!   <function id="TimeOut">
//!     <params><param><element ref="title"/></param></params>
//!     <result><choice minOccurs="0" maxOccurs="unbounded">
//!       <element ref="exhibit"/><element ref="performance"/>
//!     </choice></result>
//!   </function>
//!   <function id="Get_Date">
//!     <params><param><element ref="title"/></param></params>
//!     <result><element ref="date"/></result>
//!   </function>
//! </schema>"#;
//! let schema = axml_schema::xsd::parse_xml_schema(text).unwrap();
//! assert_eq!(schema.elements.len(), 7);
//! assert_eq!(schema.functions.len(), 2);
//! assert_eq!(schema.patterns.len(), 1);
//! ```

use crate::def::{
    Content, Predicate, Schema, SchemaBuilder, SchemaError, ANY_ELEMENT, ANY_FUNCTION,
};
use axml_xml::{parse_document, Element};

fn err(message: impl Into<String>) -> SchemaError {
    SchemaError::Parse {
        context: "XML Schema_int".to_owned(),
        message: message.into(),
    }
}

/// Parses an XML Schema_int document into a [`Schema`].
pub fn parse_xml_schema(text: &str) -> Result<Schema, SchemaError> {
    let doc = parse_document(text).map_err(|e| err(e.to_string()))?;
    parse_schema_element(&doc.root)
}

/// Parses an already-parsed `<schema>` element.
pub fn parse_schema_element(root: &Element) -> Result<Schema, SchemaError> {
    if root.name.local != "schema" {
        return Err(err(format!(
            "expected <schema> root, found <{}>",
            root.name.local
        )));
    }
    let mut builder = Schema::builder();
    for child in root.child_elements() {
        match child.name.local.as_str() {
            "element" => builder = parse_global_element(child, builder)?,
            "function" => builder = parse_function(child, builder, false)?,
            "functionPattern" => builder = parse_function(child, builder, true)?,
            "annotation" | "import" => {}
            other => return Err(err(format!("unsupported top-level <{other}>"))),
        }
    }
    let mut schema = builder.build()?;
    // Root convention: a top-level attribute or the first declared element.
    if let Some(r) = root.attribute("root") {
        if !schema.elements.contains_key(r) {
            return Err(err(format!("root element '{r}' is not declared")));
        }
        schema.root = Some(r.to_owned());
    }
    Ok(schema)
}

fn parse_global_element(e: &Element, builder: SchemaBuilder) -> Result<SchemaBuilder, SchemaError> {
    let name = e
        .attribute("name")
        .ok_or_else(|| err("global <element> requires a name attribute"))?
        .to_owned();
    if let Some(ty) = e.attribute("type") {
        return match ty {
            "data" | "xs:string" | "string" => Ok(builder.data_element(&name)),
            "any" | "xs:anyType" | "anyType" => Ok(builder.any_element(&name)),
            other => Err(err(format!("unsupported element type '{other}'"))),
        };
    }
    let Some(complex) = e.first_child("complexType") else {
        // No content description: atomic data by default, like the paper's
        // τ(title) = data entries.
        return Ok(builder.data_element(&name));
    };
    let compositors: Vec<&Element> = complex.child_elements().collect();
    let model = match compositors.as_slice() {
        [] => String::new(),
        [one] => particle_to_model(one)?,
        _ => {
            // Multiple children behave as an implicit sequence.
            let parts: Result<Vec<String>, _> =
                compositors.iter().map(|c| particle_to_model(c)).collect();
            parts?.join(".")
        }
    };
    Ok(builder.element(&name, &model))
}

/// Converts a particle or compositor element into the textual content-model
/// notation (which the builder re-parses); occurrence attributes wrap the
/// result in `{min,max}`.
fn particle_to_model(e: &Element) -> Result<String, SchemaError> {
    let core = match e.name.local.as_str() {
        "sequence" => {
            let parts: Result<Vec<String>, _> = e.child_elements().map(particle_to_model).collect();
            let parts = parts?;
            if parts.is_empty() {
                "()".to_owned()
            } else {
                format!("({})", parts.join("."))
            }
        }
        "choice" => {
            let parts: Result<Vec<String>, _> = e.child_elements().map(particle_to_model).collect();
            let parts = parts?;
            if parts.is_empty() {
                return Err(err("<choice> requires at least one alternative"));
            }
            format!("({})", parts.join("|"))
        }
        "all" => {
            // XML Schema `all`: each child at most once, any order. We
            // expand permutations (the compositor is limited to small
            // collections in practice).
            let parts: Result<Vec<String>, _> = e.child_elements().map(particle_to_model).collect();
            let parts = parts?;
            if parts.len() > 6 {
                return Err(err("<all> supports at most 6 particles"));
            }
            let perms = permutations(&parts);
            format!(
                "({})",
                perms
                    .iter()
                    .map(|p| p.join("."))
                    .collect::<Vec<_>>()
                    .join("|")
            )
        }
        "element" | "function" | "functionPattern" => {
            let name = e
                .attribute("ref")
                .or_else(|| e.attribute("name"))
                .ok_or_else(|| err(format!("<{}> particle requires ref", e.name.local)))?;
            name.to_owned()
        }
        "any" => ANY_ELEMENT.to_owned(),
        "data" => crate::def::DATA.to_owned(),
        "anyFunction" => ANY_FUNCTION.to_owned(),
        other => return Err(err(format!("unsupported particle <{other}>"))),
    };
    let min = parse_occurs(e.attribute("minOccurs"), 1)?;
    let max = match e.attribute("maxOccurs") {
        Some("unbounded") => None,
        Some(v) => Some(
            v.parse::<u32>()
                .map_err(|_| err(format!("bad maxOccurs '{v}'")))?,
        ),
        None => Some(1),
    };
    if let Some(m) = max {
        if m < min {
            return Err(err("maxOccurs smaller than minOccurs"));
        }
    }
    Ok(match (min, max) {
        (1, Some(1)) => core,
        (0, None) => format!("({core})*"),
        (1, None) => format!("({core})+"),
        (0, Some(1)) => format!("({core})?"),
        (lo, Some(hi)) => format!("({core}){{{lo},{hi}}}"),
        (lo, None) => format!("({core}){{{lo},}}"),
    })
}

fn parse_occurs(v: Option<&str>, default: u32) -> Result<u32, SchemaError> {
    match v {
        None => Ok(default),
        Some(s) => s
            .parse::<u32>()
            .map_err(|_| err(format!("bad occurrence '{s}'"))),
    }
}

fn permutations(items: &[String]) -> Vec<Vec<String>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest = items.to_vec();
        let head = rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head.clone());
            out.push(tail);
        }
    }
    out
}

fn parse_function(
    e: &Element,
    builder: SchemaBuilder,
    is_pattern: bool,
) -> Result<SchemaBuilder, SchemaError> {
    let name = e
        .attribute("id")
        .or_else(|| e.attribute("name"))
        .ok_or_else(|| err("function declarations require an id"))?
        .to_owned();
    let input = match e.first_child("params") {
        Some(params) => {
            let parts: Result<Vec<String>, _> = params
                .children_named("param")
                .map(|p| {
                    let inner: Vec<&Element> = p.child_elements().collect();
                    match inner.as_slice() {
                        [one] => particle_to_model(one),
                        [] => Err(err("empty <param>")),
                        many => {
                            let parts: Result<Vec<String>, _> =
                                many.iter().map(|c| particle_to_model(c)).collect();
                            Ok(format!("({})", parts?.join(".")))
                        }
                    }
                })
                .collect();
            parts?.join(".")
        }
        None => String::new(),
    };
    let output = match e.first_child("result").or_else(|| e.first_child("return")) {
        Some(result) => {
            let parts: Result<Vec<String>, _> =
                result.child_elements().map(particle_to_model).collect();
            parts?.join(".")
        }
        None => String::new(),
    };
    if is_pattern {
        // The predicate is the SOAP boolean service named by methodName; the
        // paper's convention: omitted attributes ⇒ predicate true for all.
        let predicate = match e.attribute("methodName") {
            Some(m) => Predicate::External(m.to_owned()),
            None => Predicate::True,
        };
        Ok(builder.pattern(&name, predicate, &input, &output))
    } else {
        Ok(builder.function(&name, &input, &output))
    }
}

/// Serializes a [`Schema`] to XML Schema_int text.
pub fn write_xml_schema(schema: &Schema) -> String {
    let mut root = Element::new("schema");
    if let Some(r) = &schema.root {
        root = root.attr("root", r);
    }
    for e in schema.elements.values() {
        let mut el = Element::new("element").attr("name", &e.name);
        match &e.content {
            Content::Data => el = el.attr("type", "data"),
            Content::Any => el = el.attr("type", "any"),
            Content::Model(re) => {
                let body = regex_to_particles(re, schema);
                el = el.child(Element::new("complexType").child(body));
            }
        }
        root = root.child(el);
    }
    for f in schema.functions.values() {
        root = root.child(signature_element(
            "function", &f.name, &f.input, &f.output, schema, None,
        ));
    }
    for p in schema.patterns.values() {
        let method = match &p.predicate {
            Predicate::External(m) => Some(m.as_str()),
            _ => None,
        };
        root = root.child(signature_element(
            "functionPattern",
            &p.name,
            &p.input,
            &p.output,
            schema,
            method,
        ));
    }
    root.to_pretty_xml()
}

fn signature_element(
    kind: &str,
    name: &str,
    input: &axml_automata::Regex,
    output: &axml_automata::Regex,
    schema: &Schema,
    method: Option<&str>,
) -> Element {
    let mut e = Element::new(kind).attr("id", name);
    if let Some(m) = method {
        e = e.attr("methodName", m);
    }
    e = e.child(
        Element::new("params")
            .child(Element::new("param").child(regex_to_particles(input, schema))),
    );
    e.child(Element::new("result").child(regex_to_particles(output, schema)))
}

fn regex_to_particles(re: &axml_automata::Regex, schema: &Schema) -> Element {
    use axml_automata::Regex as R;
    match re {
        R::Empty | R::Epsilon => Element::new("sequence"),
        R::Sym(s) => {
            let name = schema.alphabet.name(*s);
            match name {
                ANY_ELEMENT => Element::new("any"),
                ANY_FUNCTION => Element::new("anyFunction"),
                d if d == crate::def::DATA => Element::new("data"),
                _ => {
                    let kind = if schema.functions.contains_key(name) {
                        "function"
                    } else if schema.patterns.contains_key(name) {
                        "functionPattern"
                    } else {
                        "element"
                    };
                    Element::new(kind).attr("ref", name)
                }
            }
        }
        R::Seq(parts) => {
            let mut e = Element::new("sequence");
            for p in parts {
                e = e.child(regex_to_particles(p, schema));
            }
            e
        }
        R::Alt(parts) => {
            let mut e = Element::new("choice");
            for p in parts {
                e = e.child(regex_to_particles(p, schema));
            }
            e
        }
        R::Star(inner) => occurs(regex_to_particles(inner, schema), "0", Some("unbounded")),
        R::Plus(inner) => occurs(regex_to_particles(inner, schema), "1", Some("unbounded")),
        R::Opt(inner) => occurs(regex_to_particles(inner, schema), "0", Some("1")),
        R::Repeat(inner, min, max) => occurs(
            regex_to_particles(inner, schema),
            &min.to_string(),
            Some(&max.map_or("unbounded".to_owned(), |m| m.to_string())),
        ),
    }
}

fn occurs(mut e: Element, min: &str, max: Option<&str>) -> Element {
    // Occurrence attributes go on the particle itself; wrap bare particles
    // that already carry occurrences in a sequence.
    if e.attribute("minOccurs").is_some() || e.attribute("maxOccurs").is_some() {
        e = Element::new("sequence").child(e);
    }
    e = e.attr("minOccurs", min);
    if let Some(m) = max {
        e = e.attr("maxOccurs", m);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiled;
    use crate::def::NoOracle;
    use crate::doc::newspaper_example;
    use crate::validate::validate;

    const PAPER_XSD: &str = r#"
<schema root="newspaper">
  <element name="newspaper">
    <complexType><sequence>
      <element ref="title"/>
      <element ref="date"/>
      <choice><function ref="Get_Temp"/><element ref="temp"/></choice>
      <choice><function ref="TimeOut"/>
              <element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/></choice>
    </sequence></complexType>
  </element>
  <element name="title" type="data"/>
  <element name="date" type="data"/>
  <element name="temp" type="data"/>
  <element name="city" type="data"/>
  <element name="exhibit">
    <complexType><sequence>
      <element ref="title"/>
      <choice><function ref="Get_Date"/><element ref="date"/></choice>
    </sequence></complexType>
  </element>
  <element name="performance" type="data"/>
  <function id="Get_Temp">
    <params><param><element ref="city"/></param></params>
    <result><element ref="temp"/></result>
  </function>
  <function id="TimeOut">
    <params><param><data/></param></params>
    <result><choice minOccurs="0" maxOccurs="unbounded">
      <element ref="exhibit"/><element ref="performance"/>
    </choice></result>
  </function>
  <function id="Get_Date">
    <params><param><element ref="title"/></param></params>
    <result><element ref="date"/></result>
  </function>
</schema>"#;

    #[test]
    fn parses_paper_schema_and_validates_fig2() {
        let schema = parse_xml_schema(PAPER_XSD).unwrap();
        assert_eq!(schema.root.as_deref(), Some("newspaper"));
        assert_eq!(schema.elements.len(), 7);
        assert_eq!(schema.functions.len(), 3);
        let compiled = Compiled::new(schema, &NoOracle).unwrap();
        validate(&newspaper_example(), &compiled).unwrap();
    }

    #[test]
    fn function_pattern_with_predicate() {
        let text = r#"
<schema>
  <element name="r"><complexType>
    <choice><functionPattern ref="Forecast"/><element ref="temp"/></choice>
  </complexType></element>
  <element name="temp" type="data"/>
  <element name="city" type="data"/>
  <functionPattern id="Forecast" methodName="UDDIF"
                   endpointURL="http://registry/soap">
    <params><param><element ref="city"/></param></params>
    <result><element ref="temp"/></result>
  </functionPattern>
</schema>"#;
        let schema = parse_xml_schema(text).unwrap();
        let p = &schema.patterns["Forecast"];
        assert_eq!(p.predicate, Predicate::External("UDDIF".to_owned()));
    }

    #[test]
    fn all_compositor_expands_permutations() {
        let text = r#"
<schema>
  <element name="r"><complexType>
    <all><element ref="a"/><element ref="b"/></all>
  </complexType></element>
  <element name="a" type="data"/>
  <element name="b" type="data"/>
</schema>"#;
        let schema = parse_xml_schema(text).unwrap();
        let compiled = Compiled::new(schema, &NoOracle).unwrap();
        use crate::doc::ITree;
        let ab = ITree::elem("r", vec![ITree::data("a", "1"), ITree::data("b", "2")]);
        let ba = ITree::elem("r", vec![ITree::data("b", "2"), ITree::data("a", "1")]);
        let aa = ITree::elem("r", vec![ITree::data("a", "1"), ITree::data("a", "1")]);
        validate(&ab, &compiled).unwrap();
        validate(&ba, &compiled).unwrap();
        assert!(validate(&aa, &compiled).is_err());
    }

    #[test]
    fn occurrence_bounds() {
        let text = r#"
<schema>
  <element name="r"><complexType>
    <sequence><element ref="a" minOccurs="2" maxOccurs="3"/></sequence>
  </complexType></element>
  <element name="a" type="data"/>
</schema>"#;
        let schema = parse_xml_schema(text).unwrap();
        let compiled = Compiled::new(schema, &NoOracle).unwrap();
        use crate::doc::ITree;
        let mk = |n: usize| ITree::elem("r", (0..n).map(|_| ITree::data("a", "x")).collect());
        assert!(validate(&mk(1), &compiled).is_err());
        validate(&mk(2), &compiled).unwrap();
        validate(&mk(3), &compiled).unwrap();
        assert!(validate(&mk(4), &compiled).is_err());
    }

    #[test]
    fn wildcards_parse() {
        let text = r#"
<schema>
  <element name="r"><complexType>
    <sequence><any minOccurs="0" maxOccurs="unbounded"/><anyFunction minOccurs="0"/></sequence>
  </complexType></element>
</schema>"#;
        let schema = parse_xml_schema(text).unwrap();
        assert!(Compiled::new(schema, &NoOracle).is_ok());
    }

    #[test]
    fn roundtrip_through_writer() {
        let schema = parse_xml_schema(PAPER_XSD).unwrap();
        let text = write_xml_schema(&schema);
        let again = parse_xml_schema(&text).unwrap();
        assert_eq!(again.elements.len(), schema.elements.len());
        assert_eq!(again.functions.len(), schema.functions.len());
        // Language equality spot-check: both accept/reject the same docs.
        let c1 = Compiled::new(schema, &NoOracle).unwrap();
        let c2 = Compiled::new(again, &NoOracle).unwrap();
        let doc = newspaper_example();
        assert_eq!(validate(&doc, &c1).is_ok(), validate(&doc, &c2).is_ok());
    }

    #[test]
    fn errors_reported() {
        assert!(parse_xml_schema("<notschema/>").is_err());
        assert!(parse_xml_schema("<schema><element/></schema>").is_err());
        assert!(parse_xml_schema(
            "<schema><element name=\"r\"><complexType><bogus/></complexType></element></schema>"
        )
        .is_err());
        assert!(parse_xml_schema(
            r#"<schema><element name="r"><complexType>
               <element ref="a" minOccurs="3" maxOccurs="2"/>
               </complexType></element><element name="a" type="data"/></schema>"#
        )
        .is_err());
    }
}
