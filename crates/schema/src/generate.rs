//! Random instance generation.
//!
//! Used by the adversarial simulated services (a call may return *any*
//! output instance of its type — Def. 4) and by the property-test suites
//! (validation must accept everything this module produces).

use crate::compile::{Compiled, CompiledContent, SymKind};
use crate::doc::ITree;
use axml_automata::{sample_word, Regex, SampleConfig, Symbol};
use axml_support::rng::{Rng, RngExt};

/// Tuning for the instance generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Word-sampling configuration (star repetition behaviour).
    pub words: SampleConfig,
    /// Maximum element-nesting depth before the generator switches to
    /// shortest-possible content.
    pub max_depth: usize,
    /// Budget on total generated nodes (guards against recursive schemas).
    pub max_nodes: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            words: SampleConfig::default(),
            max_depth: 8,
            max_nodes: 10_000,
        }
    }
}

/// Errors from the generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The requested label is not declared.
    UnknownLabel(String),
    /// The node budget was exhausted (schema too recursive for the config).
    BudgetExhausted,
    /// A class symbol was sampled but no declared function realizes it.
    UnrealizableClass(String),
    /// The content language is empty.
    EmptyLanguage(String),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::UnknownLabel(l) => write!(f, "unknown label '{l}'"),
            GenError::BudgetExhausted => write!(f, "node budget exhausted"),
            GenError::UnrealizableClass(c) => {
                write!(f, "no declared function realizes class '{c}'")
            }
            GenError::EmptyLanguage(l) => write!(f, "content of '{l}' is the empty language"),
        }
    }
}

impl std::error::Error for GenError {}

/// Generates a random instance rooted at `label`.
pub fn generate_instance<R: Rng + ?Sized>(
    compiled: &Compiled,
    label: &str,
    rng: &mut R,
    config: &GenConfig,
) -> Result<ITree, GenError> {
    let mut budget = config.max_nodes;
    gen_element(compiled, label, rng, config, 0, &mut budget)
}

/// Generates a random *output instance* forest for the given output type.
pub fn generate_output_instance<R: Rng + ?Sized>(
    compiled: &Compiled,
    output: &Regex,
    rng: &mut R,
    config: &GenConfig,
) -> Result<Vec<ITree>, GenError> {
    let mut budget = config.max_nodes;
    gen_forest(compiled, output, rng, config, 0, &mut budget)
}

/// Realizes one *fixed* word as an instance forest: one subtree per
/// symbol, with element contents (below the word level) still drawn from
/// `rng`. Used by strategic adversaries that have already chosen the
/// worst-case answer word and only need data under it.
pub fn generate_word_instance<R: Rng + ?Sized>(
    compiled: &Compiled,
    word: &[Symbol],
    rng: &mut R,
    config: &GenConfig,
) -> Result<Vec<ITree>, GenError> {
    let mut budget = config.max_nodes;
    word.iter()
        .map(|&sym| gen_symbol(compiled, sym, rng, config, 0, &mut budget))
        .collect()
}

fn gen_element<R: Rng + ?Sized>(
    compiled: &Compiled,
    label: &str,
    rng: &mut R,
    config: &GenConfig,
    depth: usize,
    budget: &mut usize,
) -> Result<ITree, GenError> {
    if *budget == 0 {
        return Err(GenError::BudgetExhausted);
    }
    *budget -= 1;
    let content = compiled
        .content_of(label)
        .ok_or_else(|| GenError::UnknownLabel(label.to_owned()))?;
    match content {
        CompiledContent::Data => Ok(ITree::data(label, &random_text(rng))),
        CompiledContent::Any => Ok(ITree::elem(
            label,
            vec![ITree::elem(
                "anything",
                vec![ITree::text(&random_text(rng))],
            )],
        )),
        CompiledContent::Model { regex, .. } => {
            let children = gen_forest(compiled, regex, rng, config, depth + 1, budget)?;
            Ok(ITree::elem(label, children))
        }
    }
}

fn gen_forest<R: Rng + ?Sized>(
    compiled: &Compiled,
    regex: &Regex,
    rng: &mut R,
    config: &GenConfig,
    depth: usize,
    budget: &mut usize,
) -> Result<Vec<ITree>, GenError> {
    // Past max_depth, clamp star loops to zero iterations so the sampled
    // word is as short as the model allows.
    let words = if depth > config.max_depth {
        SampleConfig {
            star_continue: 0.0,
            ..config.words
        }
    } else {
        config.words
    };
    let word = sample_word(regex, rng, &words)
        .ok_or_else(|| GenError::EmptyLanguage(format!("{regex:?}")))?;
    let mut out = Vec::with_capacity(word.len());
    for sym in word {
        out.push(gen_symbol(compiled, sym, rng, config, depth, budget)?);
    }
    Ok(out)
}

fn gen_symbol<R: Rng + ?Sized>(
    compiled: &Compiled,
    sym: Symbol,
    rng: &mut R,
    config: &GenConfig,
    depth: usize,
    budget: &mut usize,
) -> Result<ITree, GenError> {
    if *budget == 0 {
        return Err(GenError::BudgetExhausted);
    }
    match compiled.kind(sym) {
        SymKind::Label => {
            let label = compiled.alphabet().name(sym).to_owned();
            gen_element(compiled, &label, rng, config, depth, budget)
        }
        SymKind::AnyElem => {
            *budget -= 1;
            Ok(ITree::elem("wild", vec![ITree::text(&random_text(rng))]))
        }
        SymKind::Function => {
            *budget -= 1;
            let sig = compiled.sig(sym).expect("functions carry signatures");
            let params = gen_forest(compiled, &sig.input, rng, config, depth + 1, budget)?;
            Ok(ITree::func(compiled.alphabet().name(sym), params))
        }
        SymKind::Class => {
            // Realize the class with a declared function satisfying every
            // pattern in the class (its expansion includes that function).
            let class_name = compiled.alphabet().name(sym).to_owned();
            let concrete = compiled.function_symbols().find(|&f| {
                compiled.kind(f) == SymKind::Function && class_realizable_by(compiled, sym, f)
            });
            match concrete {
                Some(f) => gen_symbol(compiled, f, rng, config, depth, budget),
                None => Err(GenError::UnrealizableClass(class_name)),
            }
        }
        SymKind::AnyFun => {
            *budget -= 1;
            Ok(ITree::func("opaque_service", vec![]))
        }
        SymKind::Data => {
            *budget -= 1;
            Ok(ITree::Text(random_text(rng)))
        }
    }
}

/// A declared function realizes a class if its signature matches the class
/// signature (we compare the compiled input/output regexes).
fn class_realizable_by(compiled: &Compiled, class: Symbol, func: Symbol) -> bool {
    let (Some(cs), Some(fs)) = (compiled.sig(class), compiled.sig(func)) else {
        return false;
    };
    cs.input == fs.input && cs.output == fs.output
}

fn random_text<R: Rng + ?Sized>(rng: &mut R) -> String {
    let n = rng.random_range(1..=8);
    (0..n)
        .map(|_| char::from(rng.random_range(b'a'..=b'z')))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{NoOracle, Schema};
    use crate::validate::validate;
    use axml_support::rng::SeedableRng;

    fn paper_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    #[test]
    fn generated_instances_validate() {
        let c = paper_compiled();
        let mut rng = axml_support::rng::StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let t = generate_instance(&c, "newspaper", &mut rng, &GenConfig::default()).unwrap();
            validate(&t, &c).unwrap_or_else(|e| panic!("generated invalid instance {t}: {e}"));
        }
    }

    #[test]
    fn generated_output_instances_validate() {
        let c = paper_compiled();
        let mut rng = axml_support::rng::StdRng::seed_from_u64(12);
        let sig = c.sig_of("TimeOut").clone();
        for _ in 0..100 {
            let forest =
                generate_output_instance(&c, &sig.output, &mut rng, &GenConfig::default()).unwrap();
            crate::validate::validate_output_instance(&forest, &sig.output_dfa, &c).unwrap();
        }
    }

    #[test]
    fn fixed_words_realize_and_validate() {
        let c = paper_compiled();
        let mut rng = axml_support::rng::StdRng::seed_from_u64(13);
        let sig = c.sig_of("TimeOut").clone();
        let word: Vec<Symbol> = ["exhibit", "performance", "exhibit"]
            .iter()
            .map(|n| c.alphabet().lookup(n).unwrap())
            .collect();
        let forest =
            generate_word_instance(&c, &word, &mut rng, &GenConfig::default()).unwrap();
        assert_eq!(forest.len(), 3);
        crate::validate::validate_output_instance(&forest, &sig.output_dfa, &c).unwrap();
    }

    #[test]
    fn unknown_label_is_an_error() {
        let c = paper_compiled();
        let mut rng = axml_support::rng::StdRng::seed_from_u64(1);
        assert!(matches!(
            generate_instance(&c, "nothing", &mut rng, &GenConfig::default()),
            Err(GenError::UnknownLabel(_))
        ));
    }

    #[test]
    fn recursive_schema_respects_budget() {
        // r -> r* is deeply recursive; generation must stop, one way or
        // the other (short words or budget exhaustion), not hang.
        let c = Compiled::new(
            Schema::builder().element("r", "r*").build().unwrap(),
            &NoOracle,
        )
        .unwrap();
        let mut rng = axml_support::rng::StdRng::seed_from_u64(5);
        let cfg = GenConfig {
            max_depth: 3,
            max_nodes: 200,
            ..GenConfig::default()
        };
        for _ in 0..50 {
            match generate_instance(&c, "r", &mut rng, &cfg) {
                Ok(t) => assert!(t.size() <= 200),
                Err(GenError::BudgetExhausted) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }
}
