//! Schema refinement: pure containment, no rewriting.
//!
//! `s1` *refines* `s2` when every instance of `s1` is already an instance
//! of `s2` — the degenerate case of Def. 6 where the empty rewriting
//! sequence always works. The sender can then ship documents unchanged.
//! Negotiation uses this as a fast pre-check before the full Sec. 6 game.
//!
//! The check is per element type, comparing content languages over the
//! union of the two particle vocabularies (particles are compared by name,
//! which is sound under the paper's assumption that common functions and
//! patterns have identical definitions).

use crate::def::{Content, Schema};
use axml_automata::{Alphabet, Dfa, Nfa, Regex};

/// One reason `s1` fails to refine `s2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefineFailure {
    /// `s2` does not declare the label.
    Missing(String),
    /// The content kinds are incompatible (e.g. data vs elements).
    Kind(String),
    /// `lang(τ1(l)) ⊄ lang(τ2(l))`.
    Content(String),
}

impl std::fmt::Display for RefineFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefineFailure::Missing(l) => write!(f, "'{l}' is not declared by the wider schema"),
            RefineFailure::Kind(l) => write!(f, "content kinds of '{l}' are incompatible"),
            RefineFailure::Content(l) => {
                write!(f, "content of '{l}' is not contained in the wider schema's")
            }
        }
    }
}

/// Checks whether every instance of `s1` is an instance of `s2`
/// (considering every element type of `s1`). Returns the failures; empty
/// means `s1` refines `s2`.
pub fn schema_refines(s1: &Schema, s2: &Schema) -> Vec<RefineFailure> {
    let mut failures = Vec::new();
    for def in s1.elements.values() {
        let Some(other) = s2.elements.get(&def.name) else {
            failures.push(RefineFailure::Missing(def.name.clone()));
            continue;
        };
        match (&def.content, &other.content) {
            (_, Content::Any) => {}
            (Content::Data, Content::Data) => {}
            (Content::Data, Content::Model(_))
            | (Content::Model(_), Content::Data)
            | (Content::Any, _) => failures.push(RefineFailure::Kind(def.name.clone())),
            (Content::Model(re1), Content::Model(re2)) => {
                if !model_subset(re1, &s1.alphabet, re2, &s2.alphabet) {
                    failures.push(RefineFailure::Content(def.name.clone()));
                }
            }
        }
    }
    failures
}

/// `lang(re1) ⊆ lang(re2)` with symbols matched by name across alphabets.
fn model_subset(re1: &Regex, ab1: &Alphabet, re2: &Regex, ab2: &Alphabet) -> bool {
    let mut union = Alphabet::new();
    let m1 = re1.map_symbols(&mut |s| Regex::sym(union.intern(ab1.name(s))));
    let m2 = re2.map_symbols(&mut |s| Regex::sym(union.intern(ab2.name(s))));
    let n = union.len();
    let d1 = Dfa::determinize(&Nfa::thompson(&m1, n)).completed(n);
    let d2 = Dfa::determinize(&Nfa::thompson(&m2, n)).completed(n);
    d1.subset_of(&d2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn newspaper(model: &str) -> Schema {
        Schema::builder()
            .element("newspaper", model)
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap()
    }

    #[test]
    fn materialized_schema_refines_intensional_one() {
        // (**) allows fewer documents than (*): every (**) instance is a
        // (*) instance, but not the other way around.
        let star = newspaper("title.date.(Get_Temp|temp).(TimeOut|exhibit*)");
        let star2 = newspaper("title.date.temp.(TimeOut|exhibit*)");
        assert!(schema_refines(&star2, &star).is_empty());
        let failures = schema_refines(&star, &star2);
        assert!(failures
            .iter()
            .any(|f| matches!(f, RefineFailure::Content(l) if l == "newspaper")));
    }

    #[test]
    fn identical_schemas_refine_each_other() {
        let s = newspaper("title.date.temp.exhibit*");
        assert!(schema_refines(&s, &s).is_empty());
    }

    #[test]
    fn missing_and_kind_failures() {
        let s1 = Schema::builder()
            .element("r", "extra")
            .data_element("extra")
            .build()
            .unwrap();
        let s2 = Schema::builder()
            .element("r", "")
            .element("extra", "r")
            .build()
            .unwrap();
        let failures = schema_refines(&s1, &s2);
        assert!(failures
            .iter()
            .any(|f| matches!(f, RefineFailure::Content(l) if l == "r")));
        assert!(failures
            .iter()
            .any(|f| matches!(f, RefineFailure::Kind(l) if l == "extra")));
        let s3 = Schema::builder().element("r", "").build().unwrap();
        assert!(schema_refines(&s1, &s3)
            .iter()
            .any(|f| matches!(f, RefineFailure::Missing(l) if l == "extra")));
    }

    #[test]
    fn wildcard_content_absorbs_anything() {
        let s1 = newspaper("title.date.temp.exhibit*");
        let s2 = Schema::builder()
            .any_element("newspaper")
            .any_element("title")
            .any_element("date")
            .any_element("temp")
            .any_element("exhibit")
            .any_element("city")
            .any_element("performance")
            .build()
            .unwrap();
        assert!(schema_refines(&s1, &s2).is_empty());
    }
}
