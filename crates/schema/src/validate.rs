//! Document validation (Def. 3 of the paper).
//!
//! A document is an instance of a schema if, for every data node, the labels
//! of its children form a word in the content model of its label, and for
//! every function node the children (parameters) form a word in the
//! function's input type — recursively.

use crate::compile::{Compiled, CompiledContent};
use crate::def::SchemaError;
use crate::doc::ITree;
use axml_automata::Symbol;

/// Validates `tree` against the compiled schema.
pub fn validate(tree: &ITree, compiled: &Compiled) -> Result<(), SchemaError> {
    match tree {
        ITree::Text(_) => Ok(()),
        ITree::Elem { label, children } => {
            let sym = compiled.classify_label(label);
            let content = compiled.content(sym).ok_or_else(|| SchemaError::Invalid {
                message: format!("unknown element label '{label}'"),
            })?;
            validate_element(label, children, content, compiled)
        }
        ITree::Func(f) => {
            let sig = compiled.sig_of(&f.name);
            let word = words_of(&f.params, compiled).map_err(|m| SchemaError::Invalid {
                message: format!("in parameters of {}: {m}", f.name),
            })?;
            if !sig.input_dfa.accepts(&word) {
                return Err(SchemaError::Invalid {
                    message: format!(
                        "parameters of '{}' do not match its input type (got {})",
                        f.name,
                        compiled.alphabet().format_word(&word)
                    ),
                });
            }
            for p in &f.params {
                validate(p, compiled)?;
            }
            Ok(())
        }
    }
}

fn validate_element(
    label: &str,
    children: &[ITree],
    content: &CompiledContent,
    compiled: &Compiled,
) -> Result<(), SchemaError> {
    match content {
        CompiledContent::Any => Ok(()),
        CompiledContent::Data => {
            if children.iter().all(|c| matches!(c, ITree::Text(_))) {
                Ok(())
            } else {
                Err(SchemaError::Invalid {
                    message: format!("'{label}' is atomic (data) but has non-text children"),
                })
            }
        }
        CompiledContent::Model { dfa, .. } => {
            let word = words_of(children, compiled).map_err(|m| SchemaError::Invalid {
                message: format!("in children of '{label}': {m}"),
            })?;
            if !dfa.accepts(&word) {
                return Err(SchemaError::Invalid {
                    message: format!(
                        "children of '{label}' ({}) do not match its content model",
                        compiled.alphabet().format_word(&word)
                    ),
                });
            }
            for c in children {
                validate(c, compiled)?;
            }
            Ok(())
        }
    }
}

/// Maps a forest of children onto effective-alphabet symbols.
///
/// Text children classify to the `#data` symbol, matched by the `data`
/// particle (used in function signatures, e.g. `τ_in(TimeOut) = data`).
pub fn words_of(children: &[ITree], compiled: &Compiled) -> Result<Vec<Symbol>, String> {
    Ok(children
        .iter()
        .map(|c| match c {
            ITree::Elem { label, .. } => compiled.classify_label(label),
            ITree::Func(f) => compiled.classify_func(&f.name),
            ITree::Text(_) => compiled.data_sym(),
        })
        .collect())
}

/// Validates a *forest* as an output instance of type `output_dfa`
/// (Def. 3: root labels form a word in `τ_out(f)`, each tree an instance).
pub fn validate_output_instance(
    trees: &[ITree],
    sig_output: &axml_automata::Dfa,
    compiled: &Compiled,
) -> Result<(), SchemaError> {
    let word = words_of(trees, compiled).map_err(|m| SchemaError::Invalid { message: m })?;
    if !sig_output.accepts(&word) {
        return Err(SchemaError::Invalid {
            message: format!(
                "returned forest ({}) does not match the output type",
                compiled.alphabet().format_word(&word)
            ),
        });
    }
    for t in trees {
        validate(t, compiled)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{NoOracle, Predicate, Schema};
    use crate::doc::newspaper_example;

    fn compiled(schema: Schema) -> Compiled {
        Compiled::new(schema, &NoOracle).unwrap()
    }

    fn paper_star() -> Compiled {
        compiled(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
        )
    }

    fn paper_star_star() -> Compiled {
        // Schema (**): temp must be materialized.
        compiled(
            Schema::builder()
                .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn figure2_document_is_instance_of_star() {
        // "It is easy to see that the document of Figure 2.a is an instance
        //  of the schema of (*)" — Sec. 2.
        let doc = newspaper_example();
        validate(&doc, &paper_star()).unwrap();
    }

    #[test]
    fn figure2_document_is_not_instance_of_star_star() {
        // "... but not of a schema with τ′" — Sec. 2.
        let doc = newspaper_example();
        let err = validate(&doc, &paper_star_star()).unwrap_err();
        assert!(matches!(err, SchemaError::Invalid { .. }));
    }

    #[test]
    fn materialized_document_is_instance_of_star_star() {
        // Fig. 2.b: Get_Temp replaced by its result.
        let doc = ITree::elem(
            "newspaper",
            vec![
                ITree::data("title", "The Sun"),
                ITree::data("date", "04/10/2002"),
                ITree::data("temp", "15 C"),
                ITree::func("TimeOut", vec![ITree::text("exhibits")]),
            ],
        );
        validate(&doc, &paper_star_star()).unwrap();
    }

    #[test]
    fn bad_parameters_detected() {
        // Get_Temp expects a city parameter, not a date.
        let doc = ITree::elem(
            "newspaper",
            vec![
                ITree::data("title", "t"),
                ITree::data("date", "d"),
                ITree::func("Get_Temp", vec![ITree::data("date", "x")]),
                ITree::func("TimeOut", vec![ITree::text("y")]),
            ],
        );
        let err = validate(&doc, &paper_star()).unwrap_err();
        assert!(err.to_string().contains("Get_Temp"), "{err}");
    }

    #[test]
    fn data_elements_must_hold_text_only() {
        let doc = ITree::elem("title", vec![ITree::data("date", "x")]);
        assert!(validate(&doc, &paper_star()).is_err());
        let ok = ITree::data("title", "fine");
        validate(&ok, &paper_star()).unwrap();
    }

    #[test]
    fn unknown_label_rejected() {
        let doc = ITree::elem("mystery", vec![]);
        assert!(validate(&doc, &paper_star()).is_err());
    }

    #[test]
    fn nested_instances_checked_recursively() {
        // exhibit inside newspaper must itself conform.
        let good = ITree::elem(
            "newspaper",
            vec![
                ITree::data("title", "t"),
                ITree::data("date", "d"),
                ITree::data("temp", "15"),
                ITree::elem(
                    "exhibit",
                    vec![
                        ITree::data("title", "expo"),
                        ITree::func("Get_Date", vec![ITree::data("title", "expo")]),
                    ],
                ),
            ],
        );
        validate(&good, &paper_star()).unwrap();
        let bad = ITree::elem(
            "newspaper",
            vec![
                ITree::data("title", "t"),
                ITree::data("date", "d"),
                ITree::data("temp", "15"),
                ITree::elem("exhibit", vec![ITree::data("date", "backwards")]),
            ],
        );
        assert!(validate(&bad, &paper_star()).is_err());
    }

    #[test]
    fn pattern_matched_function_validates() {
        let c = compiled(
            Schema::builder()
                .element("r", "Forecast|temp")
                .data_element("temp")
                .data_element("city")
                .pattern(
                    "Forecast",
                    Predicate::NamePrefix("Get_".into()),
                    "city",
                    "temp",
                )
                .function("Get_Berlin_Temp", "city", "temp")
                .build()
                .unwrap(),
        );
        let doc = ITree::elem(
            "r",
            vec![ITree::func(
                "Get_Berlin_Temp",
                vec![ITree::data("city", "B")],
            )],
        );
        validate(&doc, &c).unwrap();
        // A function with the wrong name prefix does not match the pattern.
        let c2 = compiled(
            Schema::builder()
                .element("r", "Forecast|temp")
                .data_element("temp")
                .data_element("city")
                .pattern(
                    "Forecast",
                    Predicate::NamePrefix("Get_".into()),
                    "city",
                    "temp",
                )
                .function("FetchTemp", "city", "temp")
                .build()
                .unwrap(),
        );
        let doc2 = ITree::elem(
            "r",
            vec![ITree::func("FetchTemp", vec![ITree::data("city", "B")])],
        );
        assert!(validate(&doc2, &c2).is_err());
    }

    #[test]
    fn wildcard_content_accepts_anything() {
        let c = compiled(
            Schema::builder()
                .element("r", "blob")
                .any_element("blob")
                .build()
                .unwrap(),
        );
        let doc = ITree::elem(
            "r",
            vec![ITree::elem(
                "blob",
                vec![
                    ITree::elem("unknown", vec![ITree::text("x")]),
                    ITree::func("mystery_fn", vec![]),
                ],
            )],
        );
        validate(&doc, &c).unwrap();
    }

    #[test]
    fn output_instance_validation() {
        let c = paper_star();
        let sig = c.sig_of("TimeOut");
        let ok = vec![
            ITree::elem(
                "exhibit",
                vec![ITree::data("title", "a"), ITree::data("date", "d")],
            ),
            ITree::elem("performance", vec![ITree::text("p")]),
        ];
        validate_output_instance(&ok, &sig.output_dfa, &c).unwrap();
        let bad = vec![ITree::data("temp", "xx")];
        assert!(validate_output_instance(&bad, &sig.output_dfa, &c).is_err());
    }

    #[test]
    fn mixed_content_rejected_in_regular_models() {
        let doc = ITree::elem(
            "newspaper",
            vec![
                ITree::text("stray"),
                ITree::data("title", "t"),
                ITree::data("date", "d"),
                ITree::data("temp", "15"),
            ],
        );
        assert!(validate(&doc, &paper_star()).is_err());
    }
}
