//! Schema compilation onto a finite *effective alphabet*.
//!
//! Content models range over particles: concrete labels, concrete functions,
//! function patterns and wildcards. Patterns and wildcards denote open-ended
//! sets of names, but all the paper's algorithms are automata constructions
//! over a finite alphabet. The standard fix is to quotient the infinite name
//! space by the particles in play:
//!
//! * every concrete label/function declared in the schema is its own symbol;
//! * unknown functions are represented by *class symbols*, one per feasible
//!   set of patterns they might satisfy (patterns can only be co-satisfied
//!   when their signatures agree, which keeps the enumeration tiny);
//! * `#anyfun` stands for unknown functions satisfying no pattern (matched
//!   only by the `ANYFUN` wildcard) and `#anyelem` for unknown element
//!   labels (matched only by `ANY`).
//!
//! A particle then *expands* to the alternation of all symbols it matches,
//! and every regular expression of the schema is rewritten over the
//! effective alphabet once and for all.

use crate::def::{Content, PatternOracle, Schema, SchemaError, ANY_ELEMENT, ANY_FUNCTION, DATA};
use axml_automata::{Alphabet, Dfa, Glushkov, Nfa, Regex, Symbol};
use std::collections::BTreeMap;

/// Cap on declared patterns (class enumeration is exponential per
/// signature group; real schemas use a handful).
pub const MAX_PATTERNS: usize = 12;

/// The kind of an effective-alphabet symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymKind {
    /// A concrete element label.
    Label,
    /// A concrete declared function.
    Function,
    /// A class of unknown functions satisfying a specific pattern set.
    Class,
    /// Unknown functions satisfying no pattern (`#anyfun`).
    AnyFun,
    /// Unknown element labels (`#anyelem`).
    AnyElem,
    /// An atomic data value (`#data`, text content).
    Data,
}

/// Compiled content of an element type.
#[derive(Debug, Clone)]
pub enum CompiledContent {
    /// Atomic data.
    Data,
    /// Unconstrained subtree.
    Any,
    /// A regular model: expanded regex plus its (complete-free) DFA.
    Model {
        /// Regex over the effective alphabet.
        regex: Regex,
        /// Determinized automaton used for validation.
        dfa: Dfa,
    },
}

/// Signature of a function-like symbol (function, class, or `#anyfun`).
#[derive(Debug, Clone)]
pub struct SigInfo {
    /// Input type over the effective alphabet.
    pub input: Regex,
    /// Output type over the effective alphabet.
    pub output: Regex,
    /// DFA for the input type (validation of parameters).
    pub input_dfa: Dfa,
    /// DFA for the output type (validation of returned data).
    pub output_dfa: Dfa,
    /// Whether a rewriting may invoke calls classified to this symbol.
    pub invocable: bool,
}

/// A schema compiled over its effective alphabet.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The source schema (typically the merge of sender and exchange
    /// declarations).
    pub schema: Schema,
    alphabet: Alphabet,
    kinds: Vec<SymKind>,
    content: Vec<Option<CompiledContent>>,
    sigs: Vec<Option<SigInfo>>,
    admits_fun: Vec<bool>,
    anyelem: Symbol,
    anyfun: Symbol,
    data: Symbol,
    fingerprint: std::sync::OnceLock<u64>,
}

impl Compiled {
    /// Compiles `schema`, evaluating pattern predicates on declared
    /// functions through `oracle`.
    pub fn new(schema: Schema, oracle: &dyn PatternOracle) -> Result<Compiled, SchemaError> {
        if schema.patterns.len() > MAX_PATTERNS {
            return Err(SchemaError::TooManyPatterns {
                count: schema.patterns.len(),
                max: MAX_PATTERNS,
            });
        }
        let mut alphabet = Alphabet::new();
        let mut kinds = Vec::new();
        let push = |alphabet: &mut Alphabet, kinds: &mut Vec<SymKind>, name: &str, k: SymKind| {
            let s = alphabet.intern(name);
            if s as usize == kinds.len() {
                kinds.push(k);
            }
            s
        };
        for name in schema.elements.keys() {
            push(&mut alphabet, &mut kinds, name, SymKind::Label);
        }
        for name in schema.functions.keys() {
            push(&mut alphabet, &mut kinds, name, SymKind::Function);
        }
        // Membership of declared functions in patterns: name predicate holds
        // and the signature (at particle level) is identical.
        let pattern_names: Vec<&String> = schema.patterns.keys().collect();
        let mut func_patterns: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for f in schema.functions.values() {
            let mut member = Vec::new();
            for p in schema.patterns.values() {
                if p.predicate.eval(&f.name, oracle) && p.input == f.input && p.output == f.output {
                    member.push(p.name.clone());
                }
            }
            func_patterns.insert(f.name.clone(), member);
        }
        // Feasible class symbols: non-empty subsets of patterns sharing one
        // signature.
        let mut sig_groups: BTreeMap<(String, String), Vec<&String>> = BTreeMap::new();
        for name in &pattern_names {
            let p = &schema.patterns[*name];
            let key = (
                p.input.display(&schema.alphabet).to_string(),
                p.output.display(&schema.alphabet).to_string(),
            );
            sig_groups.entry(key).or_default().push(name);
        }
        // class name -> (pattern subset)
        let mut classes: Vec<(Symbol, Vec<String>)> = Vec::new();
        for group in sig_groups.values() {
            let m = group.len();
            for mask in 1u32..(1 << m) {
                let subset: Vec<String> = (0..m)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| group[i].clone())
                    .collect();
                let cname = format!("#class:{}", subset.join("+"));
                let sym = push(&mut alphabet, &mut kinds, &cname, SymKind::Class);
                classes.push((sym, subset));
            }
        }
        let anyfun = push(&mut alphabet, &mut kinds, "#anyfun", SymKind::AnyFun);
        let anyelem = push(&mut alphabet, &mut kinds, "#anyelem", SymKind::AnyElem);
        let data = push(&mut alphabet, &mut kinds, "#data", SymKind::Data);

        // Particle expansion over the effective alphabet.
        let expand = |re: &Regex, alphabet: &Alphabet| -> Result<Regex, SchemaError> {
            let mut err = None;
            let out = re.map_symbols(&mut |sym| {
                let name = schema.alphabet.name(sym);
                match name {
                    DATA => Regex::sym(data),
                    ANY_ELEMENT => {
                        let mut branches: Vec<Regex> = schema
                            .elements
                            .keys()
                            .map(|l| Regex::sym(alphabet.lookup(l).expect("interned")))
                            .collect();
                        branches.push(Regex::sym(anyelem));
                        Regex::alt(branches)
                    }
                    ANY_FUNCTION => {
                        let mut branches: Vec<Regex> = schema
                            .functions
                            .keys()
                            .map(|f| Regex::sym(alphabet.lookup(f).expect("interned")))
                            .collect();
                        branches.extend(classes.iter().map(|(s, _)| Regex::sym(*s)));
                        branches.push(Regex::sym(anyfun));
                        Regex::alt(branches)
                    }
                    _ => {
                        if schema.elements.contains_key(name) || schema.functions.contains_key(name)
                        {
                            Regex::sym(alphabet.lookup(name).expect("interned"))
                        } else if schema.patterns.contains_key(name) {
                            let mut branches: Vec<Regex> = schema
                                .functions
                                .values()
                                .filter(|f| func_patterns[&f.name].contains(&name.to_owned()))
                                .map(|f| Regex::sym(alphabet.lookup(&f.name).expect("interned")))
                                .collect();
                            branches.extend(
                                classes
                                    .iter()
                                    .filter(|(_, subset)| subset.iter().any(|p| p == name))
                                    .map(|(s, _)| Regex::sym(*s)),
                            );
                            Regex::alt(branches)
                        } else {
                            err = Some(SchemaError::Undefined {
                                name: name.to_owned(),
                                context: "expansion".to_owned(),
                            });
                            Regex::Empty
                        }
                    }
                }
            });
            match err {
                Some(e) => Err(e),
                None => Ok(out),
            }
        };

        let n_syms = alphabet.len();
        let to_dfa = |re: &Regex| -> Dfa {
            // Glushkov when deterministic (cheap), subset construction
            // otherwise — expansion can merge particles onto one symbol.
            let g = Glushkov::new(re, n_syms);
            match g.to_dfa() {
                Ok(dfa) => dfa,
                Err(_) => Dfa::determinize(&Nfa::thompson(re, n_syms)),
            }
        };

        let mut content: Vec<Option<CompiledContent>> = vec![None; n_syms];
        let mut sigs: Vec<Option<SigInfo>> = vec![None; n_syms];
        for e in schema.elements.values() {
            let sym = alphabet.lookup(&e.name).expect("interned") as usize;
            content[sym] = Some(match &e.content {
                Content::Data => CompiledContent::Data,
                Content::Any => CompiledContent::Any,
                Content::Model(re) => {
                    let regex = expand(re, &alphabet)?;
                    let dfa = to_dfa(&regex);
                    CompiledContent::Model { regex, dfa }
                }
            });
        }
        for f in schema.functions.values() {
            let sym = alphabet.lookup(&f.name).expect("interned") as usize;
            let input = expand(&f.input, &alphabet)?;
            let output = expand(&f.output, &alphabet)?;
            sigs[sym] = Some(SigInfo {
                input_dfa: to_dfa(&input),
                output_dfa: to_dfa(&output),
                input,
                output,
                invocable: f.invocable,
            });
        }
        for (sym, subset) in &classes {
            let p = &schema.patterns[&subset[0]];
            let input = expand(&p.input, &alphabet)?;
            let output = expand(&p.output, &alphabet)?;
            let invocable = subset.iter().all(|name| schema.patterns[name].invocable);
            sigs[*sym as usize] = Some(SigInfo {
                input_dfa: to_dfa(&input),
                output_dfa: to_dfa(&output),
                input,
                output,
                invocable,
            });
        }
        // #anyfun: nothing is known about its signature; parameters and
        // results validate freely, and it can never be invoked.
        {
            let anything = Regex::star(Regex::alt(
                (0..n_syms as Symbol).map(Regex::sym).collect::<Vec<_>>(),
            ));
            sigs[anyfun as usize] = Some(SigInfo {
                input_dfa: to_dfa(&anything),
                output_dfa: to_dfa(&anything),
                input: anything.clone(),
                output: anything,
                invocable: false,
            });
        }
        // Which labels' content models can contain a function symbol at all —
        // the streaming enforcer's lookahead: an `int:fun` child under a label
        // that admits none is necessarily a rewrite site, and a valid-as-is
        // splice is only worth checking where one is admitted.
        let admits_fun: Vec<bool> = content
            .iter()
            .map(|slot| match slot {
                Some(CompiledContent::Any) => true,
                Some(CompiledContent::Model { regex, .. }) => regex.symbols().iter().any(|&s| {
                    matches!(
                        kinds[s as usize],
                        SymKind::Function | SymKind::Class | SymKind::AnyFun
                    )
                }),
                Some(CompiledContent::Data) | None => false,
            })
            .collect();
        Ok(Compiled {
            schema,
            alphabet,
            kinds,
            content,
            sigs,
            admits_fun,
            anyelem,
            anyfun,
            data,
            fingerprint: std::sync::OnceLock::new(),
        })
    }

    /// The effective alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// A deterministic structural hash of the compiled schema: effective
    /// alphabet (names, order, kinds), every content model, and every
    /// signature (input/output types plus invocability).
    ///
    /// Two `Compiled` values with the same fingerprint define the same
    /// effective alphabet and the same languages everywhere the rewriting
    /// algorithms look, so solver artifacts (DFAs, solved games) keyed by
    /// `(fingerprint, …)` may be shared between them. Computed once and
    /// memoized; stable across runs and platforms.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            use std::hash::{Hash, Hasher};
            let mut h = axml_support::hash::FxHasher::default();
            self.alphabet.len().hash(&mut h);
            for (sym, name) in self.alphabet.iter() {
                name.hash(&mut h);
                (self.kinds[sym as usize] as u8).hash(&mut h);
            }
            for (sym, slot) in self.content.iter().enumerate() {
                match slot {
                    None => 0u8.hash(&mut h),
                    Some(CompiledContent::Data) => 1u8.hash(&mut h),
                    Some(CompiledContent::Any) => 2u8.hash(&mut h),
                    Some(CompiledContent::Model { regex, .. }) => {
                        3u8.hash(&mut h);
                        sym.hash(&mut h);
                        regex.display(&self.alphabet).to_string().hash(&mut h);
                    }
                }
            }
            for (sym, slot) in self.sigs.iter().enumerate() {
                match slot {
                    None => 0u8.hash(&mut h),
                    Some(sig) => {
                        1u8.hash(&mut h);
                        sym.hash(&mut h);
                        sig.input.display(&self.alphabet).to_string().hash(&mut h);
                        sig.output.display(&self.alphabet).to_string().hash(&mut h);
                        sig.invocable.hash(&mut h);
                    }
                }
            }
            h.finish()
        })
    }

    /// Kind of an effective symbol.
    pub fn kind(&self, sym: Symbol) -> SymKind {
        self.kinds[sym as usize]
    }

    /// The `#anyelem` residual symbol.
    pub fn anyelem(&self) -> Symbol {
        self.anyelem
    }

    /// The `#anyfun` residual symbol.
    pub fn anyfun(&self) -> Symbol {
        self.anyfun
    }

    /// The `#data` atomic-value symbol (text children classify to it).
    pub fn data_sym(&self) -> Symbol {
        self.data
    }

    /// Classifies a document element label.
    pub fn classify_label(&self, label: &str) -> Symbol {
        match self.alphabet.lookup(label) {
            Some(s) if self.kinds[s as usize] == SymKind::Label => s,
            _ => self.anyelem,
        }
    }

    /// Classifies a document function name. Unknown functions (no WSDL
    /// description in the compiled schema) fall into `#anyfun`.
    pub fn classify_func(&self, name: &str) -> Symbol {
        match self.alphabet.lookup(name) {
            Some(s) if self.kinds[s as usize] == SymKind::Function => s,
            _ => self.anyfun,
        }
    }

    /// Compiled content of a label symbol.
    pub fn content(&self, sym: Symbol) -> Option<&CompiledContent> {
        self.content.get(sym as usize).and_then(Option::as_ref)
    }

    /// Compiled content of a label by name.
    pub fn content_of(&self, label: &str) -> Option<&CompiledContent> {
        self.alphabet.lookup(label).and_then(|s| self.content(s))
    }

    /// Signature of a function-like symbol.
    pub fn sig(&self, sym: Symbol) -> Option<&SigInfo> {
        self.sigs.get(sym as usize).and_then(Option::as_ref)
    }

    /// Signature of a function by document name (classified first).
    pub fn sig_of(&self, name: &str) -> &SigInfo {
        self.sig(self.classify_func(name))
            .expect("function-like symbols always carry signatures")
    }

    /// True if calls classified to `sym` may be invoked by rewritings.
    pub fn invocable(&self, sym: Symbol) -> bool {
        self.sig(sym).is_some_and(|s| s.invocable)
    }

    /// True if the content model of label symbol `sym` admits function
    /// symbols directly among its children (wildcard content admits
    /// anything). The streaming enforcer uses this lookahead to decide
    /// whether an element that turned out to contain `int:fun` children can
    /// possibly be valid as-is, or is necessarily a rewrite site.
    pub fn admits_functions(&self, sym: Symbol) -> bool {
        self.admits_fun.get(sym as usize).copied().unwrap_or(false)
    }

    /// [`Compiled::admits_functions`] by label name.
    pub fn admits_functions_of(&self, label: &str) -> bool {
        self.admits_functions(self.classify_label(label))
    }

    /// All label symbols.
    pub fn label_symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.kinds.len() as Symbol).filter(|&s| self.kinds[s as usize] == SymKind::Label)
    }

    /// All function-like symbols (functions, classes, `#anyfun`).
    pub fn function_symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.kinds.len() as Symbol).filter(|&s| {
            matches!(
                self.kinds[s as usize],
                SymKind::Function | SymKind::Class | SymKind::AnyFun
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{NoOracle, Predicate};

    fn paper_compiled() -> Compiled {
        let s = Schema::builder()
            .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .root("newspaper")
            .build()
            .unwrap();
        Compiled::new(s, &NoOracle).unwrap()
    }

    #[test]
    fn symbols_and_kinds() {
        let c = paper_compiled();
        assert_eq!(c.kind(c.classify_label("newspaper")), SymKind::Label);
        assert_eq!(c.kind(c.classify_func("Get_Temp")), SymKind::Function);
        assert_eq!(c.classify_label("nope"), c.anyelem());
        assert_eq!(c.classify_func("nope"), c.anyfun());
        assert_eq!(c.label_symbols().count(), 7);
        // 3 functions + #anyfun, no patterns declared.
        assert_eq!(c.function_symbols().count(), 4);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let a = paper_compiled();
        let b = paper_compiled();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint()); // memoized path
        let other = Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date")
                .data_element("title")
                .data_element("date")
                .root("newspaper")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        assert_ne!(a.fingerprint(), other.fingerprint());
    }

    #[test]
    fn content_dfa_validates_words() {
        let c = paper_compiled();
        let model = match c.content_of("newspaper").unwrap() {
            CompiledContent::Model { dfa, .. } => dfa,
            _ => panic!("newspaper has a regular model"),
        };
        let w = |names: &[&str]| -> Vec<Symbol> {
            names
                .iter()
                .map(|n| c.alphabet().lookup(n).unwrap())
                .collect()
        };
        assert!(model.accepts(&w(&["title", "date", "Get_Temp", "TimeOut"])));
        assert!(model.accepts(&w(&["title", "date", "temp", "exhibit", "exhibit"])));
        assert!(!model.accepts(&w(&["title", "date", "temp", "performance"])));
    }

    #[test]
    fn pattern_classes_created_per_signature_group() {
        let s = Schema::builder()
            .element("newspaper", "title.(Forecast|temp)")
            .data_element("title")
            .data_element("temp")
            .data_element("city")
            .pattern(
                "Forecast",
                Predicate::NamePrefix("Get_".into()),
                "city",
                "temp",
            )
            .pattern(
                "Approved",
                Predicate::External("InACL".into()),
                "city",
                "temp",
            )
            .function("Get_Temp", "city", "temp")
            .build()
            .unwrap();
        let c = Compiled::new(s, &NoOracle).unwrap();
        // Subsets: {Forecast}, {Approved}, {Forecast,Approved} — same sig.
        let class_syms: Vec<_> = (0..c.alphabet().len() as Symbol)
            .filter(|&sym| c.kind(sym) == SymKind::Class)
            .collect();
        assert_eq!(class_syms.len(), 3);
        // Get_Temp matches Forecast (prefix) but not Approved (oracle: no).
        let fc = match c.content_of("newspaper").unwrap() {
            CompiledContent::Model { regex, .. } => regex.clone(),
            _ => panic!(),
        };
        let syms = fc.symbols();
        let get_temp = c.alphabet().lookup("Get_Temp").unwrap();
        assert!(syms.contains(&get_temp), "concrete match expanded in");
    }

    #[test]
    fn signature_mismatch_blocks_pattern_membership() {
        let s = Schema::builder()
            .element("r", "P*")
            .data_element("city")
            .data_element("temp")
            .pattern("P", Predicate::True, "city", "temp")
            .function("f", "city", "city") // wrong output type
            .build()
            .unwrap();
        let c = Compiled::new(s, &NoOracle).unwrap();
        let re = match c.content_of("r").unwrap() {
            CompiledContent::Model { regex, .. } => regex.clone(),
            _ => panic!(),
        };
        let f = c.alphabet().lookup("f").unwrap();
        assert!(!re.symbols().contains(&f), "f must not match pattern P");
    }

    #[test]
    fn wildcards_expand() {
        let s = Schema::builder()
            .element("r", "ANY*.ANYFUN?")
            .data_element("a")
            .function("f", "", "a")
            .build()
            .unwrap();
        let c = Compiled::new(s, &NoOracle).unwrap();
        let dfa = match c.content_of("r").unwrap() {
            CompiledContent::Model { dfa, .. } => dfa,
            _ => panic!(),
        };
        // Unknown element then unknown function then known pair.
        let word = vec![c.anyelem(), c.anyfun()];
        assert!(dfa.accepts(&word));
        let word2 = vec![
            c.alphabet().lookup("a").unwrap(),
            c.anyelem(),
            c.alphabet().lookup("f").unwrap(),
        ];
        assert!(dfa.accepts(&word2));
        // 'r' itself is a label and matched by ANY.
        assert!(dfa.accepts(&[c.classify_label("r")]));
        // Function where elements expected: rejected.
        assert!(!dfa.accepts(&[c.anyfun(), c.anyelem()]));
    }

    #[test]
    fn anyfun_is_never_invocable() {
        let c = paper_compiled();
        assert!(!c.invocable(c.anyfun()));
        assert!(c.invocable(c.classify_func("Get_Temp")));
    }

    #[test]
    fn too_many_patterns_rejected() {
        let mut b = Schema::builder().data_element("x");
        for i in 0..13 {
            b = b.pattern(&format!("P{i}"), Predicate::True, "x", "x");
        }
        let s = b.build().unwrap();
        assert!(matches!(
            Compiled::new(s, &NoOracle),
            Err(SchemaError::TooManyPatterns { .. })
        ));
    }
}
