//! Metric registry: named counters, gauges and fixed-bucket histograms
//! behind cheap atomic handles.
//!
//! A [`Registry`] is a cheaply clonable handle onto a shared map of
//! instruments. Instruments are interned by name: asking twice for the
//! same name yields handles onto the same atomic cell, so hot paths hold
//! a [`Counter`]/[`Gauge`]/[`Histogram`] and never touch the map again.
//! [`Registry::snapshot`] reads every instrument into a [`Snapshot`]
//! whose JSON rendering is deterministic (keys sorted, no whitespace),
//! so two snapshots of identical state serialize byte-identically.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::json::{self, Json};

/// A monotonically increasing `u64` metric.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, pool sizes).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Subtracts `d`.
    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistoCell {
    /// Upper bounds of the finite buckets, strictly increasing. An
    /// implicit `+inf` bucket follows the last bound.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` occupancy counts.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations (durations in
/// nanoseconds, frame sizes in bytes).
#[derive(Clone)]
pub struct Histogram(Arc<HistoCell>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let cell = &*self.0;
        let idx = cell.bounds.partition_point(|&b| b < v);
        cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

/// Exponential-ish nanosecond latency bounds: 1µs … 1s.
pub const LATENCY_NS_BOUNDS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Frame-size bounds in bytes: 64 B … 1 MiB.
pub const BYTES_BOUNDS: &[u64] = &[64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576];

#[derive(Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistoCell>>>,
}

/// A shared map of named instruments. Cloning is cheap (one `Arc`).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field(
                "counters",
                &self.inner.counters.read().unwrap().len(),
            )
            .field("gauges", &self.inner.gauges.read().unwrap().len())
            .field(
                "histograms",
                &self.inner.histograms.read().unwrap().len(),
            )
            .finish()
    }
}

impl Registry {
    /// A fresh, empty registry (use [`crate::global`] for the process-wide
    /// one).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().unwrap().get(name) {
            return Counter(Arc::clone(c));
        }
        let mut map = self.inner.counters.write().unwrap();
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.gauges.read().unwrap().get(name) {
            return Gauge(Arc::clone(g));
        }
        let mut map = self.inner.gauges.write().unwrap();
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Arc::clone(cell))
    }

    /// The histogram named `name`, created on first use with the given
    /// bucket bounds (later callers inherit the first caller's bounds).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        if let Some(h) = self.inner.histograms.read().unwrap().get(name) {
            return Histogram(Arc::clone(h));
        }
        let mut map = self.inner.histograms.write().unwrap();
        let cell = map.entry(name.to_owned()).or_insert_with(|| {
            let mut bounds = bounds.to_vec();
            bounds.sort_unstable();
            bounds.dedup();
            let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Arc::new(HistoCell {
                bounds,
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })
        });
        Histogram(Arc::clone(cell))
    }

    /// Reads every instrument once. Individual reads are atomic; the
    /// snapshot as a whole is not a cross-instrument transaction, but
    /// every value in it was current at some instant during the call and
    /// counters are monotone across successive snapshots.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .inner
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(k, h)| {
                // Read occupancy before count/sum so `count >= sum of
                // buckets` can never be observed to under-report.
                let buckets: Vec<u64> =
                    h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: h.bounds.clone(),
                        buckets,
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time values of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<u64>,
    /// `bounds.len() + 1` occupancy counts (last = overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

/// Point-in-time values of every instrument in a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The named counter's value, `0` if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, `0` if absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Deterministic JSON rendering: keys sorted, no whitespace.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, k);
            out.push_str(":{\"bounds\":");
            json::write_u64_array(&mut out, &h.bounds);
            out.push_str(",\"buckets\":");
            json::write_u64_array(&mut out, &h.buckets);
            out.push_str(",\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            out.push_str(&h.sum.to_string());
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Parses a snapshot back from its [`Snapshot::to_json`] rendering
    /// (accepts any JSON with the same shape, whitespace included).
    pub fn parse_json(text: &str) -> Result<Self, json::JsonError> {
        let value = json::parse(text)?;
        let obj = value.as_object("snapshot")?;
        let mut snap = Snapshot::default();
        if let Some(c) = obj.get("counters") {
            for (k, v) in c.as_object("counters")? {
                snap.counters.insert(k.clone(), v.as_u64(k)?);
            }
        }
        if let Some(g) = obj.get("gauges") {
            for (k, v) in g.as_object("gauges")? {
                snap.gauges.insert(k.clone(), v.as_i64(k)?);
            }
        }
        if let Some(h) = obj.get("histograms") {
            for (k, v) in h.as_object("histograms")? {
                let fields = v.as_object(k)?;
                let get = |name: &str| -> Result<&Json, json::JsonError> {
                    fields
                        .get(name)
                        .ok_or_else(|| json::JsonError(format!("{k}: missing '{name}'")))
                };
                snap.histograms.insert(
                    k.clone(),
                    HistogramSnapshot {
                        bounds: get("bounds")?.as_u64_array("bounds")?,
                        buckets: get("buckets")?.as_u64_array("buckets")?,
                        count: get("count")?.as_u64("count")?,
                        sum: get("sum")?.as_u64("sum")?,
                    },
                );
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_by_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.snapshot().counter("x"), 4);
        assert_eq!(r.snapshot().counter("absent"), 0);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(r.snapshot().gauge("depth"), -7);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let r = Registry::new();
        let h = r.histogram("lat", &[10, 100]);
        for v in [1, 10, 11, 100, 101, 5_000] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hs = &snap.histograms["lat"];
        // <=10: {1, 10}; <=100: {11, 100}; +inf: {101, 5000}.
        assert_eq!(hs.buckets, vec![2, 2, 2]);
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, 1 + 10 + 11 + 100 + 101 + 5_000);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let r = Registry::new();
        r.counter("b.total").add(2);
        r.counter("a.total").inc();
        r.gauge("q\"uote").set(-1);
        r.histogram("h", &[1, 2]).observe(3);
        let snap = r.snapshot();
        let text = snap.to_json();
        assert_eq!(Snapshot::parse_json(&text).unwrap(), snap);
        // Deterministic: same state, same bytes; keys sorted.
        assert_eq!(r.snapshot().to_json(), text);
        assert!(text.find("a.total").unwrap() < text.find("b.total").unwrap());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Snapshot::parse_json("").is_err());
        assert!(Snapshot::parse_json("{\"counters\":[]}").is_err());
        assert!(Snapshot::parse_json("{\"counters\":{\"x\":-1}}").is_err());
        assert!(Snapshot::parse_json("{} trailing").is_err());
    }
}
