//! `axml-obs` — std-only observability substrate for the Active XML
//! reproduction.
//!
//! Two halves, both free of registry dependencies (DESIGN.md §6):
//!
//! * **Metrics** ([`metrics`]): a [`Registry`] of named counters, gauges
//!   and fixed-bucket histograms behind atomic handles, snapshot-able to
//!   deterministic JSON (and re-parsable from it — tests assert snapshot
//!   monotonicity through a serialize/parse round trip).
//! * **Spans** ([`span_mod`][crate::span]): hierarchical enter/exit
//!   guards with monotonic durations and key=value fields, delivered to
//!   pluggable sinks — [`RingSink`] in tests, a stderr line sink when
//!   `AXML_TRACE` is set.
//!
//! Library code records into [`global`] by default; anything that needs
//! isolation (parallel tests, per-daemon scraping) threads its own
//! [`Registry`] instead. The full metric-name catalogue and span
//! taxonomy live in DESIGN.md §8.

mod json;
mod metrics;
mod span;

pub use json::{Json, JsonError};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot, BYTES_BOUNDS,
    LATENCY_NS_BOUNDS,
};
pub use span::{
    install_sink, now_ns, span, uninstall_sink, RingSink, SpanGuard, SpanRecord, SpanSink,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The process-wide registry. Created on first use with the documented
/// metric catalogue pre-registered, so a snapshot always lists every
/// documented name even before the corresponding code path runs.
pub fn global() -> Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let r = Registry::new();
            register_catalogue(&r);
            r
        })
        .clone()
}

/// Pre-registers the DESIGN.md §8 metric catalogue on `registry` (zero
/// values). Called for [`global`]; daemons call it on per-server
/// registries so `axml stats` scrapes are fully populated from the
/// first frame.
pub fn register_catalogue(registry: &Registry) {
    for name in [
        "solver.safe.solves_total",
        "solver.safe.nodes_total",
        "solver.safe.edges_total",
        "solver.safe.sink_pruned_total",
        "solver.safe.mark_pruned_total",
        "solver.possible.solves_total",
        "solver.possible.nodes_total",
        "solver.possible.edges_total",
        "server.connections_total",
        "server.requests_total",
        "server.responses_ok_total",
        "server.faults_total",
        "server.busy_total",
        "server.timeouts_total",
        "server.frame_too_large_total",
        "server.panics_total",
        "net.chunk.frames_total",
        "net.chunk.bytes_total",
        "net.chunk.aborts_total",
        "client.calls_total",
        "client.attempts_total",
        "client.retries_total",
        "client.faults_total",
        "peer.exchanges_total",
        "peer.exchange_faults_total",
        "peer.received_total",
        "peer.panics_total",
        "services.calls_total",
        "services.call_faults_total",
        "services.fees_cents_total",
        "store.load_total",
        "store.persist_total",
        "store.entries_loaded_total",
        "store.corrupt_discarded_total",
    ] {
        registry.counter(name);
    }
    registry.gauge("server.queue_depth");
    registry.gauge("server.poll.connections");
    registry.gauge("server.poll.buffer_bytes");
    registry.gauge("net.chunk.reassembly_bytes");
    registry.gauge("store.bytes");
    registry.histogram("solver.safe.solve_ns", LATENCY_NS_BOUNDS);
    registry.histogram("solver.possible.solve_ns", LATENCY_NS_BOUNDS);
    registry.histogram("server.frame_bytes", BYTES_BOUNDS);
    registry.histogram("client.call_ns", LATENCY_NS_BOUNDS);
}

static REQUEST_IDS: AtomicU64 = AtomicU64::new(1);

/// A process-unique request id, used to correlate the sender's span tree
/// with the receiver's across the wire (it rides in the frame header).
pub fn next_request_id() -> u64 {
    REQUEST_IDS.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_snapshot_contains_catalogue() {
        let snap = global().snapshot();
        for name in [
            "solver.safe.nodes_total",
            "server.busy_total",
            "client.retries_total",
            "peer.panics_total",
        ] {
            assert!(
                snap.counters.contains_key(name),
                "catalogue missing {name}"
            );
        }
        assert!(snap.gauges.contains_key("server.queue_depth"));
        assert!(snap.histograms.contains_key("solver.safe.solve_ns"));
    }

    #[test]
    fn request_ids_are_unique() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
    }
}
