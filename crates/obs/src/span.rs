//! Lightweight hierarchical spans.
//!
//! [`span`] opens a span and returns a guard; dropping the guard closes
//! it, computes its monotonic-clock duration and hands the finished
//! [`SpanRecord`] to every installed [`SpanSink`]. Spans opened while a
//! guard is live on the same thread become its children (a thread-local
//! stack tracks the current parent), which is exactly the shape of one
//! peer-side exchange: `exchange` → `enforce` → `ship`.
//!
//! Cross-thread (and cross-process) correlation does not rely on the
//! parent link: spans carry key=value fields, and the peer layer stamps
//! every span of one exchange with the same `rid` (the wire request id).
//!
//! Two sinks ship with the crate: [`RingSink`], a bounded in-memory
//! buffer for tests, and a line-oriented stderr sink installed
//! automatically when `AXML_TRACE` is set in the environment.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Display;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// A closed span, as delivered to sinks.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (see the taxonomy in DESIGN.md §8).
    pub name: String,
    /// Start offset from the process monotonic epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall duration, in nanoseconds.
    pub duration_ns: u64,
    /// Key=value annotations, in insertion order.
    pub fields: Vec<(String, String)>,
    /// True if the span was closed via [`SpanGuard::fail`].
    pub error: bool,
}

impl SpanRecord {
    /// The first value recorded for `key`, if any.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A destination for closed spans.
pub trait SpanSink: Send + Sync {
    /// Receives one closed span.
    fn record(&self, span: &SpanRecord);
}

/// A bounded in-memory sink: keeps the most recent `cap` spans.
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<SpanRecord>>,
}

impl RingSink {
    /// A ring holding at most `cap` spans, ready to [`install_sink`].
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(Self {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
        })
    }

    /// A copy of the buffered spans, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Removes and returns the buffered spans, oldest first.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.buf.lock().unwrap().drain(..).collect()
    }
}

impl SpanSink for RingSink {
    fn record(&self, span: &SpanRecord) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(span.clone());
    }
}

/// One `key=value`-per-span line on stderr, for `AXML_TRACE=1` runs.
struct StderrSink;

impl SpanSink for StderrSink {
    fn record(&self, span: &SpanRecord) {
        let mut line = format!(
            "[axml-trace] {} id={} parent={} start_ns={} dur_ns={}",
            span.name,
            span.id,
            span.parent.map_or_else(|| "-".into(), |p| p.to_string()),
            span.start_ns,
            span.duration_ns,
        );
        if span.error {
            line.push_str(" error=true");
        }
        for (k, v) in &span.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(v);
        }
        line.push('\n');
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}

fn sinks() -> &'static RwLock<Vec<Arc<dyn SpanSink>>> {
    static SINKS: OnceLock<RwLock<Vec<Arc<dyn SpanSink>>>> = OnceLock::new();
    SINKS.get_or_init(|| {
        let mut initial: Vec<Arc<dyn SpanSink>> = Vec::new();
        if std::env::var_os("AXML_TRACE").is_some_and(|v| !v.is_empty() && v != "0") {
            initial.push(Arc::new(StderrSink));
        }
        RwLock::new(initial)
    })
}

/// Adds a sink; every span closed from now on is delivered to it.
pub fn install_sink(sink: Arc<dyn SpanSink>) {
    sinks().write().unwrap().push(sink);
}

/// Removes a previously installed sink (matched by pointer identity).
pub fn uninstall_sink(sink: &Arc<dyn SpanSink>) {
    sinks()
        .write()
        .unwrap()
        .retain(|s| !Arc::ptr_eq(s, sink));
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process monotonic epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static SPAN_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span named `name`; it closes (and reaches the sinks) when the
/// returned guard drops. Guards must drop in reverse open order on a
/// thread — the natural shape of lexical scoping.
pub fn span(name: &str) -> SpanGuard {
    let id = SPAN_IDS.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    SpanGuard {
        record: SpanRecord {
            id,
            parent,
            name: name.to_owned(),
            start_ns: now_ns(),
            duration_ns: 0,
            fields: Vec::new(),
            error: false,
        },
        opened: Instant::now(),
    }
}

/// Live-span handle; see [`span`].
pub struct SpanGuard {
    record: SpanRecord,
    opened: Instant,
}

impl SpanGuard {
    /// This span's process-unique id.
    pub fn id(&self) -> u64 {
        self.record.id
    }

    /// Annotates the span with `key=value`.
    pub fn set(&mut self, key: &str, value: impl Display) {
        self.record
            .fields
            .push((key.to_owned(), value.to_string()));
    }

    /// Marks the span failed and records the reason under `error.msg`.
    pub fn fail(&mut self, msg: impl Display) {
        self.record.error = true;
        self.record
            .fields
            .push(("error.msg".to_owned(), msg.to_string()));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record.duration_ns = self.opened.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&self.record.id) {
                s.pop();
            } else {
                // Out-of-order drop: remove this id wherever it is so the
                // stack cannot grow without bound.
                s.retain(|&id| id != self.record.id);
            }
        });
        let sinks = sinks().read().unwrap();
        for sink in sinks.iter() {
            sink.record(&self.record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_links_parents_and_orders_starts() {
        let ring = RingSink::new(16);
        install_sink(ring.clone() as Arc<dyn SpanSink>);
        let outer_id;
        {
            let mut outer = span("outer-span-test");
            outer.set("rid", 42);
            outer_id = outer.id();
            let inner = span("inner-span-test");
            assert_ne!(inner.id(), outer_id);
        }
        uninstall_sink(&(ring.clone() as Arc<dyn SpanSink>));
        let spans: Vec<_> = ring
            .drain()
            .into_iter()
            .filter(|s| s.name.ends_with("-span-test"))
            .collect();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner-span-test");
        assert_eq!(spans[0].parent, Some(outer_id));
        assert_eq!(spans[1].name, "outer-span-test");
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[1].field("rid"), Some("42"));
        assert!(spans[0].start_ns >= spans[1].start_ns);
    }

    #[test]
    fn fail_tags_error_and_message() {
        let ring = RingSink::new(4);
        install_sink(ring.clone() as Arc<dyn SpanSink>);
        {
            let mut sp = span("failing-span-test");
            sp.fail("boom");
        }
        uninstall_sink(&(ring.clone() as Arc<dyn SpanSink>));
        let spans: Vec<_> = ring
            .drain()
            .into_iter()
            .filter(|s| s.name == "failing-span-test")
            .collect();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].error);
        assert_eq!(spans[0].field("error.msg"), Some("boom"));
    }

    #[test]
    fn ring_keeps_most_recent() {
        let ring = RingSink::new(2);
        for i in 0..5 {
            let mut r = SpanRecord {
                id: i,
                parent: None,
                name: "x".into(),
                start_ns: 0,
                duration_ns: 0,
                fields: Vec::new(),
                error: false,
            };
            r.start_ns = i;
            ring.record(&r);
        }
        let ids: Vec<u64> = ring.records().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![3, 4]);
    }
}
